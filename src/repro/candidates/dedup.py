"""Candidate de-duplication: every unordered pair verified at most once.

The signature indexes propose the same partner many times per probe (one
hit per shared segment/gram/prefix token).  Pre-overhaul the joins
absorbed the duplicates with per-probe ``set`` objects -- paying a hash
insert per proposal -- and several still let duplicate *pairs* through to
``verify_pairs``, relying on its memo to keep the kernel cost down while
still paying per-pair metering and list churn.

:class:`CandidateBuffer` replaces the per-probe set with a bitset
(``bytearray`` indexed by record id): membership is one byte read, and
draining touches only the candidates actually collected.  Combined with
the shortest-first probe-then-index sweep every serial join already uses
(a pair is only ever proposed at the probe of its later element), buffer
dedup gives the global guarantee for free: **each unordered pair reaches
verification exactly once**.
"""

from __future__ import annotations

from typing import Iterable


class CandidateBuffer:
    """Bitset-deduplicated candidate accumulation for one probe at a time.

    Parameters
    ----------
    n_records:
        Universe size; candidate ids must lie in ``[0, n_records)``.

    Examples
    --------
    >>> buffer = CandidateBuffer(8)
    >>> buffer.add(3), buffer.add(5), buffer.add(3)
    (True, True, False)
    >>> buffer.drain()
    [3, 5]
    >>> buffer.add(3)  # the drain reset the bitset
    True
    >>> buffer.drain()
    [3]
    """

    __slots__ = ("_seen", "_collected")

    def __init__(self, n_records: int) -> None:
        self._seen = bytearray(n_records)
        self._collected: list[int] = []

    def __len__(self) -> int:
        return len(self._collected)

    def add(self, candidate: int) -> bool:
        """Collect ``candidate`` once; ``True`` iff it was new this probe."""
        seen = self._seen
        if seen[candidate]:
            return False
        seen[candidate] = 1
        self._collected.append(candidate)
        return True

    def add_all(self, candidates: Iterable[int]) -> int:
        """Collect many candidates; returns how many were new."""
        seen = self._seen
        collected = self._collected
        added = 0
        for candidate in candidates:
            if not seen[candidate]:
                seen[candidate] = 1
                collected.append(candidate)
                added += 1
        return added

    def drain(self) -> list[int]:
        """The deduplicated candidates, resetting for the next probe.

        Only the collected entries are cleared, so a drain costs
        ``O(candidates)`` -- not ``O(n_records)``.
        """
        collected = self._collected
        seen = self._seen
        for candidate in collected:
            seen[candidate] = 0
        self._collected = []
        return collected


def unordered(pair_a: int, pair_b: int) -> tuple[int, int]:
    """Canonical (ascending) form of an unordered id pair."""
    return (pair_a, pair_b) if pair_a < pair_b else (pair_b, pair_a)
