"""Batched verification on top of :func:`repro.accel.verify_pairs`.

The cascade's survivors are verified in bulk: LD joins hand one batch and
one limit straight to ``verify_pairs``; NLD joins have a *per-pair* LD cap
(Lemma 8 depends on the two lengths), so :func:`verify_nld_pairs` groups
the batch by cap and runs one ``verify_pairs`` call per distinct cap --
still a handful of batched calls instead of one kernel dispatch per pair.

Both helpers bump the shared ``pairs_verified`` counter when handed a
counter dict, so filter-effectiveness reporting includes the verification
volume without every join re-implementing the bookkeeping.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.accel import verify_pairs
from repro.candidates.cascade import COUNTER_PRUNED_LENGTH, COUNTER_VERIFIED
from repro.distances.levenshtein import OpsHook
from repro.distances.normalized import max_ld_for_shorter, min_length_for_nld


def verify_ld_pairs(
    pairs: Sequence[tuple[int, int]],
    strings: Sequence[str] | Mapping[int, str],
    limit: int,
    backend: str = "auto",
    counters: dict[str, int] | None = None,
    ops: OpsHook = None,
) -> list[int | None]:
    """Batched thresholded-LD verification (positionally aligned).

    A thin wrapper over :func:`repro.accel.verify_pairs` that accounts the
    batch in the canonical ``pairs_verified`` counter.
    """
    if counters is not None:
        counters[COUNTER_VERIFIED] = counters.get(COUNTER_VERIFIED, 0) + len(pairs)
    return verify_pairs(pairs, strings, limit, backend=backend, ops=ops)


def verify_nld_pairs(
    pairs: Sequence[tuple[int, int]],
    strings: Sequence[str] | Mapping[int, str],
    threshold: float,
    backend: str = "auto",
    counters: dict[str, int] | None = None,
    ops: OpsHook = None,
) -> list[float | None]:
    """Batched thresholded-NLD verification (positionally aligned).

    Pair-for-pair equivalent to
    :func:`repro.distances.normalized.nld_within`: the NLD threshold is
    converted to the Lemma 8 LD cap of each length pair, pairs failing the
    Lemma 9 length window miss immediately (counted as
    ``pruned_by_length``, not as verified), and the rest are verified in
    one :func:`repro.accel.verify_pairs` batch per distinct cap.
    """
    results: list[float | None] = [None] * len(pairs)
    if threshold < 0 or not pairs:
        return results

    verified = pruned = 0
    #: LD cap -> ([positions], [pairs]) of the candidates sharing it.
    by_limit: dict[int, tuple[list[int], list[tuple[int, int]]]] = {}
    for position, (i, j) in enumerate(pairs):
        x, y = strings[i], strings[j]
        if x == y:
            verified += 1  # decided (trivially), never length-pruned
            results[position] = 0.0
            continue
        if threshold >= 1.0:
            # Degenerate threshold: every distance qualifies; cap by the
            # longer length (LD <= max(|x|, |y|)).
            limit = max(len(x), len(y))
        else:
            shorter, longer = (len(x), len(y)) if len(x) <= len(y) else (len(y), len(x))
            # Lemma 9 length window: prune without touching characters.
            if shorter < min_length_for_nld(threshold, longer):
                pruned += 1
                if ops is not None:
                    ops(1)
                continue
            limit = max_ld_for_shorter(threshold, longer)
        verified += 1
        group = by_limit.get(limit)
        if group is None:
            group = by_limit[limit] = ([], [])
        group[0].append(position)
        group[1].append((i, j))
    if counters is not None:
        counters[COUNTER_VERIFIED] = counters.get(COUNTER_VERIFIED, 0) + verified
        if pruned:
            counters[COUNTER_PRUNED_LENGTH] = (
                counters.get(COUNTER_PRUNED_LENGTH, 0) + pruned
            )

    for limit, (positions, group_pairs) in by_limit.items():
        distances = verify_pairs(group_pairs, strings, limit, backend=backend, ops=ops)
        for position, (i, j), distance in zip(positions, group_pairs, distances):
            if distance is None:
                continue
            x, y = strings[i], strings[j]
            value = 2.0 * distance / (len(x) + len(y) + distance)
            if value <= threshold:
                results[position] = value
    return results
