"""Interned signature indexes: signatures -> dense ids -> array postings.

Every filtering join in this repository is, at heart, an inverted index
from *signatures* (Pass-Join segments, positional q-grams, prefix tokens)
to the record ids containing them.  The pre-overhaul implementations each
kept a ``dict[str | tuple, list[int]]``, paying tuple hashing on every
probe and a Python list object per posting list.

:class:`SignatureInterner` generalizes :class:`repro.accel.vocab.Vocab`'s
token interning to arbitrary hashable signatures: each distinct signature
is mapped to a dense integer id exactly once, so repeated index/probe work
(hashing a ``(segment_index, length, chunk)`` tuple, say) happens once per
distinct signature.  :class:`PostingsIndex` pairs the interner with
``array``-backed postings lists -- machine-width integers in contiguous
memory instead of ``dict[str, set[int]]`` -- which both shrinks the index
and makes posting scans cache-friendly.
"""

from __future__ import annotations

from array import array
from typing import Hashable, Iterator

#: Machine-width signed integers; record ids and packed (id, payload)
#: codes both fit.
_POSTING_TYPECODE = "q"


class SignatureInterner:
    """Map hashable signatures to dense integer ids (first-seen order).

    Examples
    --------
    >>> interner = SignatureInterner()
    >>> interner.intern((0, 4, "ab"))
    0
    >>> interner.intern((1, 4, "cd"))
    1
    >>> interner.intern((0, 4, "ab"))  # stable
    0
    >>> interner.lookup((2, 9, "zz")) is None  # lookup never allocates
    True
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, signature: Hashable) -> bool:
        return signature in self._ids

    def intern(self, signature: Hashable) -> int:
        """The dense id of ``signature``, allocating one on first sight."""
        ids = self._ids
        sig_id = ids.get(signature)
        if sig_id is None:
            sig_id = len(ids)
            ids[signature] = sig_id
        return sig_id

    def lookup(self, signature: Hashable) -> int | None:
        """The dense id of ``signature`` if already interned, else ``None``."""
        return self._ids.get(signature)

    def get_ref(self):
        """The bound C-level ``dict.get`` over the id map.

        Probe loops run millions of lookups; handing them the raw bound
        method removes a Python-level call frame per lookup.  The ref
        stays valid as the interner grows (the dict is never replaced).
        """
        return self._ids.get

    def signatures(self) -> Iterator[Hashable]:
        """All interned signatures in id order."""
        return iter(self._ids)


class PostingsIndex:
    """An inverted index from interned signatures to array-backed postings.

    Postings are machine-width integers (record ids, or ids packed with a
    small payload such as a gram position).  Appending keeps first-seen
    order inside each list, matching the pre-overhaul ``dict -> list``
    semantics exactly.

    Examples
    --------
    >>> index = PostingsIndex()
    >>> index.add("sig", 7); index.add("sig", 9); index.add("other", 7)
    >>> list(index.get("sig"))
    [7, 9]
    >>> index.get("missing") is None
    True
    >>> len(index), index.total_postings
    (2, 3)
    """

    __slots__ = ("_interner", "_postings")

    def __init__(self) -> None:
        self._interner = SignatureInterner()
        self._postings: list[array] = []

    def __len__(self) -> int:
        """Number of distinct signatures indexed."""
        return len(self._interner)

    @property
    def total_postings(self) -> int:
        return sum(len(postings) for postings in self._postings)

    @property
    def interner(self) -> SignatureInterner:
        return self._interner

    def add(self, signature: Hashable, posting: int) -> None:
        """Append ``posting`` to the signature's postings list."""
        sig_id = self._interner.intern(signature)
        postings = self._postings
        if sig_id == len(postings):
            postings.append(array(_POSTING_TYPECODE))
        postings[sig_id].append(posting)

    def get(self, signature: Hashable) -> array | None:
        """The postings of ``signature``, or ``None`` when absent.

        The returned array is the live postings list -- callers must not
        mutate it.
        """
        sig_id = self._interner.lookup(signature)
        if sig_id is None or sig_id >= len(self._postings):
            return None
        return self._postings[sig_id]

    def lookup_ref(self):
        """C-level signature -> id lookup for probe hot loops.

        Use together with :attr:`postings`::

            lookup, postings = index.lookup_ref(), index.postings
            ...
            sig_id = lookup(signature)          # one C dict probe
            if sig_id is not None:
                found.update(postings[sig_id])  # C-level bulk union

        which keeps the per-lookup cost identical to a bare
        ``dict[sig, list]`` while retaining dense ids and array postings.
        """
        return self._interner.get_ref()

    @property
    def postings(self) -> list[array]:
        """The postings columns, indexed by dense signature id.

        The list object is stable across :meth:`add` calls (grown in
        place), so hot loops may hold a reference.
        """
        return self._postings


def pack_posting(record_id: int, payload: int, payload_bits: int = 24) -> int:
    """Pack ``(record_id, payload)`` into one machine integer.

    Joins that need a small per-posting payload (q-gram positions) pack it
    into the low bits so postings stay plain ints in one array.

    Examples
    --------
    >>> unpack_posting(pack_posting(12, 7))
    (12, 7)
    """
    if payload < 0 or payload >> payload_bits:
        raise ValueError(f"payload {payload} does not fit in {payload_bits} bits")
    # Postings live in array('q') buffers: the packed value must fit a
    # signed 64-bit slot, so the record id gets the 63 - payload_bits
    # above the payload.  Overflowing ids used to wrap into the payload
    # silently; now they fail loudly at pack time.
    if record_id < 0 or record_id >> (63 - payload_bits):
        raise ValueError(
            f"record id {record_id} does not fit in {63 - payload_bits} bits "
            f"(payload_bits={payload_bits})"
        )
    return (record_id << payload_bits) | payload


def unpack_posting(posting: int, payload_bits: int = 24) -> tuple[int, int]:
    """Invert :func:`pack_posting`."""
    return posting >> payload_bits, posting & ((1 << payload_bits) - 1)
