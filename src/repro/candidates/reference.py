"""Pre-overhaul candidate generation, kept as the equivalence reference.

These are the string-keyed ``dict``/``set`` candidate generators the join
layers used before the interned-signature overhaul, reduced to their
candidate-generation cores.  They exist for two purposes:

* the equivalence tests in ``tests/candidates`` assert the overhauled
  joins propose *identical* candidate pair sets (same recall, pair for
  pair) -- the overhaul is a data-structure change, not an algorithmic
  one;
* ``benchmarks/bench_candidate_pipeline.py`` measures old-vs-new
  candidates/sec on the same workloads, which is the number the committed
  perf baseline gates.

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.joins.passjoin import _segment_bounds, even_partition


def passjoin_candidates_dict(
    strings: Sequence[str], threshold: int
) -> list[tuple[int, int]]:
    """Pass-Join self-join candidates via the pre-overhaul dict index.

    Returns ``(indexed_id, probe_id)`` pairs in the exact emission order
    of the pre-overhaul ``PassJoin.self_join`` (shortest-first sweep,
    per-probe ``set`` dedup with arbitrary-but-deterministic set order
    replaced by sorted order for comparability).
    """
    segment_count = threshold + 1
    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    index: dict[tuple[int, int, str], list[int]] = defaultdict(list)
    short_bucket: dict[int, list[int]] = defaultdict(list)
    seen_lengths: list[int] = []
    seen_length_set: set[int] = set()
    candidates: list[tuple[int, int]] = []
    for identifier in order:
        s = strings[identifier]
        probe_length = len(s)
        found: set[int] = set()
        for indexed_length in seen_lengths:
            if abs(indexed_length - probe_length) > threshold:
                continue
            delta = probe_length - indexed_length
            k = segment_count
            for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                lo = max(0, p_i - i, p_i + delta - (k - 1 - i))
                hi = min(probe_length - size, p_i + i, p_i + delta + (k - 1 - i))
                for start in range(lo, hi + 1):
                    hits = index.get((i, indexed_length, s[start : start + size]))
                    if hits:
                        found.update(hits)
        for bucket_length, ids in short_bucket.items():
            if abs(bucket_length - probe_length) <= threshold:
                found.update(ids)
        for candidate in sorted(found):
            if candidate != identifier:
                candidates.append((candidate, identifier))
        if probe_length <= threshold:
            short_bucket[probe_length].append(identifier)
        else:
            for i, (_, segment) in enumerate(even_partition(s, segment_count)):
                index[(i, probe_length, segment)].append(identifier)
        if probe_length not in seen_length_set:
            seen_length_set.add(probe_length)
            seen_lengths.append(probe_length)
    return candidates


def qgram_candidates_dict(
    strings: Sequence[str], threshold: int, q: int = 2
) -> list[tuple[int, int]]:
    """Q-gram join candidates via the pre-overhaul dict index.

    Returns ``(indexed_id, probe_id)`` pairs (sorted per probe) surviving
    the count + length + position filters, before verification.
    """
    from repro.joins.qgram import positional_qgrams

    always_candidates: list[int] = []
    index: dict[str, list[tuple[int, int]]] = defaultdict(list)
    candidates: list[tuple[int, int]] = []
    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    for identifier in order:
        s = strings[identifier]
        required = len(s) + q - 1 - threshold * q
        overlap: dict[int, int] = defaultdict(int)
        for position, gram in positional_qgrams(s, q):
            for other, other_position in index.get(gram, ()):
                if abs(position - other_position) <= threshold:
                    overlap[other] += 1
        found = set(always_candidates)
        for other, count in overlap.items():
            other_length = len(strings[other])
            if len(s) - other_length > threshold:
                continue
            needed = max(len(s), other_length) + q - 1 - threshold * q
            if count >= needed or needed <= 0:
                found.add(other)
        for other in sorted(found):
            if other == identifier:
                continue
            if len(s) - len(strings[other]) > threshold:
                continue
            candidates.append((other, identifier))
        if required <= 0:
            always_candidates.append(identifier)
        else:
            for position, gram in positional_qgrams(s, q):
                index[gram].append((identifier, position))
    return candidates
