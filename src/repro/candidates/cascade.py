"""The composable filter cascade with per-filter pruning counters.

Candidate generation across the join layers repeats the same shape: an
index lookup proposes a candidate, a short chain of cheap necessary
conditions (length window, count/prefix agreement, position displacement)
prunes it, and the survivors reach verification.  :class:`FilterCascade`
names that chain once: filters run in the given order and short-circuit on
the first rejection, and every decision lands in a counter so filter
effectiveness is measurable instead of guessed.

Counter names are shared across every join layer (and with the MapReduce
job counters, see ``MapReduceContext.count``), so the CLI summary and the
benches can aggregate them pipeline-wide:

* ``candidates_generated`` -- pairs proposed by the signature index;
* ``pruned_by_length``     -- rejected by a length-window filter;
* ``pruned_by_count``      -- rejected by a count-style filter (q-gram
  count, K-signature count, histogram lower bound);
* ``pruned_by_position``   -- rejected by a positional filter;
* ``pairs_verified``       -- survivors handed to exact verification.

:class:`HistogramBoundFilter` is the cascade form of the Sec. III-E.2
distance-lower-bound filter: identical decisions to
:func:`repro.distances.setwise.nsld_lower_bound_from_histograms` (the
oracle it is property-tested against), but with the per-length-pair
Lemma 10 arithmetic memoized across the whole join -- the lengths of real
tokens repeat endlessly, the bound for a length pair never changes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.distances.normalized import (
    min_ld_exceeding_for_longer,
    min_ld_exceeding_for_shorter,
)

COUNTER_CANDIDATES = "candidates_generated"
COUNTER_PRUNED_LENGTH = "pruned_by_length"
COUNTER_PRUNED_COUNT = "pruned_by_count"
COUNTER_PRUNED_POSITION = "pruned_by_position"
COUNTER_VERIFIED = "pairs_verified"

#: The canonical counter set, in reporting order.
CASCADE_COUNTERS = (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_LENGTH,
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_POSITION,
    COUNTER_VERIFIED,
)

#: A filter: ``predicate(candidate_id) -> bool`` (True = keep), paired
#: with the counter bumped when it prunes.
Filter = tuple[str, Callable[[int], bool]]


def new_counters() -> dict[str, int]:
    """A zeroed canonical counter dict."""
    return {name: 0 for name in CASCADE_COUNTERS}


class FilterCascade:
    """Ordered short-circuit filters over proposed candidate ids.

    Parameters
    ----------
    filters:
        ``(prune_counter_name, predicate)`` pairs, cheapest first; a
        predicate returning ``False`` prunes the candidate and bumps the
        named counter.
    counters:
        Counter sink; defaults to a fresh :func:`new_counters` dict.

    Examples
    --------
    >>> lengths = [3, 5, 9]
    >>> cascade = FilterCascade(
    ...     (COUNTER_PRUNED_LENGTH, lambda other: abs(lengths[other] - 5) <= 2),
    ... )
    >>> [cascade.admit(i) for i in range(3)]
    [True, True, False]
    >>> cascade.counters[COUNTER_CANDIDATES], cascade.counters[COUNTER_PRUNED_LENGTH]
    (3, 1)
    """

    __slots__ = ("filters", "counters")

    def __init__(
        self, *filters: Filter, counters: dict[str, int] | None = None
    ) -> None:
        self.filters = filters
        self.counters = new_counters() if counters is None else counters

    def admit(self, candidate: int) -> bool:
        """Run ``candidate`` through the cascade; count every decision."""
        counters = self.counters
        counters[COUNTER_CANDIDATES] += 1
        for name, predicate in self.filters:
            if not predicate(candidate):
                counters[name] = counters.get(name, 0) + 1
                return False
        return True

    def admitted(self, candidates: Iterable[int]) -> list[int]:
        """The candidates surviving the cascade, in input order."""
        return [candidate for candidate in candidates if self.admit(candidate)]


class HistogramBoundFilter:
    """The Sec. III-E.2 histogram lower-bound filter with memoized bounds.

    Decision-identical to the :mod:`repro.distances.setwise` oracle
    functions (property-tested in ``tests/candidates``), but the Lemma 10
    bound for a dissimilar token pair depends only on the two token
    lengths and the threshold -- so it is computed once per distinct
    length pair for the lifetime of the filter instead of once per
    candidate pair.
    """

    __slots__ = ("threshold", "use_lemma10", "_dissimilar", "_bounds")

    def __init__(self, threshold: float, use_lemma10: bool = True) -> None:
        self.threshold = threshold
        self.use_lemma10 = use_lemma10
        #: (shorter_len, longer_len) -> LD lower bound for a pair known to
        #: be NLD-dissimilar (or the plain length difference without
        #: Lemma 10).
        self._dissimilar: dict[tuple[int, int], int] = {}
        #: Full-bound memo for :meth:`nsld_bound_encoded`: real corpora
        #: draw token lengths from a handful of values, so the distinct
        #: (histogram, histogram, similar-pairs) combinations number in
        #: the thousands while candidate pairs number in the millions.
        self._bounds: dict[tuple, float] = {}

    def _dissimilar_bound(self, len_a: int, len_b: int) -> int:
        shorter, longer = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
        key = (shorter, longer)
        cached = self._dissimilar.get(key)
        if cached is not None:
            return cached
        difference = longer - shorter
        if not self.use_lemma10:
            bound = difference
        else:
            # Lemma 10: a pair with NLD > T has LD strictly above the
            # floor; both orientations apply (LD is symmetric), take the
            # stronger.  See setwise.sld_lower_bound_from_histograms.
            lemma10 = min_ld_exceeding_for_shorter(self.threshold, longer) + 1
            if shorter != longer:
                lemma10 = max(
                    lemma10,
                    min_ld_exceeding_for_longer(self.threshold, shorter) + 1,
                )
            bound = max(difference, lemma10)
        self._dissimilar[key] = bound
        return bound

    def sld_bound(
        self,
        histogram_x: Mapping[int, int],
        histogram_y: Mapping[int, int],
        similar_pairs: Iterable[tuple[int, int, int]],
    ) -> int:
        """A sound lower bound on ``SLD(x, y)``; see the setwise oracle."""
        count_x = sum(histogram_x.values())
        count_y = sum(histogram_y.values())
        length_x = sum(size * mult for size, mult in histogram_x.items())
        length_y = sum(size * mult for size, mult in histogram_y.items())

        # Cheapest known LD per (len_x, len_y) pair of lengths.
        best_similar: dict[tuple[int, int], int] = {}
        for len_a, len_b, distance in similar_pairs:
            key = (len_a, len_b)
            if key not in best_similar or distance < best_similar[key]:
                best_similar[key] = distance

        dissimilar_bound = self._dissimilar_bound

        def side_bound(
            hist_a: Mapping[int, int],
            hist_b: Mapping[int, int],
            pads_available: bool,
            a_is_x: bool,
        ) -> int:
            total = 0
            for len_a, mult_a in hist_a.items():
                cheapest = len_a if pads_available else None
                for len_b in hist_b:
                    key = (len_a, len_b) if a_is_x else (len_b, len_a)
                    bound = best_similar.get(key)
                    if bound is None:
                        bound = dissimilar_bound(len_a, len_b)
                    if cheapest is None or bound < cheapest:
                        cheapest = bound
                    if cheapest == 0:
                        break
                total += (cheapest or 0) * mult_a
            return total

        bound_x = side_bound(histogram_x, histogram_y, count_x > count_y, True)
        bound_y = side_bound(histogram_y, histogram_x, count_y > count_x, False)
        return max(bound_x, bound_y, abs(length_x - length_y))

    def nsld_bound(
        self,
        histogram_x: Mapping[int, int],
        histogram_y: Mapping[int, int],
        similar_pairs: Iterable[tuple[int, int, int]],
    ) -> float:
        """NSLD form of :meth:`sld_bound` (monotone in SLD)."""
        length_x = sum(size * mult for size, mult in histogram_x.items())
        length_y = sum(size * mult for size, mult in histogram_y.items())
        bound = self.sld_bound(histogram_x, histogram_y, similar_pairs)
        denominator = length_x + length_y + bound
        if denominator == 0:
            return 0.0
        return 2.0 * bound / denominator

    def nsld_bound_encoded(
        self,
        histogram_x: tuple[tuple[int, int], ...],
        histogram_y: tuple[tuple[int, int], ...],
        similar_key: tuple[tuple[int, int, int], ...],
    ) -> float:
        """:meth:`nsld_bound` over *encoded* histograms, fully memoized.

        ``histogram_*`` are the canonical sorted ``(length, multiplicity)``
        tuples the TSJ pipeline ships (see ``repro.tsj.jobs``);
        ``similar_key`` must be a canonical (sorted) tuple of the similar
        pairs so equal inputs hit the same memo slot.  The bound is a pure
        function of these three values (threshold and Lemma 10 mode are
        fixed per filter), so memoization cannot change a decision.
        """
        key = (histogram_x, histogram_y, similar_key)
        cached = self._bounds.get(key)
        if cached is None:
            cached = self.nsld_bound(
                dict(histogram_x), dict(histogram_y), similar_key
            )
            self._bounds[key] = cached
        return cached

    def prunes(
        self,
        histogram_x: Mapping[int, int],
        histogram_y: Mapping[int, int],
        similar_pairs: Iterable[tuple[int, int, int]],
    ) -> bool:
        """Whether the bound alone proves ``NSLD > threshold``."""
        bound = self.nsld_bound(histogram_x, histogram_y, similar_pairs)
        return bound > self.threshold
