"""The shared candidate-pipeline subsystem.

Every filtering join in this repository decomposes into the same stages:

1. **signature indexing** -- segments / q-grams / prefix tokens mapped to
   the record ids containing them (:class:`PostingsIndex`, backed by
   :class:`SignatureInterner` dense ids and ``array`` postings);
2. **a filter cascade** -- cheap necessary conditions (length window,
   count filter, position filter) pruning proposed candidates in
   short-circuit order, with per-filter counters (:class:`FilterCascade`,
   :class:`HistogramBoundFilter`);
3. **de-duplication** -- each unordered pair reaches verification at most
   once (:class:`CandidateBuffer` bitsets);
4. **batched verification** -- one (or a few) bulk
   :func:`repro.accel.verify_pairs` dispatches instead of per-pair kernel
   calls (:func:`verify_ld_pairs`, :func:`verify_nld_pairs`).

The join layers (``repro.joins``, ``repro.tsj.jobs``) are thin wirings of
these pieces; ``repro.candidates.reference`` preserves the pre-overhaul
dict-based generators as the equivalence/bench oracle.
"""

from repro.candidates.cascade import (
    CASCADE_COUNTERS,
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_LENGTH,
    COUNTER_PRUNED_POSITION,
    COUNTER_VERIFIED,
    FilterCascade,
    HistogramBoundFilter,
    new_counters,
)
from repro.candidates.dedup import CandidateBuffer, unordered
from repro.candidates.interning import (
    PostingsIndex,
    SignatureInterner,
    pack_posting,
    unpack_posting,
)
from repro.candidates.verify import verify_ld_pairs, verify_nld_pairs

__all__ = [
    "CASCADE_COUNTERS",
    "COUNTER_CANDIDATES",
    "COUNTER_PRUNED_COUNT",
    "COUNTER_PRUNED_LENGTH",
    "COUNTER_PRUNED_POSITION",
    "COUNTER_VERIFIED",
    "CandidateBuffer",
    "FilterCascade",
    "HistogramBoundFilter",
    "PostingsIndex",
    "SignatureInterner",
    "new_counters",
    "pack_posting",
    "unordered",
    "unpack_posting",
    "verify_ld_pairs",
    "verify_nld_pairs",
]
