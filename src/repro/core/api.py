"""The legacy front-door helpers, now thin shims over :mod:`repro.api`.

These entry points predate the declarative Request/Result API and are
kept byte-identical (enforced by ``tests/api/test_legacy_equivalence``):
each builds the equivalent spec, runs it through the shared
:class:`repro.api.Session` facade, and converts the uniform
:class:`repro.api.ResultSet` envelope back to the historical shapes.
New code should speak specs directly::

    import repro
    repro.run(repro.JoinSpec(names=names, threshold=0.1))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.api.result import join_summary_lines
from repro.distances import nsld
from repro.tokenize import Tokenizer


@dataclass
class JoinReport:
    """Human-oriented result of :func:`nsld_join`."""

    #: ``(name_a, name_b, distance)`` triples, ascending by distance.
    pairs: list[tuple[str, str, float]]
    #: Clusters of mutually-linked names (potential rings), largest first.
    clusters: list[set[str]]
    #: Index pairs into the input list, for positional bookkeeping.
    index_pairs: set[tuple[int, int]]
    #: Simulated cluster runtime of the join (seconds).
    simulated_seconds: float
    #: Merged pipeline job counters, including the canonical
    #: candidate-pipeline set (``candidates_generated``,
    #: ``pruned_by_length``, ``pruned_by_count``, ``pairs_verified``).
    counters: dict[str, int] = field(default_factory=dict)

    def summary(self, limit: int | None = None, threshold=None) -> list[str]:
        """Printable report lines -- the same rendering as
        :meth:`repro.api.ResultSet.summary` (shared helpers)."""
        return join_summary_lines(
            self.pairs,
            [sorted(cluster) for cluster in self.clusters],
            self.counters,
            self.simulated_seconds,
            threshold=threshold,
            limit=limit,
        )


def join_records(
    names: Sequence[str],
    records: Sequence,
    threshold: float = 0.1,
    max_token_frequency: int | None = 1000,
    n_machines: int = 10,
    engine: str = "auto",
    **config_overrides,
) -> JoinReport:
    """:func:`nsld_join` over an already-tokenized collection.

    The build-once path: callers holding a tokenized snapshot (the
    serving layer's :class:`repro.service.SimilarityIndex`) skip
    re-tokenization; ``records[i]`` must be the tokenization of
    ``names[i]``.  Everything downstream -- pipeline, counters,
    simulated seconds -- is identical to :func:`nsld_join`.  A shim:
    the work runs through ``Session.run(JoinSpec(algorithm="tsj"))``
    with the pre-tokenized records supplied out-of-band.
    """
    if len(names) != len(records):
        raise ValueError(
            f"names and records must align: got {len(names)} names "
            f"for {len(records)} records"
        )
    from repro.api.session import default_session
    from repro.api.specs import JoinSpec

    spec = JoinSpec(
        algorithm="tsj",
        threshold=threshold,
        engine=engine,
        params={
            "max_token_frequency": max_token_frequency,
            "n_machines": n_machines,
            **config_overrides,
        },
    )
    result = default_session().run(spec, names=names, records=records)
    return result.to_join_report()


def nsld_join(
    names: Sequence[str] | None = None,
    threshold: float = 0.1,
    max_token_frequency: int | None = 1000,
    n_machines: int = 10,
    tokenizer: Tokenizer | None = None,
    engine: str = "auto",
    index=None,
    **config_overrides,
) -> JoinReport:
    """Self-join raw name strings under NSLD with the TSJ framework.

    Parameters
    ----------
    names:
        The raw strings to compare pairwise.
    threshold:
        NSLD join threshold ``T`` (paper default 0.1).
    max_token_frequency:
        The popular-token cut-off ``M`` (``None`` = lossless).
    n_machines:
        Simulated cluster size.
    tokenizer:
        Defaults to whitespace+punctuation with case folding.
    engine:
        Execution engine for the pipeline's MapReduce jobs: ``"auto"``
        (parallel over the shared worker pool when multiple CPUs are
        usable and the platform forks workers by default — on
        spawn/forkserver platforms such as macOS or Windows ``auto``
        stays serial; request ``"parallel"`` explicitly under a
        ``__main__`` guard), ``"serial"`` or ``"parallel"`` (see
        :mod:`repro.runtime`).  Pairs and simulated seconds are
        identical under every engine; only wall-clock changes.
    index:
        A resident :class:`repro.service.SimilarityIndex` to join
        instead of ``names`` -- the index-reuse entry point.  The
        snapshot's tokenization is reused and the report comes from (and
        lands in) the index's LRU result cache, so repeated joins cost a
        dict probe.  Mutually exclusive with ``names``/``tokenizer``.
    config_overrides:
        Any further :class:`repro.tsj.TSJConfig` field (``matching``,
        ``aligning``, ``dedup``, ``verify_backend``, ...).

    Examples
    --------
    >>> report = nsld_join(["barak obama", "borak obama", "john smith"],
    ...                    threshold=0.15, max_token_frequency=None)
    >>> [(a, b) for a, b, _ in report.pairs]
    [('barak obama', 'borak obama')]
    """
    if index is not None:
        if names is not None or tokenizer is not None:
            raise ValueError(
                "pass either names (with an optional tokenizer) or a "
                "resident index, not both"
            )
        return index.join(
            threshold=threshold,
            max_token_frequency=max_token_frequency,
            n_machines=n_machines,
            engine=engine,
            **config_overrides,
        )
    if names is None:
        raise ValueError("names is required when no index is given")
    tokenizer = tokenizer or Tokenizer()
    records = [tokenizer.tokenize(name) for name in names]
    return join_records(
        names,
        records,
        threshold=threshold,
        max_token_frequency=max_token_frequency,
        n_machines=n_machines,
        engine=engine,
        **config_overrides,
    )


def compare_names(
    name_a: str,
    name_b: str,
    tokenizer: Tokenizer | None = None,
    backend: str = "auto",
) -> float:
    """NSLD between two raw strings (tokenized with the default tokenizer).

    ``backend`` selects the edit-distance kernel (``"auto" | "dp" |
    "bitparallel" | "vector"``); every backend returns the same value.  A
    shim over
    the shared session's scalar fast path
    (:meth:`repro.api.Session.compare`) when the default tokenizer is in
    play; ``Session.run(CompareSpec(...))`` returns the same value in an
    envelope.

    Examples
    --------
    >>> compare_names("barak obama", "obama barak")
    0.0
    >>> round(compare_names("barak obama", "burak ubama"), 3)
    0.182
    """
    if tokenizer is not None:
        return nsld(
            tokenizer.tokenize(name_a), tokenizer.tokenize(name_b), backend=backend
        )
    from repro.api.session import default_session

    return default_session().compare(name_a, name_b, backend)
