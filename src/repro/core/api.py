"""The front-door API: join raw strings, get back similar pairs and rings.

These helpers wrap the full pipeline -- tokenization (whitespace +
punctuation, as in the paper's evaluation), the TSJ join, and the
similarity-graph clustering of Sec. I-A -- behind two calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.graphs import cluster_pairs
from repro.distances import nsld
from repro.mapreduce import ClusterConfig
from repro.runtime import create_engine
from repro.tokenize import Tokenizer
from repro.tsj import TSJ, TSJConfig


@dataclass
class JoinReport:
    """Human-oriented result of :func:`nsld_join`."""

    #: ``(name_a, name_b, distance)`` triples, ascending by distance.
    pairs: list[tuple[str, str, float]]
    #: Clusters of mutually-linked names (potential rings), largest first.
    clusters: list[set[str]]
    #: Index pairs into the input list, for positional bookkeeping.
    index_pairs: set[tuple[int, int]]
    #: Simulated cluster runtime of the join (seconds).
    simulated_seconds: float
    #: Merged pipeline job counters, including the canonical
    #: candidate-pipeline set (``candidates_generated``,
    #: ``pruned_by_length``, ``pruned_by_count``, ``pairs_verified``).
    counters: dict[str, int] = field(default_factory=dict)


def join_records(
    names: Sequence[str],
    records: Sequence,
    threshold: float = 0.1,
    max_token_frequency: int | None = 1000,
    n_machines: int = 10,
    engine: str = "auto",
    **config_overrides,
) -> JoinReport:
    """:func:`nsld_join` over an already-tokenized collection.

    The build-once path: callers holding a tokenized snapshot (the
    serving layer's :class:`repro.service.SimilarityIndex`) skip
    re-tokenization; ``records[i]`` must be the tokenization of
    ``names[i]``.  Everything downstream -- pipeline, counters,
    simulated seconds -- is identical to :func:`nsld_join`.
    """
    if len(names) != len(records):
        raise ValueError(
            f"names and records must align: got {len(names)} names "
            f"for {len(records)} records"
        )
    config = TSJConfig(
        threshold=threshold,
        max_token_frequency=max_token_frequency,
        engine=engine,
        **config_overrides,
    )
    mr_engine = create_engine(engine, ClusterConfig(n_machines=n_machines))
    result = TSJ(config, mr_engine).self_join(records)

    named_pairs = sorted(
        (
            (names[a], names[b], result.distances[(a, b)])
            for a, b in result.pairs
        ),
        key=lambda triple: (triple[2], triple[0], triple[1]),
    )
    clusters = [
        {names[index] for index in cluster}
        for cluster in cluster_pairs(result.pairs)
    ]
    return JoinReport(
        pairs=named_pairs,
        clusters=clusters,
        index_pairs=result.pairs,
        simulated_seconds=result.simulated_seconds(),
        counters=result.counters(),
    )


def nsld_join(
    names: Sequence[str] | None = None,
    threshold: float = 0.1,
    max_token_frequency: int | None = 1000,
    n_machines: int = 10,
    tokenizer: Tokenizer | None = None,
    engine: str = "auto",
    index=None,
    **config_overrides,
) -> JoinReport:
    """Self-join raw name strings under NSLD with the TSJ framework.

    Parameters
    ----------
    names:
        The raw strings to compare pairwise.
    threshold:
        NSLD join threshold ``T`` (paper default 0.1).
    max_token_frequency:
        The popular-token cut-off ``M`` (``None`` = lossless).
    n_machines:
        Simulated cluster size.
    tokenizer:
        Defaults to whitespace+punctuation with case folding.
    engine:
        Execution engine for the pipeline's MapReduce jobs: ``"auto"``
        (parallel over the shared worker pool when multiple CPUs are
        usable and the platform forks workers by default — on
        spawn/forkserver platforms such as macOS or Windows ``auto``
        stays serial; request ``"parallel"`` explicitly under a
        ``__main__`` guard), ``"serial"`` or ``"parallel"`` (see
        :mod:`repro.runtime`).  Pairs and simulated seconds are
        identical under every engine; only wall-clock changes.
    index:
        A resident :class:`repro.service.SimilarityIndex` to join
        instead of ``names`` -- the index-reuse entry point.  The
        snapshot's tokenization is reused and the report comes from (and
        lands in) the index's LRU result cache, so repeated joins cost a
        dict probe.  Mutually exclusive with ``names``/``tokenizer``.
    config_overrides:
        Any further :class:`repro.tsj.TSJConfig` field (``matching``,
        ``aligning``, ``dedup``, ``verify_backend``, ...).

    Examples
    --------
    >>> report = nsld_join(["barak obama", "borak obama", "john smith"],
    ...                    threshold=0.15, max_token_frequency=None)
    >>> [(a, b) for a, b, _ in report.pairs]
    [('barak obama', 'borak obama')]
    """
    if index is not None:
        if names is not None or tokenizer is not None:
            raise ValueError(
                "pass either names (with an optional tokenizer) or a "
                "resident index, not both"
            )
        return index.join(
            threshold=threshold,
            max_token_frequency=max_token_frequency,
            n_machines=n_machines,
            engine=engine,
            **config_overrides,
        )
    if names is None:
        raise ValueError("names is required when no index is given")
    tokenizer = tokenizer or Tokenizer()
    records = [tokenizer.tokenize(name) for name in names]
    return join_records(
        names,
        records,
        threshold=threshold,
        max_token_frequency=max_token_frequency,
        n_machines=n_machines,
        engine=engine,
        **config_overrides,
    )


def compare_names(
    name_a: str,
    name_b: str,
    tokenizer: Tokenizer | None = None,
    backend: str = "auto",
) -> float:
    """NSLD between two raw strings (tokenized with the default tokenizer).

    ``backend`` selects the edit-distance kernel (``"auto" | "dp" |
    "bitparallel"``); every backend returns the same value.

    Examples
    --------
    >>> compare_names("barak obama", "obama barak")
    0.0
    >>> round(compare_names("barak obama", "burak ubama"), 3)
    0.182
    """
    tokenizer = tokenizer or Tokenizer()
    return nsld(tokenizer.tokenize(name_a), tokenizer.tokenize(name_b), backend=backend)
