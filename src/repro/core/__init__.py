"""High-level convenience API over the TSJ framework.

For users who just want to join raw name strings without touching the
tokenizer, engine or config machinery::

    from repro.core import nsld_join

    report = nsld_join(["barak obama", "borak obama", "john smith"],
                       threshold=0.15)
    report.pairs            # [("barak obama", "borak obama", 0.09...)]
    report.clusters         # [{"barak obama", "borak obama"}]
"""

from repro.core.api import JoinReport, compare_names, join_records, nsld_join

__all__ = ["nsld_join", "compare_names", "join_records", "JoinReport"]
