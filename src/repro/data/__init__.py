"""Synthetic data: name corpora, fraud rings, and name-change datasets.

The paper evaluates on 44M proprietary Google-account names.  This package
substitutes a synthetic equivalent that preserves the properties the
algorithms are sensitive to (see DESIGN.md, "Data substitution"):

* realistic multi-token names with a **Zipf-like token popularity**
  distribution, so high-frequency tokens ("John", "Mary") exist and the
  ``M`` cut-off is meaningful (Sec. III-G.2);
* **fraud-ring perturbations** -- the adversarial token edits, shuffles,
  abbreviations and splits the paper motivates ("Barak Obama" ->
  "Obamma, Boraak H.", Sec. I-A);
* **name-change pairs** (legitimate small edits vs drastic fraudulent
  renames) for the ROC experiment of Sec. V-D / Fig. 6.

Everything is seeded and deterministic.
"""

from repro.data.datasets import evaluation_corpus, name_change_dataset
from repro.data.fraud import FraudRingGenerator, corpus_with_rings
from repro.data.names import NameGenerator

__all__ = [
    "NameGenerator",
    "FraudRingGenerator",
    "corpus_with_rings",
    "evaluation_corpus",
    "name_change_dataset",
]
