"""Dataset builders for the paper's experiments.

* :func:`evaluation_corpus` -- the self-join workload of Figs. 1-5 and 7:
  background names plus planted fraud rings, scaled down from the paper's
  44M names to laptop sizes (the CLI and benches expose the size knob).
* :func:`name_change_dataset` -- the Sec. V-D / Fig. 6 workload: 50/50
  legitimate vs fraudulent account name changes.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.data.fraud import FraudRingGenerator, corpus_with_rings
from repro.data.names import NameGenerator

#: Common legitimate nickname substitutions (Sec. V-D cites
#: "William" -> "Bill" as the canonical benign change).
_NICKNAMES = {
    "william": "bill",
    "robert": "bob",
    "richard": "dick",
    "james": "jim",
    "john": "jack",
    "margaret": "peggy",
    "elizabeth": "liz",
    "katherine": "kate",
    "michael": "mike",
    "christopher": "chris",
    "jennifer": "jen",
    "joseph": "joe",
    "thomas": "tom",
    "charles": "chuck",
    "patricia": "pat",
    "daniel": "dan",
    "matthew": "matt",
    "anthony": "tony",
    "steven": "steve",
    "andrew": "andy",
}


def evaluation_corpus(
    size: int,
    ring_fraction: float = 0.3,
    ring_size: int = 5,
    seed: int = 0,
) -> tuple[list[str], list[set[int]]]:
    """The standard self-join workload: names with planted fraud rings.

    Parameters
    ----------
    size:
        Total number of names (background + ring members).
    ring_fraction:
        Fraction of the corpus made of ring members.
    ring_size:
        Accounts per ring.

    Returns ``(names, rings)`` with ring ground truth.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if not 0 <= ring_fraction <= 1:
        raise ValueError("ring_fraction must be in [0, 1]")
    n_ring_members = int(size * ring_fraction)
    n_rings = n_ring_members // ring_size if ring_size else 0
    n_background = size - n_rings * ring_size
    return corpus_with_rings(n_background, n_rings, ring_size, seed=seed)


def _legitimate_change(name: str, rng: random.Random) -> str:
    """A benign name change: nickname, abbreviation, typo fix, or a family
    name change (e.g. marriage) -- small in NSLD except the last case."""
    tokens = name.split()
    move = rng.choices(
        ["nickname", "initial", "typo", "family-change", "add-middle"],
        weights=[0.6, 0.1, 0.1, 0.1, 0.1],
    )[0]
    if move == "nickname":
        # The dominant benign change (Sec. V-D's "William" -> "Bill"): a
        # mid-size edit of one token -- precisely the regime where the
        # fuzzy set measures' token-similarity gate zeroes the credit NSLD
        # still grants.
        replaced = False
        for index, token in enumerate(tokens):
            if token in _NICKNAMES:
                tokens[index] = _NICKNAMES[token]
                replaced = True
                break
        if not replaced:
            tokens[0] = tokens[0][: max(len(tokens[0]) - 2, 1)]
    elif move == "initial":
        index = rng.randrange(len(tokens))
        tokens[index] = tokens[index][0]
    elif move == "typo":
        fraud = FraudRingGenerator(seed=rng.randrange(2**31), max_edits=1,
                                   allow_structural=False)
        return fraud.perturb(name)
    elif move == "family-change":
        from repro.data.names import FAMILY_NAMES

        tokens[-1] = rng.choice(FAMILY_NAMES)
    else:  # add-middle
        tokens.insert(1, rng.choice("abcdefghijklmnopqrstuvwxyz"))
    return " ".join(tokens)


def name_change_dataset(
    size: int = 10_000, seed: int = 0
) -> list[tuple[str, str, bool]]:
    """The Fig. 6 workload: ``size`` accounts that changed their names.

    Half the sample are legitimate accounts (small, explainable changes);
    half are fraudulent (the account was sold and drastically renamed --
    Sec. V-D: "the account-creation attacker typically chooses a random
    name ... the account name is drastically changed").

    Returns ``(old_name, new_name, is_fraud)`` triples, shuffled.

    The token-popularity skew is deliberately high (``zipf_exponent=1.6``):
    independent random identities then frequently share a popular token
    ("john", "smith") by coincidence, which is exactly the regime where
    token-overlap measures mistake a drastic fraudulent rename for a small
    change while NSLD still registers the bulk of the edit -- the failure
    mode behind Fig. 6.  Fraudulent renames that coincidentally reproduce
    (almost) the old identity -- sharing two or more tokens -- are
    resampled: a "drastic change" (Sec. V-D) that lands on the same name
    is no change at all.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random(seed)
    generator = NameGenerator(seed=seed + 1, zipf_exponent=1.6)
    half = size // 2

    triples: list[tuple[str, str, bool]] = []
    for _ in range(half):
        old = generator.generate_one()
        triples.append((old, _legitimate_change(old, rng), False))
    for _ in range(size - half):
        old = generator.generate_one()
        old_tokens = Counter(old.split())
        for _ in range(20):
            new = generator.generate_one()  # independent random identity
            overlap = sum((old_tokens & Counter(new.split())).values())
            if overlap < 2:
                break
        triples.append((old, new, True))
    rng.shuffle(triples)
    return triples
