"""The adversarial perturbation model: fraud rings over account names.

Sec. I-A: a fraudster who controls one bank-account holder opens many
service-provider accounts under *slightly edited* variants of the holder's
name -- subtle enough that a bank officer accepts the payee, different
enough that naive string equality misses the ring ("Barak Obama" ->
"Obamma, Boraak H." or "Burak Ubama").

:class:`FraudRingGenerator` reproduces that behaviour with the edit moves
an adversary actually has:

* character substitution / insertion / deletion / duplication inside a
  token (NSLD-visible as token edits);
* adjacent-character swap (two character edits);
* token shuffle (free under NSLD -- multiset semantics);
* abbreviating a token to its initial;
* splitting a token in two, or merging two adjacent tokens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.names import NameGenerator

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class FraudRingGenerator:
    """Generates rings of slightly-edited name variants.

    Parameters
    ----------
    seed:
        RNG seed (deterministic output).
    max_edits:
        Character-level edits applied per variant (1-2 keeps variants
        within NSLD ~0.1 of the base for typical name lengths).
    allow_structural:
        Also apply one structural move (shuffle / abbreviation / split /
        merge) with probability 1/3 per variant.
    """

    seed: int = 0
    max_edits: int = 2
    allow_structural: bool = True
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- character-level edits -------------------------------------------------

    def _edit_token(self, token: str) -> str:
        """One random character edit inside a token."""
        rng = self._rng
        move = rng.choice(["substitute", "insert", "delete", "duplicate", "swap"])
        if not token:
            return rng.choice(_ALPHABET)
        position = rng.randrange(len(token))
        if move == "substitute":
            replacement = rng.choice(_ALPHABET)
            return token[:position] + replacement + token[position + 1 :]
        if move == "insert":
            return token[:position] + rng.choice(_ALPHABET) + token[position:]
        if move == "delete":
            return token[:position] + token[position + 1 :] if len(token) > 1 else token
        if move == "duplicate":
            return token[: position + 1] + token[position] + token[position + 1 :]
        # swap adjacent characters
        if len(token) < 2:
            return token
        position = rng.randrange(len(token) - 1)
        return (
            token[:position]
            + token[position + 1]
            + token[position]
            + token[position + 2 :]
        )

    # -- structural edits -------------------------------------------------------

    def _structural(self, tokens: list[str]) -> list[str]:
        rng = self._rng
        tokens = list(tokens)
        move = rng.choice(["shuffle", "abbreviate", "split", "merge"])
        if move == "shuffle" and len(tokens) > 1:
            rng.shuffle(tokens)
        elif move == "abbreviate":
            index = rng.randrange(len(tokens))
            tokens[index] = tokens[index][0]
        elif move == "split":
            index = rng.randrange(len(tokens))
            token = tokens[index]
            if len(token) >= 4:
                cut = rng.randrange(2, len(token) - 1)
                tokens[index : index + 1] = [token[:cut], token[cut:]]
        elif move == "merge" and len(tokens) > 1:
            index = rng.randrange(len(tokens) - 1)
            tokens[index : index + 2] = [tokens[index] + tokens[index + 1]]
        return tokens

    # -- public API ---------------------------------------------------------------

    def perturb(self, name: str) -> str:
        """One adversarial variant of ``name``."""
        tokens = name.split()
        if not tokens:
            return name
        edits = self._rng.randint(1, max(self.max_edits, 1))
        for _ in range(edits):
            index = self._rng.randrange(len(tokens))
            tokens[index] = self._edit_token(tokens[index])
        if self.allow_structural and self._rng.random() < 1 / 3:
            tokens = self._structural(tokens)
        return " ".join(token for token in tokens if token)

    def make_ring(self, base_name: str, size: int) -> list[str]:
        """``size`` account names controlled by one attacker: the base
        name plus ``size - 1`` perturbed variants."""
        if size < 1:
            raise ValueError("ring size must be positive")
        return [base_name] + [self.perturb(base_name) for _ in range(size - 1)]


def corpus_with_rings(
    n_background: int,
    n_rings: int,
    ring_size: int,
    seed: int = 0,
    max_edits: int = 2,
) -> tuple[list[str], list[set[int]]]:
    """A labelled evaluation corpus: innocent names plus planted rings.

    Returns ``(names, rings)`` where ``rings`` lists, per planted ring, the
    set of indices into ``names`` belonging to it -- the ground truth for
    the fraud-ring-detection example and the recall benchmarks.
    """
    generator = NameGenerator(seed=seed)
    fraud = FraudRingGenerator(seed=seed + 1, max_edits=max_edits)
    names = generator.generate(n_background)
    rings: list[set[int]] = []
    for _ in range(n_rings):
        base = generator.generate_one()
        ring = fraud.make_ring(base, ring_size)
        indices = set(range(len(names), len(names) + len(ring)))
        names.extend(ring)
        rings.append(indices)
    return names, rings
