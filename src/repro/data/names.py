"""Synthetic personal-name generator with Zipf-distributed token popularity.

Names are assembled from pools of given and family names.  Tokens are drawn
with probability proportional to ``1 / rank**zipf_exponent``, so a few
tokens ("john", "mary", "smith") dominate -- matching real name corpora and
making the paper's high-frequency-token knob ``M`` meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Given-name pool, most popular first (ranks drive the Zipf weights).
GIVEN_NAMES = [
    "john", "mary", "james", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
    "stephen", "brenda", "larry", "pamela", "justin", "emma", "scott",
    "nicole", "brandon", "helen", "benjamin", "samantha", "samuel",
    "katherine", "gregory", "christine", "frank", "debra", "alexander",
    "rachel", "raymond", "carolyn", "patrick", "janet", "jack", "catherine",
    "dennis", "maria", "jerry", "heather", "tyler", "diane", "aaron", "ruth",
    "jose", "julie", "adam", "olivia", "nathan", "joyce", "henry",
    "virginia", "douglas", "victoria", "zachary", "kelly", "peter",
    "lauren", "kyle", "christina", "ethan", "joan", "walter", "evelyn",
    "noah", "judith", "jeremy", "megan", "christian", "andrea", "keith",
    "cheryl", "roger", "hannah", "terry", "jacqueline", "gerald", "martha",
    "harold", "gloria", "sean", "teresa", "austin", "ann", "carl", "sara",
    "arthur", "madison", "lawrence", "frances", "dylan", "kathryn", "jesse",
    "janice", "jordan", "jean", "bryan", "abigail", "billy", "alice",
    "joe", "julia", "bruce", "judy", "gabriel", "sophia", "logan", "grace",
    "albert", "denise", "willie", "amber", "alan", "doris", "juan",
    "marilyn", "wayne", "danielle", "elijah", "beverly", "randy", "isabella",
    "roy", "theresa", "vincent", "diana", "ralph", "natalie", "eugene",
    "brittany", "russell", "charlotte", "bobby", "marie", "mason", "kayla",
    "philip", "alexis", "louis", "lori",
]

#: Family-name pool, most popular first.
FAMILY_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
    "sullivan", "bell", "coleman", "butler", "henderson", "barnes",
    "gonzales", "fisher", "vasquez", "simmons", "romero", "jordan",
    "patterson", "alexander", "hamilton", "graham", "reynolds", "griffin",
    "wallace", "moreno", "west", "cole", "hayes", "bryant", "herrera",
    "gibson", "ellis", "tran", "medina", "aguilar", "stevens", "murray",
    "ford", "castro", "marshall", "owens", "harrison", "fernandez",
    "mcdonald", "woods", "washington", "kennedy", "wells", "vargas",
    "henry", "chen", "freeman", "webb", "tucker", "guzman", "burns",
    "crawford", "olson", "simpson", "porter", "hunter", "gordon", "mendez",
    "silva", "shaw", "snyder", "mason", "dixon", "munoz", "hunt", "hicks",
    "holmes", "palmer", "wagner", "black", "robertson", "boyd", "rose",
    "stone", "salazar", "fox", "warren", "mills", "meyer", "rice",
    "schmidt", "garza", "daniels", "ferguson", "nichols", "stephens",
    "soto", "weaver", "ryan", "gardner", "payne", "grant", "dunn",
]

#: Syllables for synthesising additional surnames.  Real regional corpora
#: have vocabularies of tens of thousands of distinct family names; the
#: hand-written pool above covers only the popular head of that Zipf
#: distribution, so the tail is synthesised deterministically from
#: syllable products (prefix x middle x suffix, in fixed order).
_SURNAME_PREFIXES = [
    "an", "bar", "cas", "dor", "el", "fen", "gar", "hol", "iv", "jas",
    "kor", "lan", "mor", "nev", "or", "pet", "quin", "ros", "sil", "tor",
    "ul", "var", "wes", "xan", "yor", "zel",
]
_SURNAME_MIDDLES = [
    "a", "e", "i", "o", "u", "ar", "en", "il", "on", "ur",
    "and", "est", "ing", "olt", "umb",
]
_SURNAME_SUFFIXES = [
    "son", "sen", "berg", "strom", "ley", "ton", "ard", "ini", "ez",
    "ov", "escu", "wald", "mann", "ic", "ak", "ura", "oto", "eda", "awa",
]


def synthesize_surnames(count: int) -> list[str]:
    """The first ``count`` synthetic surnames in canonical syllable order.

    Deterministic and collision-free with respect to ordering, extending
    the surname vocabulary into the Zipf tail (up to ~7,400 extra names).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    names: list[str] = []
    for prefix in _SURNAME_PREFIXES:
        for middle in _SURNAME_MIDDLES:
            for suffix in _SURNAME_SUFFIXES:
                if len(names) >= count:
                    return names
                names.append(prefix + middle + suffix)
    if len(names) < count:
        raise ValueError(f"cannot synthesise {count} surnames (max {len(names)})")
    return names


#: Name-shape templates and their sampling weights: G = given token,
#: F = family token, I = single-letter initial, S = generational suffix.
_PATTERNS = [
    (("G", "F"), 0.55),
    (("G", "G", "F"), 0.18),
    (("G", "I", "F"), 0.12),
    (("F", "G"), 0.06),
    (("G", "F", "S"), 0.05),
    (("G", "F", "F"), 0.04),
]

_SUFFIXES = ["jr", "sr", "ii", "iii", "iv"]


@dataclass
class NameGenerator:
    """Deterministic generator of realistic full names.

    Parameters
    ----------
    seed:
        RNG seed; every output is a pure function of the constructor
        arguments.
    zipf_exponent:
        Skew of the token popularity distribution.  1.0 approximates real
        name-frequency data; 0.0 makes tokens uniform.
    family_vocabulary_size:
        Total surname vocabulary.  The hand-written popular pool is
        extended with deterministic synthetic surnames into the Zipf tail
        -- real regional corpora (the paper joins a whole region's
        accounts) have most of their distinct tokens in that tail.

    Examples
    --------
    >>> gen = NameGenerator(seed=1)
    >>> names = gen.generate(3)
    >>> len(names)
    3
    >>> all(isinstance(n, str) and " " in n for n in names)
    True
    """

    seed: int = 0
    zipf_exponent: float = 1.0
    family_vocabulary_size: int = 2000
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        extra = max(0, self.family_vocabulary_size - len(FAMILY_NAMES))
        self._family_pool = FAMILY_NAMES + synthesize_surnames(extra)
        self._given_weights = self._weights(len(GIVEN_NAMES))
        self._family_weights = self._weights(len(self._family_pool))

    def _weights(self, count: int) -> list[float]:
        return [1.0 / (rank**self.zipf_exponent) for rank in range(1, count + 1)]

    def _given(self) -> str:
        return self._rng.choices(GIVEN_NAMES, weights=self._given_weights)[0]

    def _family(self) -> str:
        return self._rng.choices(self._family_pool, weights=self._family_weights)[0]

    def generate_one(self) -> str:
        """One full name as a whitespace-separated string."""
        patterns, weights = zip(*_PATTERNS)
        pattern = self._rng.choices(patterns, weights=weights)[0]
        tokens = []
        for symbol in pattern:
            if symbol == "G":
                tokens.append(self._given())
            elif symbol == "F":
                tokens.append(self._family())
            elif symbol == "I":
                tokens.append(self._rng.choice("abcdefghijklmnopqrstuvwxyz"))
            else:  # "S"
                tokens.append(self._rng.choice(_SUFFIXES))
        return " ".join(tokens)

    def generate(self, count: int) -> list[str]:
        """``count`` independent full names."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_one() for _ in range(count)]
