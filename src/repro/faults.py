"""Deterministic, seedable fault injection: the chaos substrate.

A production-shaped service earns its fault model the same way it earns
its performance claims: by measurement.  This module is the measurement
instrument -- a process-wide registry of *faults* that named code sites
(:func:`fault_point` calls threaded through the runtime pool workers,
the MapReduce shards, the HTTP server and the client transport) consult
on every pass.  A fault can

* **kill** the current pool worker (``os.kill(os.getpid(), SIGKILL)`` --
  the real thing, not an exception), exercising the pool's crash
  recovery; kill faults only ever fire inside daemonic pool workers, so
  an in-process fallback re-running the same code cannot shoot the
  parent;
* **raise** an injected exception (``FaultInjected`` by default, or a
  named stdlib failure such as ``ConnectionResetError`` to sever a
  client connection mid-request);
* **delay** execution by a fixed number of seconds (widening race
  windows deterministically);
* **call** an arbitrary callback (programmatic plans only) -- the hook
  chaos tests use to synchronise on events instead of sleeping.

Determinism
-----------
Nothing here consults wall-clock randomness.  A fault fires on a site's
Nth *call* (``probability=1.0``, the default) or on calls selected by a
pure function of ``(seed, site, call index)`` -- re-running the same
program with the same plan and seed fires the same faults at the same
points.  ``times`` bounds how often a fault fires; with a **ledger**
directory the accounting spans processes (a kill fired inside a pool
worker stays fired after the pool is rebuilt -- claimed via atomic
``O_CREAT | O_EXCL`` file creation), which is what lets a
kill-once/retry-succeeds scenario converge.

Activation
----------
Programmatic: :func:`inject` / :func:`clear` (tests).  Environment: the
``REPRO_FAULTS`` variable holds a JSON list of fault objects (plus
optional ``REPRO_FAULTS_LEDGER`` and ``REPRO_FAULTS_SEED`` defaults) --
the knob the chaos CI job and subprocess servers use::

    REPRO_FAULTS='[{"site": "verify.chunk", "action": "kill"}]'

Installed plans are pushed into shared-pool workers through the pool's
worker-initializer mechanism, so faults reach forked *and* spawned
workers, and installing a plan forces the next :func:`~repro.runtime.
pool.shared_pool` call to rebuild the pool with the plan in place.

This module imports nothing from the rest of the package at import time
(the pool hook is loaded lazily), so any layer can call
:func:`fault_point` without cycles; with no plan installed the call is
one global load and a ``None`` check.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable

__all__ = [
    "ENV_FAULTS",
    "ENV_LEDGER",
    "ENV_SEED",
    "Fault",
    "FaultInjected",
    "active_faults",
    "clear",
    "fault_point",
    "fault_stats",
    "inject",
    "install",
    "plan_from_env",
]

ENV_FAULTS = "REPRO_FAULTS"
ENV_LEDGER = "REPRO_FAULTS_LEDGER"
ENV_SEED = "REPRO_FAULTS_SEED"

#: The recognised fault actions.
ACTIONS = ("kill", "raise", "delay", "call")

#: Named exception classes an env-declared ``raise`` fault can throw --
#: the transport/pool failure shapes the robustness layers must absorb.
EXCEPTIONS: dict[str, type[BaseException]] = {
    "fault": None,  # type: ignore[dict-item]  # placeholder, filled below
    "oserror": OSError,
    "connection_reset": ConnectionResetError,
    "broken_pipe": BrokenPipeError,
    "timeout": TimeoutError,
}


class FaultInjected(RuntimeError):
    """The default exception an injected ``raise`` fault throws."""


EXCEPTIONS["fault"] = FaultInjected


@dataclass(frozen=True)
class Fault:
    """One injection rule: *what* happens *where*, *how often*.

    Parameters
    ----------
    site:
        The :func:`fault_point` name this fault arms (exact match).
    action:
        ``"kill"`` | ``"raise"`` | ``"delay"`` | ``"call"``.
    times:
        Maximum number of firings (``None`` = unbounded).  With a ledger
        the count is claimed atomically across processes; without one it
        is per-process.
    delay:
        Seconds to sleep for ``action="delay"``.
    exception:
        Key into :data:`EXCEPTIONS` for ``action="raise"``.
    probability:
        Chance a given call fires, decided by a pure function of
        ``(seed, site, call index)`` -- deterministic per plan.
    seed:
        The randomness seed for ``probability < 1`` sampling.
    scope:
        Where a ``kill`` fault may fire: ``"worker"`` (the default)
        restricts it to daemonic pool workers, so an in-process fallback
        re-running the same code cannot shoot the parent; ``"any"``
        also kills non-worker processes -- what the durable-store chaos
        runs use to SIGKILL a dedicated saver subprocess mid-write and
        prove the atomic-rename guarantee.  Ignored for other actions.
    callback:
        The hook for ``action="call"`` (programmatic plans only; not
        serialisable to the environment form).
    """

    site: str
    action: str = "raise"
    times: int | None = 1
    delay: float = 0.0
    exception: str = "fault"
    probability: float = 1.0
    seed: int = 0
    scope: str = "worker"
    callback: Callable[[str], None] | None = None

    def __post_init__(self) -> None:
        if self.scope not in ("worker", "any"):
            raise ValueError(
                f"unknown fault scope {self.scope!r}; "
                "choose from ['worker', 'any']"
            )
        if self.action not in ACTIONS:
            listed = ", ".join(repr(a) for a in ACTIONS)
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from [{listed}]"
            )
        if self.action == "raise" and self.exception not in EXCEPTIONS:
            listed = ", ".join(sorted(EXCEPTIONS))
            raise ValueError(
                f"unknown fault exception {self.exception!r}; "
                f"choose from [{listed}]"
            )
        if self.action == "call" and self.callback is None:
            raise ValueError('action="call" requires a callback')

    def to_dict(self) -> dict:
        """The JSON (environment) form; callbacks do not serialise."""
        payload = {"site": self.site, "action": self.action, "times": self.times}
        if self.delay:
            payload["delay"] = self.delay
        if self.exception != "fault":
            payload["exception"] = self.exception
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.seed:
            payload["seed"] = self.seed
        if self.scope != "worker":
            payload["scope"] = self.scope
        return payload


@dataclass
class _Plan:
    """The installed fault set plus its firing state."""

    faults: tuple[Fault, ...]
    ledger: str | None = None
    #: site -> calls observed in this process (drives seeded sampling).
    calls: dict[str, int] = field(default_factory=dict)
    #: (site, action) -> per-process firings (the no-ledger accounting).
    fired: dict[tuple[str, str], int] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)


_PLAN: _Plan | None = None
_ENV_LOADED = False


def _load_env_plan() -> None:
    """Arm the environment-declared plan once per process (lazy)."""
    global _ENV_LOADED, _PLAN
    _ENV_LOADED = True
    raw = os.environ.get(ENV_FAULTS)
    if not raw or _PLAN is not None:
        return
    _PLAN = _Plan(plan_from_env(raw), ledger=os.environ.get(ENV_LEDGER))


def plan_from_env(raw: str) -> tuple[Fault, ...]:
    """Parse the ``REPRO_FAULTS`` JSON list into :class:`Fault` rules.

    Unknown keys fail loudly -- a misspelled chaos plan that silently
    arms nothing would make a green chaos run meaningless.
    """
    try:
        entries = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{ENV_FAULTS} is not valid JSON: {exc}") from exc
    if not isinstance(entries, list):
        raise ValueError(f"{ENV_FAULTS} must be a JSON list of fault objects")
    default_seed = int(os.environ.get(ENV_SEED, "0") or "0")
    faults = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"{ENV_FAULTS} entries must be objects, got {entry!r}")
        entry = dict(entry)
        entry.setdefault("seed", default_seed)
        unknown = set(entry) - {
            "site",
            "action",
            "times",
            "delay",
            "exception",
            "probability",
            "seed",
            "scope",
        }
        if unknown:
            raise ValueError(f"unknown fault key(s) {sorted(unknown)} in {entry!r}")
        faults.append(Fault(**entry))
    return tuple(faults)


def _push_to_workers() -> None:
    """Mirror the installed plan into future shared-pool workers.

    Registered as a pool worker initializer, so a plan installed before
    (or while) a pool is live reaches every worker: registration bumps
    the pool generation, forcing the next ``shared_pool()`` checkout to
    rebuild with the plan in the start-up payload.  Callback faults stay
    parent-only (callables may not pickle under spawn); kill/raise/delay
    faults -- the ones that belong in workers -- travel.
    """
    from repro.runtime import pool  # lazy: faults sits below the runtime

    if _PLAN is None:
        pool.unregister_worker_initializer("repro.faults")
        return
    portable = tuple(f for f in _PLAN.faults if f.action != "call")
    pool.register_worker_initializer(
        "repro.faults", _install_in_worker, (portable, _PLAN.ledger)
    )


def _install_in_worker(faults: tuple[Fault, ...], ledger: str | None) -> None:
    """Pool-worker initializer: arm the parent's plan locally."""
    global _PLAN, _ENV_LOADED
    _ENV_LOADED = True  # the explicit plan wins over the environment
    _PLAN = _Plan(faults, ledger=ledger)


def install(
    faults, *, ledger: str | None = None, push_to_pool: bool = True
) -> None:
    """Arm a fault plan for this process (replacing any previous one).

    ``ledger`` names a directory for cross-process ``times`` accounting;
    when omitted, one is created under the default temp dir so kill-once
    semantics hold across pool rebuilds out of the box.
    ``push_to_pool=False`` keeps the plan out of pool workers (pure
    parent-side faults, e.g. client-transport ones, avoid a needless
    pool rebuild that way).
    """
    global _PLAN, _ENV_LOADED
    _ENV_LOADED = True
    faults = tuple(faults)
    if ledger is None and any(f.times is not None for f in faults):
        import tempfile

        ledger = tempfile.mkdtemp(prefix="repro-faults-")
    _PLAN = _Plan(faults, ledger=ledger)
    if push_to_pool:
        _push_to_workers()


def inject(
    site: str,
    action: str = "raise",
    *,
    times: int | None = 1,
    delay: float = 0.0,
    exception: str = "fault",
    probability: float = 1.0,
    seed: int = 0,
    scope: str = "worker",
    callback: Callable[[str], None] | None = None,
    ledger: str | None = None,
    push_to_pool: bool = True,
) -> Fault:
    """Add one fault to the active plan (installing a plan if none is).

    The convenience entry point chaos tests use::

        faults.inject("verify.chunk", "kill")          # kill one worker
        faults.inject("server.run", "delay", delay=.2) # slow a handler
    """
    fault = Fault(
        site=site,
        action=action,
        times=times,
        delay=delay,
        exception=exception,
        probability=probability,
        seed=seed,
        scope=scope,
        callback=callback,
    )
    existing = _PLAN.faults if _PLAN is not None else ()
    keep_ledger = ledger if ledger is not None else (
        _PLAN.ledger if _PLAN is not None else None
    )
    install(existing + (fault,), ledger=keep_ledger, push_to_pool=push_to_pool)
    return fault


def clear() -> None:
    """Disarm every fault (and withdraw the worker-initializer push)."""
    global _PLAN, _ENV_LOADED
    _PLAN = None
    _ENV_LOADED = True  # do not re-arm from the environment afterwards
    try:
        _push_to_workers()
    except Exception:  # noqa: BLE001 -- teardown must never fail the caller
        pass


def active_faults() -> tuple[Fault, ...]:
    """The armed fault rules (empty when chaos is off)."""
    if not _ENV_LOADED:
        _load_env_plan()
    return _PLAN.faults if _PLAN is not None else ()


def fault_stats() -> dict[str, int]:
    """Per-process firing counts keyed ``"site:action"`` (assertions)."""
    if _PLAN is None:
        return {}
    with _PLAN.lock:
        return {
            f"{site}:{action}": count
            for (site, action), count in sorted(_PLAN.fired.items())
        }


def _in_pool_worker() -> bool:
    # Mirrors repro.runtime.pool.in_worker_process without the import:
    # pool workers are daemonic, the parent process never is.
    return multiprocessing.current_process().daemon


def _claim_firing(plan: _Plan, fault: Fault) -> bool:
    """Reserve one of ``fault.times`` firing slots; False when exhausted.

    With a ledger directory the slots are files claimed with
    ``O_CREAT | O_EXCL`` -- atomic across processes, so a fault that
    fired inside a since-killed pool worker stays spent.  Without one,
    slots are per-process counters.
    """
    if fault.times is None:
        return True
    key = (fault.site, fault.action)
    if plan.ledger:
        safe = fault.site.replace(os.sep, "_")
        usable = True
        for slot in range(fault.times):
            path = os.path.join(plan.ledger, f"{safe}.{fault.action}.{slot}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                with plan.lock:
                    plan.fired[key] = plan.fired.get(key, 0) + 1
                return True
            except FileExistsError:
                continue
            except OSError:
                usable = False
                break  # unusable ledger: fall back to per-process counting
        if usable:
            return False  # every cross-process slot is already claimed
    with plan.lock:
        fired = plan.fired.get(key, 0)
        if fired >= fault.times:
            return False
        plan.fired[key] = fired + 1
    return True


def _selected(plan: _Plan, fault: Fault, call_index: int) -> bool:
    if fault.probability >= 1.0:
        return True
    # A pure function of (seed, site, call index): the same plan fires
    # at the same calls on every run, in every process.
    draw = Random(f"{fault.seed}:{fault.site}:{call_index}").random()
    return draw < fault.probability


def fault_point(site: str) -> None:
    """Consult the armed plan at a named site; usually a no-op.

    Instrumented sites (grep for ``fault_point`` to confirm):

    ======================  ==================================================
    ``verify.chunk``        inside a ``verify_pairs`` worker chunk
    ``engine.map``          inside a parallel-engine map shard
    ``engine.reduce``       inside a parallel-engine reduce shard
    ``serve.chunk``         inside a pool-served query chunk
    ``server.run``          the HTTP server, before executing a parsed spec
    ``client.send``         the SDK, before writing a request to the socket
    ``store.write``         the durable store, before writing snapshot/WAL
                            bytes (a kill here must leave the previous
                            snapshot byte-identical)
    ``store.fsync``         the durable store, before an fsync barrier
    ``store.replay``        the durable store, before applying one WAL
                            record on load
    ======================  ==================================================
    """
    if not _ENV_LOADED:
        _load_env_plan()
    plan = _PLAN
    if plan is None:
        return
    with plan.lock:
        call_index = plan.calls.get(site, 0)
        plan.calls[site] = call_index + 1
    for fault in plan.faults:
        if fault.site != site:
            continue
        if not _selected(plan, fault, call_index):
            continue
        if (
            fault.action == "kill"
            and fault.scope != "any"
            and not _in_pool_worker()
        ):
            # Kill faults model *worker* crashes; firing in the parent
            # (e.g. on the degraded in-process path re-running the same
            # chunk function) would kill the process under test.  A
            # scope="any" fault opts out -- the store chaos runs arm it
            # in a dedicated saver subprocess they expect to die.
            continue
        if not _claim_firing(plan, fault):
            continue
        if fault.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.action == "delay":
            time.sleep(fault.delay)
        elif fault.action == "call":
            fault.callback(site)  # type: ignore[misc]
        else:  # raise
            exc_type = EXCEPTIONS[fault.exception]
            raise exc_type(
                f"injected fault at {site!r} "
                f"(call {call_index}, action {fault.action!r})"
            )


def _reset_for_tests() -> None:
    """Forget everything, including the env plan (test isolation)."""
    global _PLAN, _ENV_LOADED
    _PLAN = None
    _ENV_LOADED = False
