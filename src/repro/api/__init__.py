"""The declarative front door: specs in, uniform envelopes out.

One stable, serializable API surface in front of every join, search and
serving layer (see README.md "Public API"):

* **Specs** (:mod:`repro.api.specs`) -- :class:`JoinSpec`,
  :class:`TopKSpec`, :class:`WithinSpec`, :class:`CompareSpec`:
  frozen, JSON-round-tripping request objects;
* **Registry** (:mod:`repro.api.registry`) -- every join algorithm and
  search backend registered behind one selector namespace, plus the
  shared :func:`~repro.api.registry.validate_choice` selector validator
  used repository-wide;
* **Session** (:mod:`repro.api.session`) -- the facade owning tokenizer,
  engine/backend defaults and resident-index lifecycle;
  ``Session.run(spec)`` (or the module-level :func:`run`) executes any
  spec;
* **ResultSet** (:mod:`repro.api.result`) -- the uniform result
  envelope (pairs/matches, clusters, cascade + cache counters,
  simulated seconds, build/query wall-clock split) with a JSON wire
  form -- what the CLI ``--json`` mode emits and a future server
  speaks.

Attributes are loaded lazily (PEP 562) so that low-level packages
(``repro.accel``, ``repro.runtime``) can import
``repro.api.registry.validate_choice`` without pulling the whole facade
in -- and without import cycles.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "CompareSpec",
    "JoinSpec",
    "ResultSet",
    "Session",
    "TopKSpec",
    "ValidationError",
    "WIRE_VERSION",
    "WithinSpec",
    "default_session",
    "errors",
    "join_algorithms",
    "registry",
    "run",
    "search_methods",
    "spec_from_json",
    "validate_choice",
]

_EXPORTS = {
    "ApiError": ("repro.api.errors", "ApiError"),
    "ValidationError": ("repro.api.errors", "ValidationError"),
    "WIRE_VERSION": ("repro.api.errors", "WIRE_VERSION"),
    "CompareSpec": ("repro.api.specs", "CompareSpec"),
    "JoinSpec": ("repro.api.specs", "JoinSpec"),
    "TopKSpec": ("repro.api.specs", "TopKSpec"),
    "WithinSpec": ("repro.api.specs", "WithinSpec"),
    "spec_from_json": ("repro.api.specs", "spec_from_json"),
    "ResultSet": ("repro.api.result", "ResultSet"),
    "Session": ("repro.api.session", "Session"),
    "default_session": ("repro.api.session", "default_session"),
    "run": ("repro.api.session", "run"),
    "join_algorithms": ("repro.api.registry", "join_algorithms"),
    "search_methods": ("repro.api.registry", "search_methods"),
    "validate_choice": ("repro.api.registry", "validate_choice"),
}


def __getattr__(name: str):
    if name == "registry":
        import repro.api.registry as registry

        return registry
    if name == "errors":
        import repro.api.errors as errors

        return errors
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
