"""The algorithm registry and the shared selector validator.

Every string selector in the repository -- join ``algorithm`` names,
search ``method`` names, verification ``backend`` kernels, execution
``engine`` names, MassJoin ``mode`` -- is validated by the one helper
:func:`validate_choice`, so an unknown name fails the same way
everywhere: ``unknown <kind> '<value>'; choose from [...]``.

On top of that sit the two registries behind the declarative front door
(:mod:`repro.api`):

* **join algorithms** (:func:`register_join` / :func:`resolve_join`) --
  every join layer in the repository (the TSJ pipeline, the serial and
  MapReduce string joins, the set joins, the metric-space family)
  registers a :class:`JoinAlgorithm` adapter normalising its native
  signature, so ``JoinSpec(algorithm="passjoin_k", ...)`` is a uniform
  call;
* **search backends** (:func:`register_search` / :func:`resolve_search`)
  -- the serving methods behind ``TopKSpec``/``WithinSpec``
  (``similarity_index``, ``vptree``, ``bktree``, ``fuzzymatch``), each a
  :class:`SearchBackend` mapping onto the resident
  :class:`repro.service.SimilarityIndex`.

This module imports nothing from the rest of the package at module
scope except the leaf :mod:`repro.api.errors` (the typed error
hierarchy); the built-in adapters (:mod:`repro.api.adapters`) are loaded
lazily on first resolution, which keeps the validator importable from
low-level packages (``repro.accel``, ``repro.runtime``) without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.api.errors import ValidationError

__all__ = [
    "JoinAlgorithm",
    "JoinOutcome",
    "SearchBackend",
    "join_algorithms",
    "register_join",
    "register_search",
    "resolve_join",
    "resolve_search",
    "search_methods",
    "validate_choice",
]


def validate_choice(kind: str, value, choices: Sequence[str]) -> str:
    """Validate a string selector; raise a uniform, helpful error.

    The error is a :class:`repro.api.errors.ValidationError` -- an
    :class:`ApiError` (so the CLI and the HTTP server render it as the
    uniform JSON error envelope) that is also a plain
    :class:`ValueError` for pre-existing callers.

    Examples
    --------
    >>> validate_choice("verification backend", "dp", ("auto", "dp"))
    'dp'
    >>> validate_choice("verification backend", "gpu", ("auto", "dp"))
    Traceback (most recent call last):
        ...
    repro.api.errors.ValidationError: unknown verification backend 'gpu'; choose from ['auto', 'dp']
    """
    if value not in choices:
        listed = ", ".join(repr(choice) for choice in choices)
        raise ValidationError(f"unknown {kind} {value!r}; choose from [{listed}]")
    return value


@dataclass
class JoinOutcome:
    """What a join adapter hands back to the :class:`repro.api.Session`.

    The facade turns this into the uniform :class:`repro.api.ResultSet`
    envelope; adapters only normalise their layer's native output.
    """

    #: Index pairs ``(i, j)`` with ``i < j`` (``(i, j)`` across sides for
    #: future bipartite support).
    pairs: set
    #: Pair -> native score, when the algorithm reports one.
    distances: dict | None = None
    #: Canonical candidate-pipeline counters, when the layer meters them.
    counters: Mapping[str, int] | None = None
    #: Simulated cluster seconds, for the MapReduce-based layers.
    simulated_seconds: float | None = None


@dataclass(frozen=True)
class JoinAlgorithm:
    """A registered join layer, normalised behind ``JoinSpec``.

    Attributes
    ----------
    name:
        The ``JoinSpec.algorithm`` selector.
    runner:
        ``runner(corpus, spec, session) -> JoinOutcome``.  ``corpus``
        exposes ``names`` / ``strings`` / ``records`` / ``token_lists``
        views of the collection (tokenized once per session corpus).
    threshold_kind:
        The native threshold semantics: ``"nsld"`` / ``"nld"`` (float
        distances), ``"ld"`` (integer edit distance) or ``"jaccard"``
        (similarity in ``(0, 1]``).
    score_kind:
        ``"distance"`` (ascending is better) or ``"similarity"``
        (descending is better) -- drives result ordering.
    scorer:
        ``scorer(corpus, i, j) -> score`` fallback for layers that
        report bare pairs without per-pair scores.
    """

    name: str
    runner: Callable
    threshold_kind: str = "nsld"
    score_kind: str = "distance"
    scorer: Callable | None = None
    description: str = ""


@dataclass(frozen=True)
class SearchBackend:
    """A registered serving backend, normalised behind ``TopKSpec`` /
    ``WithinSpec``."""

    name: str
    #: The :class:`repro.service.SimilarityIndex` ``method=`` selector
    #: this backend maps onto.
    serve_method: str
    score_kind: str = "distance"
    supports_within: bool = True
    description: str = ""
    #: Extra ``JoinSpec.method`` spellings accepted for this backend.
    aliases: tuple = field(default=())


_JOINS: dict[str, JoinAlgorithm] = {}
_SEARCH: dict[str, SearchBackend] = {}
_SEARCH_ALIASES: dict[str, str] = {}
_BUILTINS_LOADED = False


def register_join(adapter: JoinAlgorithm) -> JoinAlgorithm:
    """Register (or replace) a join algorithm adapter."""
    _JOINS[adapter.name] = adapter
    return adapter


def register_search(adapter: SearchBackend) -> SearchBackend:
    """Register (or replace) a search backend adapter."""
    _SEARCH[adapter.name] = adapter
    for alias in adapter.aliases:
        _SEARCH_ALIASES[alias] = adapter.name
    return adapter


def _ensure_builtins() -> None:
    """Load the built-in adapters exactly once (deferred import)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Flag only after a *successful* import: a transient import
        # failure must surface again on the next call, not leave the
        # registry permanently empty behind "choose from []" errors.
        import repro.api.adapters  # noqa: F401  (registers on import)

        _BUILTINS_LOADED = True


def join_algorithms() -> tuple[str, ...]:
    """Registered join algorithm names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_JOINS))


def search_methods(include_aliases: bool = False) -> tuple[str, ...]:
    """Registered search backend names, sorted."""
    _ensure_builtins()
    names = set(_SEARCH)
    if include_aliases:
        names |= set(_SEARCH_ALIASES)
    return tuple(sorted(names))


def resolve_join(name: str) -> JoinAlgorithm:
    """Look up a join adapter; unknown names raise the uniform error."""
    _ensure_builtins()
    validate_choice("join algorithm", name, join_algorithms())
    return _JOINS[name]


def resolve_search(name: str) -> SearchBackend:
    """Look up a search backend (aliases accepted); unknown names raise."""
    _ensure_builtins()
    canonical = _SEARCH_ALIASES.get(name, name)
    validate_choice("search method", canonical, search_methods())
    return _SEARCH[canonical]
