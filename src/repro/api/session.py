"""The :class:`Session` facade: one front door for every request.

``Session.run(spec)`` executes any declarative spec
(:mod:`repro.api.specs`) and returns the uniform
:class:`repro.api.ResultSet` envelope.  The session owns the pieces the
specs deliberately do not carry:

* the **tokenizer** (one per session, so every algorithm sees the same
  token view of a corpus);
* the default **verification backend** and **execution engine**
  selectors (spec fields override per request);
* the **resident-corpus lifecycle**: corpora named by specs (or passed
  to ``run``) are tokenized once and kept in a small LRU, and the
  serving paths build one :class:`repro.service.SimilarityIndex` per
  corpus (build-once/query-many via :mod:`repro.service` under the
  hood), reused across specs.

The module-level :func:`run` serves the one-liner case through a shared
process-default session, so repeated calls amortize tokenization and
index builds exactly like an explicit session would::

    import repro
    result = repro.run(repro.JoinSpec(names=names, threshold=0.15))
    repro.run(repro.TopKSpec(names=names, queries=("jon smiht",), k=3))
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.accel import BACKENDS
from repro.accel.vocab import LRUCache
from repro.api.errors import ValidationError
from repro.api.registry import resolve_join, resolve_search, validate_choice
from repro.api.result import COUNTER_CACHE_RESIDENT, ResultSet
from repro.api.specs import CompareSpec, JoinSpec, TopKSpec, WithinSpec
from repro.runtime import ENGINES
from repro.tokenize import Tokenizer

__all__ = ["Session", "default_session", "run"]


class _Corpus:
    """One resident collection: raw names plus lazily built views.

    Tokenization happens at most once; the serving index (and its
    postings/vocab snapshot) is built lazily on the first search spec
    and reused by every later one.  ``build_seconds`` accumulates the
    wall-clock spent materializing resident state, so the session can
    report a per-request build/query split.
    """

    __slots__ = (
        "names",
        "_tokenizer",
        "_records",
        "_token_lists",
        "_indexes",
        "build_seconds",
    )

    def __init__(self, names, tokenizer, records=None) -> None:
        self.names = tuple(names)
        self._tokenizer = tokenizer
        self._records = list(records) if records is not None else None
        self._token_lists = None
        self._indexes: dict = {}
        self.build_seconds = 0.0

    @property
    def strings(self) -> tuple:
        """The collection as raw strings (the LD/NLD string joins)."""
        return self.names

    @property
    def records(self) -> list:
        """The collection tokenized (tokenized once, then resident)."""
        if self._records is None:
            start = time.perf_counter()
            tokenize = self._tokenizer.tokenize
            self._records = [tokenize(name) for name in self.names]
            self.build_seconds += time.perf_counter() - start
        return self._records

    @property
    def token_lists(self) -> list:
        """The collection as plain token lists (the set joins)."""
        if self._token_lists is None:
            self._token_lists = [list(record.tokens) for record in self.records]
        return self._token_lists

    def index(
        self,
        backend: str,
        cache_size: int,
        shards: int = 1,
        placement: str = "length",
    ):
        """The resident serving index (lazy): a
        :class:`repro.service.SimilarityIndex`, or a
        :class:`repro.shard.ShardedIndex` when the session serves
        ``shards > 1`` (results and counters are shard-count invariant,
        so the cached index is keyed by backend alone)."""
        built = self._indexes.get(backend)
        if built is None:
            start = time.perf_counter()
            if shards > 1:
                from repro.shard import ShardedIndex

                built = ShardedIndex(
                    self.names,
                    n_shards=shards,
                    placement=placement,
                    tokenizer=self._tokenizer,
                    backend=backend,
                    cache_size=cache_size,
                )
            else:
                from repro.service import SimilarityIndex

                built = SimilarityIndex(
                    self.names,
                    tokenizer=self._tokenizer,
                    backend=backend,
                    cache_size=cache_size,
                )
            self.build_seconds += time.perf_counter() - start
            self._indexes[backend] = built
        return built


class Session:
    """The facade executing declarative specs against resident corpora.

    Parameters
    ----------
    names:
        Optional default corpus; specs without inline ``names`` (and
        ``run`` calls without data) run against it.
    tokenizer:
        Defaults to whitespace+punctuation with case folding -- the same
        default as every legacy entry point.
    backend / engine:
        Session-wide verification-kernel and execution-engine defaults
        (specs override per request).  ``backend="auto"`` serves through
        the numpy-batched ``vector`` kernel when numpy is importable and
        falls back to ``bitparallel`` silently when it is not; an
        explicit ``"vector"`` without numpy raises (with an install
        hint) when the first verification resolves it.
    cache_size:
        LRU result-cache capacity of each resident serving index.
    max_resident:
        How many distinct corpora the session keeps resident at once.
    shards / placement:
        Serving layout.  ``shards > 1`` builds each resident index as a
        :class:`repro.shard.ShardedIndex` -- N partitions under the
        given placement (``"length"`` for Lemma 6 shard pruning,
        ``"hash"`` for the uniform baseline), scatter-gather routed --
        with the spec surface unchanged: results, counters and simulated
        seconds are shard-count invariant by contract.
    store_dir:
        Optional durable-store directory (:class:`repro.store.
        SnapshotStore`, or :class:`repro.shard.ShardedSnapshotStore`
        when serving sharded or when the directory already holds a
        sharded layout).  On construction the session warm-restarts from
        it -- snapshot load + WAL replay, degrading to a full rebuild
        from ``names`` when the store is damaged -- and the restored
        index becomes the *durable corpus* behind specs that name no
        inline corpus.  :meth:`append` then logs to the store's WAL
        before mutating memory, so acknowledged appends survive a crash.
        A directory written unsharded migrates losslessly when opened
        with ``shards > 1`` (and vice versa the sharded layout, once
        created, is kept even at ``shards=1``).

    Examples
    --------
    >>> session = Session(["barak obama", "borak obama", "john smith"])
    >>> result = session.run(JoinSpec(threshold=0.15,
    ...                               params={"max_token_frequency": None}))
    >>> [(a, b) for a, b, _ in result.pairs]
    [('barak obama', 'borak obama')]
    >>> session.run(TopKSpec(queries=("barak obana",), k=1)).matches
    [[['barak obama', 0.09523809523809523]]]
    """

    def __init__(
        self,
        names: Sequence[str] | None = None,
        *,
        tokenizer: Tokenizer | None = None,
        backend: str = "auto",
        engine: str = "auto",
        cache_size: int = 256,
        max_resident: int = 4,
        shards: int = 1,
        placement: str = "length",
        store_dir: str | None = None,
    ) -> None:
        from repro.shard.placement import PLACEMENTS

        self.tokenizer = tokenizer or Tokenizer()
        self.backend = validate_choice("verification backend", backend, BACKENDS)
        self.engine = validate_choice("execution engine", engine, ENGINES)
        self.cache_size = cache_size
        if not isinstance(shards, int) or shards < 1:
            raise ValidationError(f"shards must be a positive int, got {shards!r}")
        self.shards = shards
        self.placement = validate_choice("shard placement", placement, PLACEMENTS)
        self._corpora = LRUCache(max_resident)
        self._default_names = tuple(names) if names is not None else None
        self._store = None
        self._durable: _Corpus | None = None
        self._durable_index = None
        if store_dir is not None:
            from repro.shard.store import is_sharded_store

            if shards > 1 or is_sharded_store(store_dir):
                from repro.shard import ShardedSnapshotStore

                self._store = ShardedSnapshotStore(store_dir)
                self._install_durable(
                    self._store.open(
                        names=names,
                        n_shards=shards,
                        placement=placement,
                        tokenizer=self.tokenizer,
                        backend=self.backend,
                        cache_size=self.cache_size,
                    )
                )
            else:
                from repro.store import SnapshotStore

                self._store = SnapshotStore(store_dir)
                self._install_durable(
                    self._store.open(
                        names=names,
                        tokenizer=self.tokenizer,
                        backend=self.backend,
                        cache_size=self.cache_size,
                    )
                )

    # -- durable persistence ----------------------------------------------------

    def _install_durable(self, index) -> None:
        """Adopt ``index`` as the durable corpus behind no-names specs."""
        corpus = _Corpus(index.names, self.tokenizer)
        corpus._records = index.records  # the live list: stays in sync
        corpus._indexes[index.backend] = index
        self._durable = corpus
        self._durable_index = index
        self._default_names = tuple(index.names)

    def append(self, names: Sequence[str], base: int | None = None) -> int:
        """Grow the durable corpus; returns the new record count.

        With a ``store_dir`` the append is **write-ahead logged and
        fsynced before memory mutates**, so an acknowledged append is
        never lost to a crash; past the WAL growth thresholds the store
        compacts into a fresh snapshot.  Without a store the append is
        memory-only (same visibility, no durability).

        ``base`` is the idempotency offset (see
        :meth:`SimilarityIndex.append <repro.service.SimilarityIndex.append>`):
        a replay of an already-acknowledged append -- same names at a
        ``base`` the index has grown past -- is a no-op that skips the
        WAL too, so retrying clients cannot double-apply; a mismatching
        replay raises :class:`~repro.api.errors.ValidationError`.
        """
        index = self._durable_index
        if index is None:
            if self._default_names is None:
                raise ValidationError(
                    "no resident corpus to append to: construct the Session "
                    "with names= or store_dir="
                )
            # Materialize the default corpus as the durable one.
            corpus = self._corpus(None)
            self._install_durable(
                corpus.index(
                    self.backend, self.cache_size, self.shards, self.placement
                )
            )
            index = self._durable_index
        added = tuple(names)
        if not added:
            return len(index)
        if base is not None and index._check_append_base(added, base):
            return len(index)  # an acknowledged replay: nothing to log or apply
        if self._store is not None:
            self._store.log_append(added, base=len(index))
        index.append(added)
        corpus = self._durable
        corpus.names = corpus.names + added
        corpus._token_lists = None
        # Sibling indexes under other backends predate the append; drop
        # them so they rebuild over the full corpus on next use.
        corpus._indexes = {
            key: value
            for key, value in corpus._indexes.items()
            if value is index
        }
        self._default_names = corpus.names
        if self._store is not None:
            self._store.maybe_compact(index)
        return len(index)

    def save(self, path: str) -> str:
        """Write an atomic snapshot of the default corpus's index at
        ``path`` (the CLI ``repro index save``); returns ``path``.

        Independent of ``store_dir``: this is the one-shot export, the
        durable directory is the live write path.  The export is always
        the single-file unsharded format (portable across shard
        layouts); a sharded serving index is flattened for it.
        """
        from repro.store import index_to_sections, write_snapshot_file

        index = self._durable_index
        if index is None:
            if self._default_names is None:
                raise ValidationError(
                    "nothing to save: construct the Session with a default "
                    "corpus (names=) or a store_dir"
                )
            index = self._corpus(None).index(self.backend, self.cache_size)
        if hasattr(index, "shards"):
            from repro.service import SimilarityIndex

            index = SimilarityIndex(
                index.names,
                tokenizer=self.tokenizer,
                backend=self.backend,
                cache_size=index.result_cache.capacity,
            )
        write_snapshot_file(path, index_to_sections(index))
        return path

    @classmethod
    def load(cls, path: str, *, engine: str = "auto", max_resident: int = 4):
        """Rebuild a session from a :meth:`save` snapshot (strict: a
        damaged file raises the typed
        :class:`~repro.api.errors.CorruptSnapshotError`).

        The restored index serves byte-identically to the one saved --
        same results, same cascade counters, same simulated seconds --
        and becomes the session's durable corpus.
        """
        from repro.store import index_from_sections, read_snapshot_file

        index = index_from_sections(read_snapshot_file(path))
        session = cls(
            tokenizer=index.tokenizer,
            backend=index.backend,
            engine=engine,
            cache_size=index.result_cache.capacity,
            max_resident=max_resident,
        )
        session._install_durable(index)
        return session

    def store_status(self) -> dict | None:
        """The durable store's health block (``None`` without a store)."""
        return self._store.status() if self._store is not None else None

    def shard_status(self) -> dict | None:
        """The serving shard layout block (``None`` when unsharded).

        Prefers the durable index; otherwise reports the first resident
        sharded index (per-shard sizes plus the router's
        ``shards_probed``/``shards_pruned`` tallies).
        """
        candidates = []
        if self._durable_index is not None:
            candidates.append(self._durable_index)
        for _, corpus in self._corpora.items():
            candidates.extend(corpus._indexes.values())
        for index in candidates:
            if hasattr(index, "shard_status"):
                return index.shard_status()
        return None

    # -- corpus residency -------------------------------------------------------

    def _corpus(self, spec, names=None, records=None) -> _Corpus:
        spec_names = getattr(spec, "names", None)
        if records is not None:
            # Out-of-band pre-tokenized data (the legacy ``join_records``
            # path): ephemeral, never cached -- the caller owns residency.
            resolved = names if names is not None else spec_names
            if resolved is None or len(resolved) != len(records):
                raise ValidationError(
                    "records must align with names: got "
                    f"{'no' if resolved is None else len(resolved)} names "
                    f"for {len(records)} records"
                )
            return _Corpus(resolved, self.tokenizer, records=records)
        chosen = spec_names if spec_names is not None else names
        if chosen is None:
            chosen = self._default_names
        if chosen is None:
            raise ValidationError(
                "no corpus to run against: set spec.names, pass names= to "
                "run(), or construct the Session with a default corpus"
            )
        key = tuple(chosen)
        if self._durable is not None and key == self._durable.names:
            return self._durable
        corpus = self._corpora.get(key)
        if corpus is None:
            corpus = _Corpus(key, self.tokenizer)
            self._corpora.put(key, corpus)
        return corpus

    def stats(self) -> dict:
        """Residency snapshot: corpora held, built state, cache gauges.

        The ``result_cache`` block aggregates the bounded LRU result
        caches of every resident serving index (hits, misses, resident
        entries) -- the gauges the HTTP service's ``/v1/metrics``
        endpoint reports.
        """
        from repro.service.cache import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES

        corpora = []
        cache_hits = cache_misses = cache_resident = 0
        resident = list(self._corpora.items())
        if self._durable is not None:
            resident.append((self._durable.names, self._durable))
        for key, corpus in resident:
            corpora.append(
                {
                    "records": len(key),
                    "tokenized": corpus._records is not None,
                    "indexes": len(corpus._indexes),
                    "build_seconds": corpus.build_seconds,
                }
            )
            for index in corpus._indexes.values():
                cache_hits += index.counters.get(COUNTER_CACHE_HITS, 0)
                cache_misses += index.counters.get(COUNTER_CACHE_MISSES, 0)
                cache_resident += len(index.result_cache)
        return {
            "resident_corpora": len(corpora),
            "corpora": corpora,
            "result_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "resident": cache_resident,
            },
        }

    # -- execution --------------------------------------------------------------

    def run(self, spec, *, names=None, records=None) -> ResultSet:
        """Execute one spec; returns the uniform :class:`ResultSet`.

        ``names``/``records`` supply data out-of-band (the resident /
        pre-tokenized paths); ``spec.names`` wins when set, then
        ``names``, then the session's default corpus.

        A spec's ``deadline_ms`` becomes the ambient request deadline
        for the execution (:mod:`repro.runtime.deadline`): the engines
        and the pool dispatch loop check it at shard boundaries, and
        expiry raises :class:`~repro.api.errors.DeadlineExceededError`.
        """
        from repro.runtime.deadline import deadline_scope

        with deadline_scope(getattr(spec, "deadline_ms", None)):
            if isinstance(spec, JoinSpec):
                return self._run_join(spec, names, records)
            if isinstance(spec, TopKSpec):
                return self._run_search(spec, names, records, "topk")
            if isinstance(spec, WithinSpec):
                return self._run_search(spec, names, records, "within")
            if isinstance(spec, CompareSpec):
                return self._run_compare(spec)
        raise TypeError(
            f"Session.run expects a JoinSpec/TopKSpec/WithinSpec/CompareSpec, "
            f"got {type(spec).__name__}"
        )

    def _run_join(self, spec: JoinSpec, names, records) -> ResultSet:
        adapter = resolve_join(spec.algorithm)
        corpus = self._corpus(spec, names, records)
        build_before = corpus.build_seconds
        start = time.perf_counter()
        outcome = adapter.runner(corpus, spec, self)
        elapsed = time.perf_counter() - start
        build_seconds = corpus.build_seconds - build_before

        distances = outcome.distances
        scorer = adapter.scorer

        def score(i: int, j: int):
            if distances is not None:
                found = distances.get((i, j))
                if found is not None:
                    return found
            return scorer(corpus, i, j)

        descending = adapter.score_kind == "similarity"
        named_pairs = sorted(
            (
                (corpus.names[i], corpus.names[j], score(i, j))
                for i, j in outcome.pairs
            ),
            key=lambda row: (-row[2] if descending else row[2], row[0], row[1]),
        )
        from repro.analysis.graphs import cluster_pairs

        clusters = [
            sorted(corpus.names[i] for i in cluster)
            for cluster in cluster_pairs(outcome.pairs)
        ]
        return ResultSet(
            kind="join",
            algorithm=adapter.name,
            score_kind=adapter.score_kind,
            collection_size=len(corpus.names),
            pairs=named_pairs,
            index_pairs=sorted(outcome.pairs),
            clusters=clusters,
            counters=dict(outcome.counters or {}),
            simulated_seconds=outcome.simulated_seconds,
            build_seconds=build_seconds,
            query_seconds=max(0.0, elapsed - build_seconds),
            request=spec.to_dict(),
        )

    def _run_search(self, spec, names, records, operation: str) -> ResultSet:
        backend_entry = resolve_search(spec.method)
        corpus = self._corpus(spec, names, records)
        build_before = corpus.build_seconds
        index = corpus.index(
            spec.backend or self.backend, self.cache_size, self.shards, self.placement
        )
        start = time.perf_counter()
        index.prepare(backend_entry.serve_method)
        prepare_seconds = time.perf_counter() - start
        build_seconds = (corpus.build_seconds - build_before) + prepare_seconds

        counters_before = dict(index.counters)
        queries = list(spec.queries)
        start = time.perf_counter()
        if operation == "topk":
            rows = index.topk(
                queries,
                k=spec.k,
                method=backend_entry.serve_method,
                processes=spec.processes,
            )
        else:
            rows = index.within(
                queries,
                radius=spec.radius,
                method=backend_entry.serve_method,
                processes=spec.processes,
            )
        query_seconds = time.perf_counter() - start

        counters = {
            name: value - counters_before.get(name, 0)
            for name, value in index.counters.items()
        }
        counters[COUNTER_CACHE_RESIDENT] = len(index.result_cache)
        return ResultSet(
            kind=operation,
            algorithm=backend_entry.name,
            score_kind=backend_entry.score_kind,
            collection_size=len(corpus.names),
            queries=queries,
            matches=[
                [[name, score] for name, score in matches] for matches in rows
            ],
            counters=counters,
            build_seconds=build_seconds,
            query_seconds=query_seconds,
            request=spec.to_dict(),
        )

    def compare(self, name_a: str, name_b: str, backend: str | None = None) -> float:
        """NSLD between two raw strings, envelope-free.

        The scalar fast path behind ``CompareSpec`` (and the legacy
        ``compare_names`` shim): same tokenizer, same backend defaults,
        none of the per-request envelope overhead -- for callers scoring
        in tight loops.
        """
        from repro.distances import nsld

        return nsld(
            self.tokenizer.tokenize(name_a),
            self.tokenizer.tokenize(name_b),
            backend=backend or self.backend,
        )

    def _run_compare(self, spec: CompareSpec) -> ResultSet:
        start = time.perf_counter()
        value = self.compare(spec.name_a, spec.name_b, spec.backend)
        elapsed = time.perf_counter() - start
        return ResultSet(
            kind="compare",
            algorithm="nsld",
            value=value,
            query_seconds=elapsed,
            request=spec.to_dict(),
        )


_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The shared process-default session behind :func:`repro.run`."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def run(spec, *, names=None, records=None) -> ResultSet:
    """Execute one spec on the process-default session.

    Examples
    --------
    >>> result = run(JoinSpec(names=("ann lee", "ann leex", "bob stone"),
    ...                       threshold=0.2,
    ...                       params={"max_token_frequency": None}))
    >>> [(a, b) for a, b, _ in result.pairs]
    [('ann lee', 'ann leex')]
    """
    return default_session().run(spec, names=names, records=records)
