"""Built-in adapters: every join layer and search backend, registered.

Importing this module populates :mod:`repro.api.registry` with one
:class:`~repro.api.registry.JoinAlgorithm` per join layer in the
repository and one :class:`~repro.api.registry.SearchBackend` per
serving method, normalising their native signatures behind the
declarative specs.  The paper's TSJ pipeline is *one algorithm choice*
here, not a hard-coded default path.

Adapter contract: ``runner(corpus, spec, session) -> JoinOutcome``.
``corpus`` exposes the collection as raw ``strings`` (the LD/NLD string
joins), ``token_lists`` (the set joins) or tokenized ``records`` (TSJ,
the naive oracle, the metric-space family), tokenized once per session
corpus; the adapter casts ``spec.threshold`` to its native semantics and
forwards ``spec.params`` to the layer's own keywords.
"""

from __future__ import annotations

from repro.api.registry import (
    JoinAlgorithm,
    JoinOutcome,
    SearchBackend,
    register_join,
    register_search,
)
from repro.mapreduce import ClusterConfig
from repro.runtime import create_engine

# -- shared helpers --------------------------------------------------------------


def _engine_for(corpus, spec, session, params: dict):
    """Build the MapReduce engine a distributed layer runs on."""
    n_machines = params.pop("n_machines", 10)
    return create_engine(
        spec.engine or session.engine, ClusterConfig(n_machines=n_machines)
    )


def _backend_for(spec, session) -> str:
    return spec.backend or session.backend


def _nsld_scorer(corpus, i: int, j: int) -> float:
    from repro.distances import nsld

    records = corpus.records
    return nsld(records[i], records[j])


def _ld_scorer(corpus, i: int, j: int) -> int:
    from repro.distances import levenshtein

    strings = corpus.strings
    return levenshtein(strings[i], strings[j])


def _jaccard_scorer(corpus, i: int, j: int) -> float:
    token_lists = corpus.token_lists
    x, y = frozenset(token_lists[i]), frozenset(token_lists[j])
    if not x and not y:
        return 1.0
    intersection = len(x & y)
    return intersection / (len(x) + len(y) - intersection)


def _pipeline_outcome(pairs, distances, pipeline) -> JoinOutcome:
    return JoinOutcome(
        pairs=set(pairs),
        distances=dict(distances),
        counters=pipeline.counters(),
        simulated_seconds=pipeline.simulated_seconds(),
    )


# -- the TSJ pipeline (the paper's joiner) ---------------------------------------


def _run_tsj(corpus, spec, session) -> JoinOutcome:
    from repro.tsj import TSJ, TSJConfig

    params = dict(spec.params)
    n_machines = params.pop("n_machines", 10)
    engine_name = params.pop("engine", spec.engine or session.engine)
    verify_backend = params.pop("verify_backend", _backend_for(spec, session))
    config = TSJConfig(
        threshold=spec.threshold,
        engine=engine_name,
        verify_backend=verify_backend,
        **params,
    )
    engine = create_engine(engine_name, ClusterConfig(n_machines=n_machines))
    result = TSJ(config, engine).self_join(corpus.records)
    return JoinOutcome(
        pairs=result.pairs,
        distances=result.distances,
        counters=result.counters(),
        simulated_seconds=result.simulated_seconds(),
    )


def _run_naive(corpus, spec, session) -> JoinOutcome:
    from repro.joins import naive_nsld_self_join

    return JoinOutcome(pairs=naive_nsld_self_join(corpus.records, spec.threshold))


# -- the serial string joins -----------------------------------------------------


def _run_passjoin(corpus, spec, session) -> JoinOutcome:
    from repro.joins import PassJoin

    join = PassJoin(int(spec.threshold), backend=_backend_for(spec, session))
    pairs = join.self_join(corpus.strings)
    return JoinOutcome(pairs=pairs, counters=dict(join.last_counters))


def _run_passjoin_k(corpus, spec, session) -> JoinOutcome:
    from repro.joins import PassJoinK

    params = dict(spec.params)
    join = PassJoinK(
        int(spec.threshold),
        k_signatures=params.pop("k_signatures", 2),
        backend=_backend_for(spec, session),
        **params,
    )
    pairs = join.self_join(corpus.strings)
    return JoinOutcome(pairs=pairs, counters=dict(join.last_counters))


def _run_qgram(corpus, spec, session) -> JoinOutcome:
    from repro.candidates import new_counters
    from repro.joins import qgram_ld_self_join

    params = dict(spec.params)
    counters = new_counters()
    pairs = qgram_ld_self_join(
        corpus.strings,
        int(spec.threshold),
        q=params.pop("q", 2),
        backend=_backend_for(spec, session),
        counters=counters,
        **params,
    )
    return JoinOutcome(pairs=pairs, counters=counters)


# -- the MapReduce string joins --------------------------------------------------


def _run_passjoin_kmr(corpus, spec, session) -> JoinOutcome:
    from repro.joins import PassJoinKMR

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    join = PassJoinKMR(
        engine,
        threshold=int(spec.threshold),
        k_signatures=params.pop("k_signatures", 2),
        backend=_backend_for(spec, session),
        **params,
    )
    result = join.self_join(corpus.strings)
    return _pipeline_outcome(result.pairs, result.distances, result.pipeline)


def _run_massjoin(corpus, spec, session) -> JoinOutcome:
    from repro.joins import MassJoin

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    join = MassJoin(
        engine,
        threshold=spec.threshold,
        mode=params.pop("mode", "nld"),
        backend=_backend_for(spec, session),
        **params,
    )
    result = join.self_join(corpus.strings)
    return _pipeline_outcome(result.pairs, result.distances, result.pipeline)


# -- the set-similarity joins ----------------------------------------------------


def _run_prefix_filter(corpus, spec, session) -> JoinOutcome:
    from repro.candidates import new_counters
    from repro.joins import prefix_filter_jaccard_self_join

    counters = new_counters()
    pairs = prefix_filter_jaccard_self_join(
        corpus.token_lists, spec.threshold, counters=counters, **spec.params
    )
    return JoinOutcome(pairs=pairs, counters=counters)


def _run_mgjoin(corpus, spec, session) -> JoinOutcome:
    from repro.candidates import new_counters
    from repro.joins import mgjoin_jaccard_self_join

    params = dict(spec.params)
    counters = new_counters()
    pairs = mgjoin_jaccard_self_join(
        corpus.token_lists,
        spec.threshold,
        n_orders=params.pop("n_orders", 3),
        seed=params.pop("seed", 0),
        counters=counters,
        **params,
    )
    return JoinOutcome(pairs=pairs, counters=counters)


def _run_vernica(corpus, spec, session) -> JoinOutcome:
    from repro.joins import VernicaJoin

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    result = VernicaJoin(engine, threshold=spec.threshold, **params).self_join(
        corpus.token_lists
    )
    return _pipeline_outcome(result.pairs, result.similarities, result.pipeline)


# -- the metric-space family (NSLD is a metric; Theorem 2) -----------------------


def _run_clusterjoin(corpus, spec, session) -> JoinOutcome:
    from repro.metricspace import ClusterJoin

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    result = ClusterJoin(engine, threshold=spec.threshold, **params).self_join(
        corpus.records
    )
    return _pipeline_outcome(result.pairs, result.distances, result.pipeline)


def _run_mrmapss(corpus, spec, session) -> JoinOutcome:
    from repro.metricspace import MRMAPSS

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    result = MRMAPSS(engine, threshold=spec.threshold, **params).self_join(
        corpus.records
    )
    return _pipeline_outcome(result.pairs, result.distances, result.pipeline)


def _run_hmj(corpus, spec, session) -> JoinOutcome:
    from repro.metricspace import HMJ

    params = dict(spec.params)
    engine = _engine_for(corpus, spec, session, params)
    result = HMJ(engine, threshold=spec.threshold, **params).self_join(corpus.records)
    return _pipeline_outcome(result.pairs, result.distances, result.pipeline)


def _run_quickjoin(corpus, spec, session) -> JoinOutcome:
    from repro.metricspace import QuickJoin

    pairs = QuickJoin(threshold=spec.threshold, **spec.params).self_join(
        corpus.records
    )
    return JoinOutcome(pairs=pairs)


# -- registration ----------------------------------------------------------------

register_join(
    JoinAlgorithm(
        "tsj",
        _run_tsj,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="the paper's Tokenized-String Joiner (NSLD, MapReduce)",
    )
)
register_join(
    JoinAlgorithm(
        "naive",
        _run_naive,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="brute-force NSLD oracle (quadratic)",
    )
)
register_join(
    JoinAlgorithm(
        "passjoin",
        _run_passjoin,
        threshold_kind="ld",
        scorer=_ld_scorer,
        description="serial Pass-Join (LD, partition signatures)",
    )
)
register_join(
    JoinAlgorithm(
        "passjoin_k",
        _run_passjoin_k,
        threshold_kind="ld",
        scorer=_ld_scorer,
        description="PassJoinK (LD, K required signature matches)",
    )
)
register_join(
    JoinAlgorithm(
        "passjoin_kmr",
        _run_passjoin_kmr,
        threshold_kind="ld",
        scorer=_ld_scorer,
        description="MapReduce PassJoinK (LD)",
    )
)
register_join(
    JoinAlgorithm(
        "qgram",
        _run_qgram,
        threshold_kind="ld",
        scorer=_ld_scorer,
        description="positional q-gram count-filter join (LD)",
    )
)
register_join(
    JoinAlgorithm(
        "massjoin",
        _run_massjoin,
        threshold_kind="nld",
        scorer=None,
        description="MassJoin (NLD or LD, MapReduce)",
    )
)
register_join(
    JoinAlgorithm(
        "prefix_filter",
        _run_prefix_filter,
        threshold_kind="jaccard",
        score_kind="similarity",
        scorer=_jaccard_scorer,
        description="AllPairs/PPJoin-style prefix-filtered Jaccard join",
    )
)
register_join(
    JoinAlgorithm(
        "mgjoin",
        _run_mgjoin,
        threshold_kind="jaccard",
        score_kind="similarity",
        scorer=_jaccard_scorer,
        description="multi-order prefix-filtered Jaccard join",
    )
)
register_join(
    JoinAlgorithm(
        "vernica",
        _run_vernica,
        threshold_kind="jaccard",
        score_kind="similarity",
        scorer=_jaccard_scorer,
        description="Vernica/Carey/Li MapReduce Jaccard join",
    )
)
register_join(
    JoinAlgorithm(
        "clusterjoin",
        _run_clusterjoin,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="single-level Voronoi metric-space join (NSLD)",
    )
)
register_join(
    JoinAlgorithm(
        "mrmapss",
        _run_mrmapss,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="recursive Voronoi metric-space join with symmetry dedup",
    )
)
register_join(
    JoinAlgorithm(
        "hmj",
        _run_hmj,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="hybrid metric joiner (Sec. V-E baseline)",
    )
)
register_join(
    JoinAlgorithm(
        "quickjoin",
        _run_quickjoin,
        threshold_kind="nsld",
        scorer=_nsld_scorer,
        description="serial recursive ball-partitioning metric join",
    )
)

register_search(
    SearchBackend(
        "similarity_index",
        serve_method="cascade",
        aliases=("cascade",),
        description="exact NSLD through the resident candidate pipeline",
    )
)
register_search(
    SearchBackend(
        "vptree",
        serve_method="vptree",
        description="vantage-point tree over NSLD",
    )
)
register_search(
    SearchBackend(
        "bktree",
        serve_method="bktree",
        description="BK-tree over the integer SLD",
    )
)
register_search(
    SearchBackend(
        "fuzzymatch",
        serve_method="fuzzymatch",
        score_kind="similarity",
        supports_within=False,
        description="FuzzyMatch FMS top-k (similarity, descending)",
    )
)
