"""The uniform result envelope: one shape for every request.

Every :class:`repro.api.Session` run -- any join algorithm, any search
backend, a bare comparison -- lands in one :class:`ResultSet`: the
pairs/matches, the similarity clusters, the canonical candidate-pipeline
counters next to the result-cache counters, the simulated cluster
seconds (for the MapReduce layers) and the wall-clock build/query split
(for the serving layers).  The envelope is plain-JSON all the way down
(lists and dicts only), round-trips losslessly
(``ResultSet.from_json(rs.to_json()) == rs``), carries the wire-format
``"version"`` tag (missing means 1, unknown versions raise), and is
exactly what the CLI's ``--json`` mode emits and the HTTP service
(:mod:`repro.server`) answers with.

The human-oriented rendering is :meth:`ResultSet.summary`, shared by the
CLI ``join``, ``search`` and ``knn`` subcommands (and by the legacy
:class:`repro.core.JoinReport`, whose ``summary()`` delegates to the
same helpers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.api.errors import WIRE_VERSION, ValidationError, take_wire_version
from repro.candidates import (
    CASCADE_COUNTERS,
    COUNTER_CANDIDATES,
    COUNTER_VERIFIED,
)
from repro.service.cache import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES

__all__ = [
    "ResultSet",
    "pipeline_summary_lines",
    "serving_summary_lines",
]

#: Gauge reported next to the cache counters: results resident in the LRU.
COUNTER_CACHE_RESIDENT = "result_cache_resident"


def _listify(value):
    """Recursively coerce to JSON shapes (sequences to plain lists, sets
    sorted first, mappings to dicts) so constructed envelopes compare
    equal to JSON-round-tripped ones."""
    if isinstance(value, (list, tuple)):
        return [_listify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [_listify(item) for item in sorted(value)]
    if isinstance(value, dict):
        return {key: _listify(item) for key, item in value.items()}
    return value


def pipeline_summary_lines(counters: dict) -> list[str]:
    """The candidate-pipeline effectiveness summary (filter cascade)."""
    shown = {name: counters.get(name, 0) for name in CASCADE_COUNTERS}
    if not any(shown.values()):
        return []
    generated = shown[COUNTER_CANDIDATES]
    verified = shown[COUNTER_VERIFIED]
    parts = ", ".join(f"{name} = {value}" for name, value in shown.items() if value)
    lines = [f"# candidate pipeline: {parts}"]
    if generated:
        lines.append(
            "# filter cascade kept "
            f"{verified / generated:.1%} of generated candidates"
        )
    return lines


def serving_summary_lines(
    counters: dict,
    collection_size: int,
    n_queries: int,
    build_seconds: float,
    query_seconds: float,
) -> list[str]:
    """The resident-index summary: build-vs-query split plus cache use."""
    lines = [
        f"# resident index: {collection_size} names built once in "
        f"{build_seconds:.3f}s; {n_queries} queries served in {query_seconds:.3f}s"
    ]
    if COUNTER_CACHE_HITS in counters or COUNTER_CACHE_MISSES in counters:
        cache_line = (
            f"# result cache: {counters.get(COUNTER_CACHE_HITS, 0)} hits, "
            f"{counters.get(COUNTER_CACHE_MISSES, 0)} misses"
        )
        if COUNTER_CACHE_RESIDENT in counters:
            cache_line += f" ({counters[COUNTER_CACHE_RESIDENT]} resident)"
        lines.append(cache_line)
    lines.extend(pipeline_summary_lines(counters))
    return lines


def join_summary_lines(
    pairs: list,
    clusters: list,
    counters: dict,
    simulated_seconds: float | None,
    threshold=None,
    algorithm: str | None = None,
    n_machines: int | None = None,
    limit: int | None = None,
) -> list[str]:
    """The join summary: pairs, clusters, simulated runtime, pipeline."""
    details = []
    if algorithm:
        details.append(algorithm)
    if threshold is not None:
        details.append(f"T = {threshold}")
    qualifier = f" ({', '.join(details)})" if details else ""
    lines = [f"# {len(pairs)} similar pairs{qualifier}"]
    for name_a, name_b, score in pairs[:limit]:
        lines.append(f"{score:.4f}\t{name_a}\t{name_b}")
    lines.append(f"# {len(clusters)} clusters")
    for cluster in clusters[:limit]:
        lines.append("  " + " | ".join(sorted(cluster)))
    if simulated_seconds is not None:
        runtime = f"# simulated runtime: {simulated_seconds:.1f}s"
        if n_machines:
            runtime += f" on {n_machines} machines"
        lines.append(runtime)
    lines.extend(pipeline_summary_lines(counters))
    return lines


@dataclass
class ResultSet:
    """The uniform result envelope of :meth:`repro.api.Session.run`.

    Attributes
    ----------
    kind:
        The request shape: ``"join"``, ``"topk"``, ``"within"`` or
        ``"compare"``.
    algorithm:
        The algorithm / serving-method name that produced the result.
    score_kind:
        ``"distance"`` (ascending) or ``"similarity"`` (descending) --
        the semantics of every score in :attr:`pairs` / :attr:`matches`.
    collection_size:
        Number of records in the joined / indexed collection.
    queries:
        Echo of the request's queries (``topk`` / ``within``).
    pairs:
        Join results: ``[name_a, name_b, score]`` rows, best first
        (ties broken by the names).
    index_pairs:
        Join results positionally: sorted ``[i, j]`` rows into the
        collection, for bookkeeping under duplicate names.
    clusters:
        Connected components of the similarity graph, as sorted name
        lists, largest component first.
    matches:
        Search results: one ``[name, score]`` row list per query.
    value:
        The distance (``compare`` requests).
    counters:
        Canonical cascade counters plus the result-cache counters
        (per-request deltas for the serving paths).
    simulated_seconds:
        Simulated cluster runtime (MapReduce-based algorithms; ``None``
        for the serial ones).
    build_seconds / query_seconds:
        Wall-clock split between building resident state and answering
        the request.
    request:
        Echo of the originating spec (``Spec.to_dict()`` form).
    """

    kind: str
    algorithm: str = ""
    score_kind: str = "distance"
    collection_size: int = 0
    queries: list = field(default_factory=list)
    pairs: list = field(default_factory=list)
    index_pairs: list = field(default_factory=list)
    clusters: list = field(default_factory=list)
    matches: list = field(default_factory=list)
    value: float | None = None
    counters: dict = field(default_factory=dict)
    simulated_seconds: float | None = None
    build_seconds: float = 0.0
    query_seconds: float = 0.0
    request: dict | None = None

    def __post_init__(self) -> None:
        for name in ("queries", "pairs", "index_pairs", "clusters", "matches"):
            setattr(self, name, _listify(getattr(self, name)))
        self.counters = dict(self.counters)
        if self.request is not None:
            self.request = _listify(dict(self.request))

    # -- JSON wire format -------------------------------------------------------

    def to_dict(self) -> dict:
        """The wire form: every field plus the ``"version"`` tag."""
        payload = {"version": WIRE_VERSION}
        payload.update((f.name, getattr(self, f.name)) for f in fields(self))
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultSet":
        payload = dict(payload)
        take_wire_version(payload, "ResultSet")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"unknown ResultSet field(s) {unknown}; choose from {sorted(known)}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    # -- legacy bridge ----------------------------------------------------------

    def to_join_report(self):
        """The legacy :class:`repro.core.JoinReport` view of a join result
        (byte-identical to the pre-redesign entry points' output)."""
        from repro.core.api import JoinReport

        return JoinReport(
            pairs=[(a, b, score) for a, b, score in self.pairs],
            clusters=[set(cluster) for cluster in self.clusters],
            index_pairs={(i, j) for i, j in self.index_pairs},
            simulated_seconds=(
                0.0 if self.simulated_seconds is None else self.simulated_seconds
            ),
            counters=dict(self.counters),
        )

    # -- human rendering --------------------------------------------------------

    def _request_param(self, name, default=None):
        if not self.request:
            return default
        if name in self.request:
            return self.request[name]
        return self.request.get("params", {}).get(name, default)

    def summary(self, limit: int | None = None) -> list[str]:
        """Printable report lines (the CLI's non-``--json`` rendering)."""
        if self.kind == "join":
            return join_summary_lines(
                self.pairs,
                self.clusters,
                self.counters,
                self.simulated_seconds,
                threshold=self._request_param("threshold"),
                algorithm=self.algorithm,
                n_machines=self._request_param("n_machines", 10),
                limit=limit,
            )
        if self.kind in ("topk", "within"):
            lines = []
            for query, rows in zip(self.queries, self.matches):
                lines.append(f"# query: {query}")
                for name, score in rows[:limit]:
                    lines.append(f"{score:.4f}\t{name}")
            lines.extend(
                serving_summary_lines(
                    self.counters,
                    self.collection_size,
                    len(self.queries),
                    self.build_seconds,
                    self.query_seconds,
                )
            )
            return lines
        if self.kind == "compare":
            return [f"{self.value:.6f}"]
        return [f"# {self.kind} result"]
