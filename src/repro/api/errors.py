"""The wire-format contract: version tag and the uniform error envelope.

Two small pieces every process speaking the :class:`repro.api.ResultSet`
wire format shares -- the in-process facade, the CLI ``--json`` paths,
the HTTP server (:mod:`repro.server`) and the client SDK
(:mod:`repro.client`):

* **Versioning** -- every spec and every ``ResultSet`` JSON carries a
  ``"version"`` field (:data:`WIRE_VERSION`).  A missing field means
  version 1 (the pre-versioning wire format); an unknown version fails
  with the uniform selector-style error, so the envelope can evolve
  without old payloads being silently misread.

* **Errors** -- every failure surfaces as one :class:`ApiError` subclass
  and serializes to the one envelope shape::

      {"error": {"type": "<slug>", "message": "<human text>"}}

  :class:`ValidationError` subclasses :class:`ValueError` too, so every
  pre-existing ``except ValueError`` caller keeps working; each class
  carries the HTTP status the server answers with, and
  :func:`error_from_envelope` rebuilds the typed exception client-side
  so remote and in-process failures are caught the same way.

This module imports nothing from the rest of the package (it sits below
:mod:`repro.api.registry`), so any layer can raise typed errors without
import cycles.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "AuthError",
    "CorruptSnapshotError",
    "DeadlineExceededError",
    "MethodNotAllowedError",
    "NotFoundError",
    "OverloadedError",
    "ServerError",
    "ServiceUnavailableError",
    "ValidationError",
    "WalReplayError",
    "WIRE_VERSION",
    "error_envelope",
    "error_from_envelope",
    "take_wire_version",
]

#: The wire-format version this build writes (and the newest it reads).
#: Version 2 added the optional ``deadline_ms`` spec field (PR 8); the
#: reader still accepts version-1 payloads unchanged.
WIRE_VERSION = 2

#: Every version this build can read.
SUPPORTED_WIRE_VERSIONS = (1, 2)


class ApiError(Exception):
    """Base of the typed error hierarchy behind the uniform envelope.

    Attributes
    ----------
    type:
        The machine-readable slug in the envelope's ``error.type``.
    status:
        The HTTP status the server answers with for this class.
    """

    type = "api_error"
    status = 400

    def to_envelope(self) -> dict:
        """The uniform JSON error envelope for this exception."""
        return {"error": {"type": self.type, "message": str(self)}}


class ValidationError(ApiError, ValueError):
    """Malformed request: bad spec JSON, unknown selector, bad shapes.

    Also a :class:`ValueError`, so callers that predate the typed
    hierarchy (``except ValueError``) keep catching it.
    """

    type = "validation"
    status = 400


class AuthError(ApiError):
    """Missing or invalid bearer token."""

    type = "auth"
    status = 401


class NotFoundError(ApiError):
    """No such route/resource."""

    type = "not_found"
    status = 404


class MethodNotAllowedError(ApiError):
    """The route exists but not under this HTTP method."""

    type = "method_not_allowed"
    status = 405


class ServerError(ApiError):
    """An unexpected failure while executing an otherwise valid request."""

    type = "internal"
    status = 500


class ServiceUnavailableError(ApiError):
    """The service could not be reached (client-side: retries exhausted)."""

    type = "unavailable"
    status = 503


class OverloadedError(ApiError):
    """Load shed: the admission gate is full and the queue is at its bound.

    Carries a ``retry_after`` hint (seconds) that the HTTP layer also
    sends as a ``Retry-After`` header; the client SDK honors it as the
    backoff before its next attempt.
    """

    type = "overloaded"
    status = 503

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def to_envelope(self) -> dict:
        envelope = super().to_envelope()
        envelope["error"]["retry_after"] = self.retry_after
        return envelope


class DeadlineExceededError(ApiError):
    """The request's ``deadline_ms`` budget ran out; work was abandoned.

    A 504-class answer; *not* retryable by the client -- the deadline
    that expired server-side has expired for the caller too.
    """

    type = "deadline_exceeded"
    status = 504


class CorruptSnapshotError(ApiError):
    """A durable index snapshot failed validation (magic, version, CRC).

    Raised by :mod:`repro.store` when a snapshot file cannot be trusted:
    truncated header, wrong magic, unsupported format version, a section
    checksum mismatch, or internally inconsistent sections.  Callers
    holding the source corpus degrade to a full rebuild
    (:meth:`repro.store.SnapshotStore.open`); callers without one get
    the typed failure instead of wrong results.
    """

    type = "corrupt_snapshot"
    status = 500


class WalReplayError(ApiError):
    """The write-ahead append log could not be replayed.

    A *torn tail* (a crash mid-append leaving a partial last record) is
    not an error -- replay truncates it and continues.  This exception
    marks real corruption: a damaged record in the middle of the log, a
    record whose base offset does not chain onto the snapshot, or an
    unreadable header.  Like :class:`CorruptSnapshotError`, it degrades
    to a full rebuild when a source corpus is available.
    """

    type = "wal_replay"
    status = 500


_ERROR_TYPES = {
    cls.type: cls
    for cls in (
        ApiError,
        ValidationError,
        AuthError,
        NotFoundError,
        MethodNotAllowedError,
        ServerError,
        ServiceUnavailableError,
        OverloadedError,
        DeadlineExceededError,
        CorruptSnapshotError,
        WalReplayError,
    )
}


def error_envelope(exc: BaseException) -> dict:
    """The uniform envelope for *any* exception.

    :class:`ApiError` instances render themselves; anything else is
    wrapped as an ``internal`` error (class name + message, never a
    traceback) -- what the server emits for unexpected 500s.
    """
    if isinstance(exc, ApiError):
        return exc.to_envelope()
    return {
        "error": {
            "type": ServerError.type,
            "message": f"{type(exc).__name__}: {exc}",
        }
    }


def error_from_envelope(payload, status: int | None = None) -> ApiError:
    """Rebuild the typed exception from a (possibly malformed) envelope.

    The client SDK calls this on every non-2xx response: a well-formed
    envelope maps back onto its :class:`ApiError` subclass; anything
    else (a proxy's HTML error page, a truncated body) degrades to a
    generic :class:`ServerError`/:class:`ApiError` keyed on ``status``.
    """
    error = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(error, dict):
        error = {"message": f"malformed error response: {payload!r}"}
    message = str(error.get("message", "unknown error"))
    cls = _ERROR_TYPES.get(error.get("type"))
    if cls is None:
        cls = ServerError if (status or 0) >= 500 else ApiError
    if cls is OverloadedError:
        exc: ApiError = OverloadedError(
            message, retry_after=float(error.get("retry_after", 1.0))
        )
    else:
        exc = cls(message)
    if status is not None:
        exc.status = status
    return exc


def take_wire_version(payload: dict, what: str = "payload") -> int:
    """Pop and validate the ``"version"`` field of a wire payload.

    Missing means version 1 (payloads written before versioning);
    anything not in :data:`SUPPORTED_WIRE_VERSIONS` raises the uniform
    selector-style error.

    Examples
    --------
    >>> take_wire_version({"version": 1, "type": "join"})
    1
    >>> take_wire_version({"type": "join"})
    1
    >>> take_wire_version({"version": 99})
    Traceback (most recent call last):
        ...
    repro.api.errors.ValidationError: unknown payload wire format version 99; choose from [1, 2]
    """
    version = payload.pop("version", SUPPORTED_WIRE_VERSIONS[0])
    if version not in SUPPORTED_WIRE_VERSIONS:
        listed = ", ".join(str(v) for v in SUPPORTED_WIRE_VERSIONS)
        raise ValidationError(
            f"unknown {what} wire format version {version!r}; "
            f"choose from [{listed}]"
        )
    return version
