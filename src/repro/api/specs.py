"""Declarative, JSON-(de)serializable request objects.

A *spec* is the wire form of one request against the repository's single
front door (:class:`repro.api.Session`): a frozen dataclass naming an
algorithm (or serving method), its threshold/shape parameters, and --
optionally -- an inline corpus.  Specs round-trip through JSON
losslessly (``Spec.from_json(spec.to_json()) == spec``), which is what a
future HTTP/router layer speaks; in-process callers usually leave
``names`` unset and let the :class:`repro.api.Session` supply a resident
corpus instead.

Four request shapes cover every entry point:

* :class:`JoinSpec` -- a self-join under a registered algorithm
  (``repro.api.registry.join_algorithms()``);
* :class:`TopKSpec` -- batched top-k queries against a resident index
  (``repro.api.registry.search_methods()``);
* :class:`WithinSpec` -- batched range queries against a resident index;
* :class:`CompareSpec` -- one NSLD evaluation between two raw strings.

:func:`spec_from_json` dispatches on the envelope's ``"type"`` tag.

Every spec's JSON form carries the wire-format ``"version"`` tag
(:data:`repro.api.errors.WIRE_VERSION`): a missing field means version
1, an unknown version raises the uniform
:class:`~repro.api.errors.ValidationError`, so the envelope can evolve
without old payloads being silently misread.

Selector fields (``algorithm``, ``method``, ``backend``, ``engine``) are
validated eagerly at construction through
:mod:`repro.api.registry`, so a typo fails with the uniform
``unknown <kind> ...; choose from [...]`` error before any work runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Mapping

from repro.api.errors import WIRE_VERSION, ValidationError, take_wire_version
from repro.api.registry import resolve_join, resolve_search, validate_choice

__all__ = [
    "CompareSpec",
    "JoinSpec",
    "TopKSpec",
    "WithinSpec",
    "spec_from_json",
]


def _frozen_set(spec, name, value) -> None:
    object.__setattr__(spec, name, value)


def _jsonify(value):
    """Deep-normalise to JSON shapes (tuples -> lists, mappings -> dicts)
    so a constructed spec compares equal to its JSON round trip even when
    ``params`` nests sequences."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def _normalise_names(spec, attribute: str) -> None:
    value = getattr(spec, attribute)
    if value is not None:
        _frozen_set(spec, attribute, tuple(value))


def _normalise_common(spec) -> None:
    """The normalisation steps every spec shares: ``names`` to a tuple,
    ``params`` to deep-JSON form, selector and deadline validation."""
    if hasattr(spec, "names"):
        _normalise_names(spec, "names")
    if hasattr(spec, "params"):
        _frozen_set(spec, "params", _jsonify(spec.params))
    _validate_backend_engine(spec)
    deadline_ms = spec.deadline_ms
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            raise ValidationError("deadline_ms must be a number (milliseconds)")
        if deadline_ms <= 0:
            raise ValidationError("deadline_ms must be positive")
        _frozen_set(spec, "deadline_ms", float(deadline_ms))


def _normalise_queries(spec) -> None:
    if isinstance(spec.queries, str):
        _frozen_set(spec, "queries", (spec.queries,))
    else:
        _frozen_set(spec, "queries", tuple(spec.queries))


def _validate_backend_engine(spec) -> None:
    # Deferred imports: specs must stay importable from anywhere.
    if getattr(spec, "backend", None) is not None:
        from repro.accel import BACKENDS

        validate_choice("verification backend", spec.backend, BACKENDS)
    if getattr(spec, "engine", None) is not None:
        from repro.runtime import ENGINES

        validate_choice("execution engine", spec.engine, ENGINES)


class _SpecBase:
    """Shared JSON plumbing for the four spec shapes."""

    #: The envelope tag dispatched on by :func:`spec_from_json`.
    type: str = ""

    def to_dict(self) -> dict:
        """The JSON-ready mapping form (``"version"``- and ``"type"``-tagged)."""
        payload: dict = {"version": WIRE_VERSION, "type": self.type}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            payload[spec_field.name] = value
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "_SpecBase":
        payload = dict(payload)
        take_wire_version(payload, "spec")
        tag = payload.pop("type", cls.type)
        if tag != cls.type:
            raise ValidationError(
                f"cannot load a {tag!r} payload as {cls.__name__} "
                f"(expected type {cls.type!r})"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"unknown {cls.__name__} field(s) {unknown}; "
                f"choose from {sorted(known)}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "_SpecBase":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class JoinSpec(_SpecBase):
    """A declarative self-join request.

    Parameters
    ----------
    algorithm:
        A registered join algorithm
        (:func:`repro.api.registry.join_algorithms`); the paper's TSJ
        pipeline is the default -- one algorithm choice among equals.
    threshold:
        The algorithm's native threshold: NSLD/NLD distance for
        ``tsj``/``naive``/``massjoin``/the metric-space family, integer
        edit distance for ``passjoin``/``passjoin_k``/``passjoin_kmr``/
        ``qgram``, Jaccard similarity for
        ``prefix_filter``/``mgjoin``/``vernica``.
    names:
        Optional inline corpus.  Leave unset to join the session's
        resident corpus (or the data passed to ``Session.run``).
    backend / engine:
        Verification-kernel and execution-engine selectors; ``None``
        inherits the session's defaults.
    params:
        Algorithm-specific keyword arguments (JSON-able values), e.g.
        ``{"max_token_frequency": 1000, "n_machines": 10}`` for ``tsj``
        or ``{"k_signatures": 2}`` for ``passjoin_k``.
    deadline_ms:
        Optional request budget in milliseconds (wire version 2).  The
        executing session installs it as the ambient deadline
        (:mod:`repro.runtime.deadline`); expiry raises the typed
        :class:`~repro.api.errors.DeadlineExceededError` (HTTP 504) at
        the next shard boundary, abandoning partial work cleanly.
    """

    type = "join"

    algorithm: str = "tsj"
    threshold: float = 0.1
    names: tuple | None = None
    backend: str | None = None
    engine: str | None = None
    params: dict = field(default_factory=dict)
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        resolve_join(self.algorithm)
        _normalise_common(self)


@dataclass(frozen=True)
class TopKSpec(_SpecBase):
    """Batched top-k queries against a resident index."""

    type = "topk"

    queries: tuple = ()
    k: int = 5
    method: str = "similarity_index"
    names: tuple | None = None
    backend: str | None = None
    processes: int | None = None
    params: dict = field(default_factory=dict)
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        resolve_search(self.method)
        if self.k < 1:
            raise ValidationError("k must be positive")
        _normalise_queries(self)
        _normalise_common(self)


@dataclass(frozen=True)
class WithinSpec(_SpecBase):
    """Batched range queries (all matches within ``radius``)."""

    type = "within"

    queries: tuple = ()
    radius: float = 0.1
    method: str = "similarity_index"
    names: tuple | None = None
    backend: str | None = None
    processes: int | None = None
    params: dict = field(default_factory=dict)
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        backend = resolve_search(self.method)
        if not backend.supports_within:
            raise ValidationError(
                f"method {backend.name!r} does not support range queries "
                "(no distance semantics); use TopKSpec"
            )
        if self.radius < 0:
            raise ValidationError("radius must be non-negative")
        _normalise_queries(self)
        _normalise_common(self)


@dataclass(frozen=True)
class CompareSpec(_SpecBase):
    """One NSLD evaluation between two raw strings."""

    type = "compare"

    name_a: str = ""
    name_b: str = ""
    backend: str | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        _normalise_common(self)


_SPEC_TYPES: dict[str, type] = {
    spec.type: spec for spec in (JoinSpec, TopKSpec, WithinSpec, CompareSpec)
}


def spec_from_json(text: str | Mapping):
    """Load any spec from its JSON (or already-parsed mapping) form.

    Dispatches on the ``"type"`` tag; unknown tags raise the uniform
    selector error, and malformed JSON text, non-object payloads and
    unknown wire-format versions raise the same typed
    :class:`~repro.api.errors.ValidationError` -- what the HTTP server
    answers 400 with.

    Examples
    --------
    >>> spec = JoinSpec(algorithm="passjoin", threshold=2)
    >>> spec_from_json(spec.to_json()) == spec
    True
    """
    if isinstance(text, str):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"spec is not valid JSON: {exc}") from exc
    else:
        payload = text
    if not isinstance(payload, Mapping):
        raise ValidationError(
            "spec must be a JSON object, got " f"{type(payload).__name__}"
        )
    payload = dict(payload)
    tag = payload.get("type")
    validate_choice("spec type", tag, tuple(sorted(_SPEC_TYPES)))
    return _SPEC_TYPES[tag].from_dict(payload)
