"""Command-line interface: ``repro-tsj`` (or ``python -m repro``).

Every data-path subcommand is a thin veneer over the declarative
front door (:mod:`repro.api`): it builds a spec, executes it through one
:class:`repro.api.Session`, and renders the uniform
:class:`repro.api.ResultSet` envelope -- as human-readable summary lines
by default, or as the JSON wire format with ``--json`` (what a future
server/router speaks).

Subcommands
-----------

``generate``  Write a synthetic name corpus (optionally with planted fraud
              rings) to a file, one name per line.
``join``      Self-join a file of names under any registered join
              algorithm (``--algorithm``; the paper's TSJ pipeline is the
              default choice) and print pairs and clusters.
``compare``   Print the NSLD between two names.
``roc``       Run the Fig. 6 name-change ROC comparison and print AUCs.
``knn``       Nearest neighbours of one or more names from a resident
              index (VP-tree over NSLD, built once for the whole batch).
``search``    Serve top-k or range queries from a resident
              :class:`repro.service.SimilarityIndex` (build once, query
              many; any registered search backend).
``run``       Execute a spec from a JSON file (``--spec spec.json``, or
              ``--spec -`` for stdin) -- the declarative entry point;
              emits the ResultSet envelope (``--output FILE`` writes it
              to a file), so it composes in shell pipelines the same way
              the HTTP server does.
``serve``     Run the HTTP similarity service (:mod:`repro.server`): one
              process-wide session answering POSTed specs with ResultSet
              envelopes, plus health/metrics endpoints.  ``--store DIR``
              makes it durable: warm restart from snapshot + WAL (a
              one-line recovery summary prints at boot), and
              ``/v1/append`` survives crashes.  ``--shards N`` serves
              the resident corpus from N scatter-gather shards with
              identical results and counters.
``index``     Durable index snapshots: ``index save`` writes an atomic,
              checksummed snapshot of a corpus's serving index;
              ``index load`` restores it (optionally serving queries)
              without re-tokenizing or re-indexing the corpus.
``tune``      Coordinate-descent search for (T, M) against a corpus with
              planted rings (footnote 5 of the paper).

Failures raise the typed :class:`repro.api.errors.ApiError` hierarchy;
``main`` renders them as the uniform JSON error envelope
(``{"error": {"type", "message"}}``) on the JSON-emitting paths and as a
one-line ``error: ...`` on the human-readable ones -- the same shapes
the HTTP server answers with.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.accel import BACKENDS
from repro.analysis import auc, roc_curve
from repro.api import (
    CompareSpec,
    JoinSpec,
    Session,
    TopKSpec,
    WithinSpec,
    join_algorithms,
    search_methods,
    spec_from_json,
)
from repro.api.errors import ApiError, ValidationError
from repro.data import evaluation_corpus, name_change_dataset
from repro.distances import fuzzy_cosine, fuzzy_dice, fuzzy_jaccard
from repro.runtime import ENGINES
from repro.tokenize import tokenize


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="edit-distance verification kernel (auto = fast path: "
        "vector when numpy is installed, else bitparallel; "
        "dp = reference dynamic program; vector requires numpy)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="auto",
        help="execution engine for the MapReduce pipeline (auto = parallel "
        "over the shared worker pool when multiple CPUs are usable and the "
        "platform forks workers by default; on spawn/forkserver platforms "
        "such as macOS or Windows pass 'parallel' explicitly; "
        "serial = the deterministic reference engine)",
    )


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.shard import PLACEMENTS

    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the resident index across N shards served by "
        "scatter-gather (results and counters are shard-count invariant; "
        "default: 1 = unsharded)",
    )
    parser.add_argument(
        "--placement",
        choices=list(PLACEMENTS),
        default="length",
        help="shard placement: length = contiguous token-length ranges "
        "(the Lemma 6 window prunes whole shards), hash = uniform id "
        "hash (no pruning)",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the ResultSet envelope as JSON (the wire format) "
        "instead of the human-readable summary",
    )


def _emit(result, args) -> int:
    """Render one ResultSet: JSON envelope or summary lines."""
    if getattr(args, "json", False):
        print(result.to_json(indent=2))
    else:
        for line in result.summary(limit=getattr(args, "limit", None)):
            print(line)
    return 0


def _read_names(path: str) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


def _parse_params(entries: Sequence[str] | None) -> dict:
    """``--param key=value`` pairs; values parse as JSON scalars when
    possible (``--param n_machines=20 --param mode=ld``)."""
    params: dict = {}
    for entry in entries or ():
        key, separator, raw = entry.partition("=")
        if not separator:
            raise SystemExit(f"--param expects key=value, got {entry!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_generate(args: argparse.Namespace) -> int:
    names, rings = evaluation_corpus(
        args.size,
        ring_fraction=args.ring_fraction,
        ring_size=args.ring_size,
        seed=args.seed,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        for name in names:
            handle.write(name + "\n")
    print(f"wrote {len(names)} names ({len(rings)} planted rings) to {args.output}")
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    names = _read_names(args.input)
    params = _parse_params(args.param)
    if args.algorithm == "tsj":
        params.setdefault("max_token_frequency", args.max_frequency)
        params.setdefault("n_machines", args.machines)
        params.setdefault("matching", args.matching)
        params.setdefault("aligning", args.aligning)
    spec = JoinSpec(
        algorithm=args.algorithm,
        threshold=args.threshold,
        backend=args.backend,
        engine=args.engine,
        params=params,
    )
    result = Session(shards=args.shards, placement=args.placement).run(
        spec, names=names
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for name_a, name_b, score in result.pairs:
                handle.write(f"{score:.6f}\t{name_a}\t{name_b}\n")
    return _emit(result, args)


def _cmd_compare(args: argparse.Namespace) -> int:
    result = Session().run(
        CompareSpec(name_a=args.name_a, name_b=args.name_b, backend=args.backend)
    )
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"{result.value:.6f}")
    return 0


def _cmd_roc(args: argparse.Namespace) -> int:
    triples = name_change_dataset(args.size, seed=args.seed)
    labels = [is_fraud for _, _, is_fraud in triples]
    session = Session()
    measures = {
        "NSLD": session.compare,
        "1-FJaccard": lambda old, new: 1.0
        - fuzzy_jaccard(tokenize(old).tokens, tokenize(new).tokens, 0.8),
        "1-FCosine": lambda old, new: 1.0
        - fuzzy_cosine(tokenize(old).tokens, tokenize(new).tokens, 0.8),
        "1-FDice": lambda old, new: 1.0
        - fuzzy_dice(tokenize(old).tokens, tokenize(new).tokens, 0.8),
    }
    for label, measure in measures.items():
        scores = [measure(old, new) for old, new, _ in triples]
        fpr, tpr, _ = roc_curve(scores, labels)
        print(f"{label:12s} AUC = {auc(fpr, tpr):.4f}")
    return 0


def _cmd_knn(args: argparse.Namespace) -> int:
    if args.k < 1:
        print("-k must be positive")
        return 2
    names = _read_names(args.input)
    spec = TopKSpec(
        queries=tuple(args.queries),
        k=args.k,
        method="vptree",
        backend=args.backend,
    )
    return _emit(Session().run(spec, names=names), args)


def _cmd_search(args: argparse.Namespace) -> int:
    names = _read_names(args.input)
    queries = list(args.queries)
    if args.queries_file:
        queries.extend(_read_names(args.queries_file))
    if not queries:
        print("no queries given (positional arguments or --queries-file)")
        return 2
    if args.radius is None and args.k < 1:
        print("-k must be positive")
        return 2
    if args.radius is not None:
        if args.radius < 0:
            print("--radius must be non-negative")
            return 2
        if args.method == "fuzzymatch":
            print(
                "--radius is not supported with --method fuzzymatch "
                "(FMS similarity has no range semantics); use top-k mode"
            )
            return 2
        spec: TopKSpec | WithinSpec = WithinSpec(
            queries=tuple(queries),
            radius=args.radius,
            method=args.method,
            backend=args.backend,
            processes=args.processes,
        )
    else:
        spec = TopKSpec(
            queries=tuple(queries),
            k=args.k,
            method=args.method,
            backend=args.backend,
            processes=args.processes,
        )
    return _emit(
        Session(shards=args.shards, placement=args.placement).run(
            spec, names=names
        ),
        args,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.spec == "-":
        text = sys.stdin.read()
    else:
        with open(args.spec, encoding="utf-8") as handle:
            text = handle.read()
    spec = spec_from_json(text)
    names = _read_names(args.input) if args.input else None
    result = Session().run(spec, names=names)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2) + "\n")
    if args.summary:
        for line in result.summary(limit=args.limit):
            print(line)
    elif not args.output:
        print(result.to_json(indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve

    names = _read_names(args.input) if args.input else None
    server = serve(
        names,
        host=args.host,
        port=args.port,
        token=args.token,
        backend=args.backend,
        engine=args.engine,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        store_dir=args.store,
        shards=args.shards,
        placement=args.placement,
    )
    session = server.service.session
    if args.store:
        status = session.store_status()
        resident = len(session._default_names or ())
        # The one-line recovery summary: what the boot actually did, so
        # operators see it without curling /v1/health.
        snapshot = "snapshot loaded" if status["loaded"] else "no snapshot"
        torn = (
            ", torn WAL tail truncated" if status["torn_tail_truncated"] else ""
        )
        print(
            f"store {args.store}: {snapshot}, "
            f"{status['wal_records']} WAL record(s) replayed{torn}, "
            f"{status['rebuilds']} rebuild(s)",
            flush=True,
        )
        corpus = f"{resident} resident names (durable)"
    else:
        corpus = f"{len(names)} resident names" if names else "no resident corpus"
    layout = session.shard_status()
    if layout is not None:
        corpus += (
            f", {layout['shards']} shards "
            f"({layout['placement']['kind']} placement)"
        )
    auth = "bearer-token auth" if args.token else "no auth"
    print(f"serving on {server.url} ({corpus}, {auth})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_index_save(args: argparse.Namespace) -> int:
    names = _read_names(args.input)
    if args.shards > 1:
        from repro.shard import ShardedIndex, ShardedSnapshotStore

        index = ShardedIndex(
            names,
            n_shards=args.shards,
            placement=args.placement,
            backend=args.backend,
        )
        written = ShardedSnapshotStore(args.output).save(index)
        print(
            f"saved {len(names)}-record sharded index to {args.output}/ "
            f"({args.shards} shards, {args.placement} placement, "
            f"{written} bytes, checksummed, atomically published)"
        )
        return 0
    session = Session(names, backend=args.backend)
    session.save(args.output)
    import os

    size = os.path.getsize(args.output)
    print(
        f"saved {len(names)}-record index snapshot to {args.output} "
        f"({size} bytes, checksummed, atomically published)"
    )
    return 0


def _load_session(snapshot: str) -> Session:
    """``Session.load`` for a snapshot file, or a sharded store directory
    (detected by its manifest) restored without re-tokenizing."""
    import os

    if not os.path.isdir(snapshot):
        return Session.load(snapshot)
    from repro.shard import ShardedSnapshotStore, is_sharded_store

    if not is_sharded_store(snapshot):
        raise ValidationError(
            f"{snapshot} is a directory without a shard manifest; "
            "expected a snapshot file or a sharded index store"
        )
    index = ShardedSnapshotStore(snapshot).load()
    session = Session(
        tokenizer=index.tokenizer,
        backend=index.backend,
        cache_size=index.result_cache.capacity,
    )
    session._install_durable(index)
    return session


def _cmd_index_load(args: argparse.Namespace) -> int:
    session = _load_session(args.snapshot)
    if args.queries:
        spec = TopKSpec(queries=tuple(args.queries), k=args.k)
        return _emit(session.run(spec), args)
    stats = session.stats()["corpora"][0]
    print(
        f"loaded {stats['records']}-record index from {args.snapshot} "
        "(no re-tokenization; pass query names to serve top-k from it)"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.analysis.tuning import tune_parameters
    from repro.data import corpus_with_rings

    names, rings = corpus_with_rings(
        args.background, args.rings, args.ring_size, seed=args.seed
    )
    records = [tokenize(name) for name in names]
    truth = {(a, b) for ring in rings for a in ring for b in ring if a < b}
    result = tune_parameters(records, truth, beta=args.beta)
    print(
        f"best: T = {result.threshold}, M = {result.max_token_frequency}, "
        f"F{args.beta:g} = {result.score:.3f} "
        f"({result.evaluations} evaluations)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tsj",
        description="Scalable similarity joins of tokenized strings "
        "(Metwally & Huang, ICDE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("output")
    generate.add_argument("--size", type=int, default=1000)
    generate.add_argument("--ring-fraction", type=float, default=0.3)
    generate.add_argument("--ring-size", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    join = sub.add_parser(
        "join", help="self-join a file of names under a registered algorithm"
    )
    join.add_argument("input")
    join.add_argument(
        "--algorithm",
        choices=list(join_algorithms()),
        default="tsj",
        help="join algorithm (default: the paper's TSJ pipeline; "
        "see repro.api.registry)",
    )
    join.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="the algorithm's native threshold (NSLD/NLD distance, integer "
        "edit distance, or Jaccard similarity)",
    )
    join.add_argument("--max-frequency", type=int, default=1000)
    join.add_argument("--machines", type=int, default=10)
    join.add_argument("--matching", choices=["fuzzy", "exact"], default="fuzzy")
    join.add_argument(
        "--aligning", choices=["hungarian", "greedy"], default="hungarian"
    )
    join.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="algorithm-specific parameter (repeatable; values parse as "
        "JSON scalars), e.g. --param k_signatures=3",
    )
    join.add_argument("--limit", type=int, default=50)
    join.add_argument("--output", help="also write all pairs to a TSV file")
    _add_backend_argument(join)
    _add_engine_argument(join)
    _add_shard_arguments(join)
    _add_json_argument(join)
    join.set_defaults(func=_cmd_join)

    compare = sub.add_parser("compare", help="NSLD between two names")
    compare.add_argument("name_a")
    compare.add_argument("name_b")
    _add_backend_argument(compare)
    _add_json_argument(compare)
    compare.set_defaults(func=_cmd_compare)

    roc = sub.add_parser("roc", help="Fig. 6 distance-measure ROC comparison")
    roc.add_argument("--size", type=int, default=1000)
    roc.add_argument("--seed", type=int, default=0)
    roc.set_defaults(func=_cmd_roc)

    knn = sub.add_parser(
        "knn", help="nearest neighbours of one or more names (resident index)"
    )
    knn.add_argument("input", help="file of names, one per line")
    knn.add_argument("queries", nargs="+", help="one or more query names")
    knn.add_argument("-k", type=int, default=5)
    _add_backend_argument(knn)
    _add_json_argument(knn)
    knn.set_defaults(func=_cmd_knn)

    search = sub.add_parser(
        "search",
        help="serve top-k/range queries from a resident index "
        "(build once, query many)",
    )
    search.add_argument("input", help="file of names, one per line")
    search.add_argument("queries", nargs="*", help="query names")
    search.add_argument(
        "--queries-file", help="file of additional queries, one per line"
    )
    search.add_argument("-k", type=int, default=5)
    search.add_argument(
        "--radius",
        type=float,
        help="range mode: all matches within this distance "
        "(default: top-k mode)",
    )
    search.add_argument(
        "--method",
        choices=list(search_methods(include_aliases=True)),
        default="similarity_index",
        help="serving backend (similarity_index/cascade = exact NSLD "
        "through the candidate pipeline; vptree/bktree = metric trees; "
        "fuzzymatch = FMS top-k)",
    )
    search.add_argument(
        "--processes",
        type=int,
        help="fan the query batch out over the shared worker pool "
        "(pool-shared snapshot; results identical)",
    )
    _add_backend_argument(search)
    _add_shard_arguments(search)
    _add_json_argument(search)
    search.set_defaults(func=_cmd_search)

    run = sub.add_parser(
        "run",
        help="execute a declarative spec from a JSON file or stdin "
        "(join/topk/within/compare)",
    )
    run.add_argument(
        "--spec",
        required=True,
        help="path to the spec JSON, or '-' to read it from stdin",
    )
    run.add_argument(
        "--input",
        help="file of names, one per line, when the spec carries no "
        "inline corpus",
    )
    run.add_argument(
        "--output",
        help="write the ResultSet envelope to this file instead of stdout "
        "(combine with --summary to also print the human summary)",
    )
    run.add_argument(
        "--summary",
        action="store_true",
        help="print the human-readable summary instead of the JSON envelope",
    )
    run.add_argument("--limit", type=int, default=50)
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP similarity service (POST specs to /v1/run, "
        "get ResultSet envelopes back)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--input",
        help="file of names, one per line, preloaded as the session's "
        "resident default corpus",
    )
    serve.add_argument(
        "--token",
        help="static bearer token required on every request except "
        "/v1/health (default: auth disabled)",
    )
    serve.add_argument(
        "--store",
        help="durable store directory: boot warm-restarts from its "
        "snapshot + write-ahead log (created on first use; a damaged "
        "store degrades to a rebuild from --input and is reported in "
        "/v1/health), and /v1/append survives crashes",
    )
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="bound on concurrently executing requests; overflow beyond "
        "the queue is shed with 503 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="requests allowed to wait for an execution slot before "
        "shedding starts (only meaningful with --max-inflight)",
    )
    _add_backend_argument(serve)
    _add_engine_argument(serve)
    _add_shard_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    index = sub.add_parser(
        "index",
        help="durable index snapshots (save/load without rebuilding)",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_save = index_sub.add_parser(
        "save",
        help="build a serving index over a corpus and write an atomic, "
        "checksummed snapshot file",
    )
    index_save.add_argument("input", help="file of names, one per line")
    index_save.add_argument(
        "output",
        help="snapshot file to write (a store directory with --shards > 1)",
    )
    _add_backend_argument(index_save)
    _add_shard_arguments(index_save)
    index_save.set_defaults(func=_cmd_index_save)

    index_load = index_sub.add_parser(
        "load",
        help="restore a saved snapshot (and optionally serve top-k "
        "queries from it)",
    )
    index_load.add_argument(
        "snapshot",
        help="snapshot file -- or sharded store directory -- to load",
    )
    index_load.add_argument(
        "queries", nargs="*", help="optional query names to serve top-k for"
    )
    index_load.add_argument("-k", type=int, default=5)
    _add_json_argument(index_load)
    index_load.set_defaults(func=_cmd_index_load)

    tune = sub.add_parser("tune", help="search (T, M) on a ring corpus")
    tune.add_argument("--background", type=int, default=100)
    tune.add_argument("--rings", type=int, default=5)
    tune.add_argument("--ring-size", type=int, default=4)
    tune.add_argument("--beta", type=float, default=1.0)
    tune.add_argument("--seed", type=int, default=0)
    tune.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ApiError as exc:
        # The uniform error shapes: the JSON-emitting paths print the
        # same {"error": {"type", "message"}} envelope the HTTP server
        # answers with; the human-readable paths get one clean line.
        wants_json = getattr(args, "json", False) or (
            args.command == "run" and not getattr(args, "summary", False)
        )
        if wants_json:
            print(json.dumps(exc.to_envelope(), indent=2))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
