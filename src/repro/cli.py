"""Command-line interface: ``repro-tsj`` (or ``python -m repro``).

Subcommands
-----------

``generate``  Write a synthetic name corpus (optionally with planted fraud
              rings) to a file, one name per line.
``join``      NSLD-self-join a file of names with TSJ and print the similar
              pairs and detected clusters.
``compare``   Print the NSLD between two names.
``roc``       Run the Fig. 6 name-change ROC comparison and print AUCs.
``knn``       Nearest neighbours of one or more names from a resident
              index (VP-tree over NSLD, built once for the whole batch).
``search``    Serve top-k or range queries from a resident
              :class:`repro.service.SimilarityIndex` (build once, query
              many; cascade, VP-tree, BK-tree or FuzzyMatch backends).
``tune``      Coordinate-descent search for (T, M) against a corpus with
              planted rings (footnote 5 of the paper).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.accel import BACKENDS
from repro.analysis import auc, roc_curve
from repro.candidates import CASCADE_COUNTERS, COUNTER_CANDIDATES, COUNTER_VERIFIED
from repro.core import compare_names, nsld_join
from repro.data import evaluation_corpus, name_change_dataset
from repro.distances import fuzzy_cosine, fuzzy_dice, fuzzy_jaccard
from repro.runtime import ENGINES
from repro.service import (
    COUNTER_CACHE_HITS,
    COUNTER_CACHE_MISSES,
    SERVE_METHODS,
    SimilarityIndex,
)
from repro.tokenize import tokenize


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="edit-distance verification kernel (auto = fast path, "
        "dp = reference dynamic program)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="auto",
        help="execution engine for the MapReduce pipeline (auto = parallel "
        "over the shared worker pool when multiple CPUs are usable and the "
        "platform forks workers by default; on spawn/forkserver platforms "
        "such as macOS or Windows pass 'parallel' explicitly; "
        "serial = the deterministic reference engine)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    names, rings = evaluation_corpus(
        args.size,
        ring_fraction=args.ring_fraction,
        ring_size=args.ring_size,
        seed=args.seed,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        for name in names:
            handle.write(name + "\n")
    print(f"wrote {len(names)} names ({len(rings)} planted rings) to {args.output}")
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    with open(args.input, encoding="utf-8") as handle:
        names = [line.strip() for line in handle if line.strip()]
    report = nsld_join(
        names,
        threshold=args.threshold,
        max_token_frequency=args.max_frequency,
        n_machines=args.machines,
        matching=args.matching,
        aligning=args.aligning,
        verify_backend=args.backend,
        engine=args.engine,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for name_a, name_b, distance in report.pairs:
                handle.write(f"{distance:.6f}\t{name_a}\t{name_b}\n")
    print(f"# {len(report.pairs)} similar pairs (T = {args.threshold})")
    for name_a, name_b, distance in report.pairs[: args.limit]:
        print(f"{distance:.4f}\t{name_a}\t{name_b}")
    print(f"# {len(report.clusters)} clusters")
    for cluster in report.clusters[: args.limit]:
        print("  " + " | ".join(sorted(cluster)))
    print(f"# simulated runtime: {report.simulated_seconds:.1f}s "
          f"on {args.machines} machines")
    _print_pipeline_summary(report.counters)
    return 0


def _print_pipeline_summary(counters: dict[str, int]) -> None:
    """One-line candidate-pipeline effectiveness summary (filter cascade)."""
    shown = {name: counters.get(name, 0) for name in CASCADE_COUNTERS}
    if not any(shown.values()):
        return
    generated = shown[COUNTER_CANDIDATES]
    verified = shown[COUNTER_VERIFIED]
    parts = ", ".join(f"{name} = {value}" for name, value in shown.items() if value)
    print(f"# candidate pipeline: {parts}")
    if generated:
        print(
            "# filter cascade kept "
            f"{verified / generated:.1%} of generated candidates"
        )


def _cmd_compare(args: argparse.Namespace) -> int:
    print(f"{compare_names(args.name_a, args.name_b, backend=args.backend):.6f}")
    return 0


def _cmd_roc(args: argparse.Namespace) -> int:
    triples = name_change_dataset(args.size, seed=args.seed)
    labels = [is_fraud for _, _, is_fraud in triples]
    measures = {
        "NSLD": lambda old, new: compare_names(old, new),
        "1-FJaccard": lambda old, new: 1.0
        - fuzzy_jaccard(tokenize(old).tokens, tokenize(new).tokens, 0.8),
        "1-FCosine": lambda old, new: 1.0
        - fuzzy_cosine(tokenize(old).tokens, tokenize(new).tokens, 0.8),
        "1-FDice": lambda old, new: 1.0
        - fuzzy_dice(tokenize(old).tokens, tokenize(new).tokens, 0.8),
    }
    for label, measure in measures.items():
        scores = [measure(old, new) for old, new, _ in triples]
        fpr, tpr, _ = roc_curve(scores, labels)
        print(f"{label:12s} AUC = {auc(fpr, tpr):.4f}")
    return 0


def _read_names(path: str) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


def _print_serve_summary(index, n_names, n_queries, build_seconds, query_seconds):
    """The resident-index summary: build-vs-query split plus cache use."""
    print(
        f"# resident index: {n_names} names built once in {build_seconds:.3f}s; "
        f"{n_queries} queries served in {query_seconds:.3f}s"
    )
    counters = index.counters
    print(
        f"# result cache: {counters[COUNTER_CACHE_HITS]} hits, "
        f"{counters[COUNTER_CACHE_MISSES]} misses "
        f"({len(index.result_cache)} resident)"
    )
    _print_pipeline_summary(counters)


def _cmd_knn(args: argparse.Namespace) -> int:
    if args.k < 1:
        print("-k must be positive")
        return 2
    names = _read_names(args.input)
    build_start = time.perf_counter()
    index = SimilarityIndex(names, backend=args.backend).prepare("vptree")
    build_seconds = time.perf_counter() - build_start
    query_start = time.perf_counter()
    results = index.topk(args.queries, k=args.k, method="vptree")
    query_seconds = time.perf_counter() - query_start
    for query, matches in zip(args.queries, results):
        if len(args.queries) > 1:
            print(f"# query: {query}")
        for name, distance in matches:
            print(f"{distance:.4f}\t{name}")
    _print_serve_summary(
        index, len(names), len(args.queries), build_seconds, query_seconds
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    names = _read_names(args.input)
    queries = list(args.queries)
    if args.queries_file:
        queries.extend(_read_names(args.queries_file))
    if not queries:
        print("no queries given (positional arguments or --queries-file)")
        return 2
    if args.radius is None and args.k < 1:
        print("-k must be positive")
        return 2
    if args.radius is not None:
        if args.radius < 0:
            print("--radius must be non-negative")
            return 2
        if args.method == "fuzzymatch":
            print(
                "--radius is not supported with --method fuzzymatch "
                "(FMS similarity has no range semantics); use top-k mode"
            )
            return 2
    build_start = time.perf_counter()
    index = SimilarityIndex(names, backend=args.backend).prepare(args.method)
    build_seconds = time.perf_counter() - build_start
    query_start = time.perf_counter()
    if args.radius is not None:
        results = index.within(
            queries,
            radius=args.radius,
            method=args.method,
            processes=args.processes,
        )
    else:
        results = index.topk(
            queries, k=args.k, method=args.method, processes=args.processes
        )
    query_seconds = time.perf_counter() - query_start
    for query, matches in zip(queries, results):
        print(f"# query: {query}")
        for name, score in matches:
            print(f"{score:.4f}\t{name}")
    _print_serve_summary(index, len(names), len(queries), build_seconds, query_seconds)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.analysis.tuning import tune_parameters
    from repro.data import corpus_with_rings

    names, rings = corpus_with_rings(
        args.background, args.rings, args.ring_size, seed=args.seed
    )
    records = [tokenize(name) for name in names]
    truth = {(a, b) for ring in rings for a in ring for b in ring if a < b}
    result = tune_parameters(records, truth, beta=args.beta)
    print(
        f"best: T = {result.threshold}, M = {result.max_token_frequency}, "
        f"F{args.beta:g} = {result.score:.3f} "
        f"({result.evaluations} evaluations)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tsj",
        description="Scalable similarity joins of tokenized strings "
        "(Metwally & Huang, ICDE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("output")
    generate.add_argument("--size", type=int, default=1000)
    generate.add_argument("--ring-fraction", type=float, default=0.3)
    generate.add_argument("--ring-size", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    join = sub.add_parser("join", help="NSLD-self-join a file of names")
    join.add_argument("input")
    join.add_argument("--threshold", type=float, default=0.1)
    join.add_argument("--max-frequency", type=int, default=1000)
    join.add_argument("--machines", type=int, default=10)
    join.add_argument("--matching", choices=["fuzzy", "exact"], default="fuzzy")
    join.add_argument(
        "--aligning", choices=["hungarian", "greedy"], default="hungarian"
    )
    join.add_argument("--limit", type=int, default=50)
    join.add_argument("--output", help="also write all pairs to a TSV file")
    _add_backend_argument(join)
    _add_engine_argument(join)
    join.set_defaults(func=_cmd_join)

    compare = sub.add_parser("compare", help="NSLD between two names")
    compare.add_argument("name_a")
    compare.add_argument("name_b")
    _add_backend_argument(compare)
    compare.set_defaults(func=_cmd_compare)

    roc = sub.add_parser("roc", help="Fig. 6 distance-measure ROC comparison")
    roc.add_argument("--size", type=int, default=1000)
    roc.add_argument("--seed", type=int, default=0)
    roc.set_defaults(func=_cmd_roc)

    knn = sub.add_parser(
        "knn", help="nearest neighbours of one or more names (resident index)"
    )
    knn.add_argument("input", help="file of names, one per line")
    knn.add_argument("queries", nargs="+", help="one or more query names")
    knn.add_argument("-k", type=int, default=5)
    _add_backend_argument(knn)
    knn.set_defaults(func=_cmd_knn)

    search = sub.add_parser(
        "search",
        help="serve top-k/range queries from a resident index "
        "(build once, query many)",
    )
    search.add_argument("input", help="file of names, one per line")
    search.add_argument("queries", nargs="*", help="query names")
    search.add_argument(
        "--queries-file", help="file of additional queries, one per line"
    )
    search.add_argument("-k", type=int, default=5)
    search.add_argument(
        "--radius",
        type=float,
        help="range mode: all matches within this distance "
        "(default: top-k mode)",
    )
    search.add_argument(
        "--method",
        choices=list(SERVE_METHODS),
        default="cascade",
        help="serving backend (cascade = exact NSLD through the candidate "
        "pipeline; vptree/bktree = metric trees; fuzzymatch = FMS top-k)",
    )
    search.add_argument(
        "--processes",
        type=int,
        help="fan the query batch out over the shared worker pool "
        "(pool-shared snapshot; results identical)",
    )
    _add_backend_argument(search)
    search.set_defaults(func=_cmd_search)

    tune = sub.add_parser("tune", help="search (T, M) on a ring corpus")
    tune.add_argument("--background", type=int, default=100)
    tune.add_argument("--rings", type=int, default=5)
    tune.add_argument("--ring-size", type=int, default=4)
    tune.add_argument("--beta", type=float, default=1.0)
    tune.add_argument("--seed", type=int, default=0)
    tune.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
