"""Tokenizers mapping raw strings to :class:`TokenizedString`.

The paper's evaluation tokenizes account names "using whitespaces and
punctuation characters" (Sec. V).  :class:`Tokenizer` reproduces that
behaviour and adds the usual normalisation knobs (case folding, minimum
token length) a production pipeline needs.
"""

from __future__ import annotations

import re
import string
from dataclasses import dataclass, field

from repro.tokenize.tokenized_string import TokenizedString

_DEFAULT_SEPARATOR_PATTERN = re.compile(
    "[" + re.escape(string.whitespace + string.punctuation) + "]+"
)


@dataclass(frozen=True)
class Tokenizer:
    """Splits a string into tokens on whitespace and punctuation.

    Parameters
    ----------
    lowercase:
        Fold tokens to lower case.  Defaults to ``True`` -- adversarial name
        edits routinely toggle case, and the paper's distance operates on
        token content, not presentation.
    min_token_length:
        Drop tokens shorter than this many characters (0 keeps everything).
        Useful for discarding stray initials in noisy corpora.
    extra_separators:
        Additional characters to treat as token separators.
    """

    lowercase: bool = True
    min_token_length: int = 0
    extra_separators: str = ""
    _pattern: re.Pattern = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.extra_separators:
            pattern = re.compile(
                "["
                + re.escape(
                    string.whitespace + string.punctuation + self.extra_separators
                )
                + "]+"
            )
        else:
            pattern = _DEFAULT_SEPARATOR_PATTERN
        object.__setattr__(self, "_pattern", pattern)

    def __call__(self, text: str) -> TokenizedString:
        return self.tokenize(text)

    def tokenize(self, text: str) -> TokenizedString:
        """Tokenize ``text`` into a :class:`TokenizedString`."""
        if self.lowercase:
            text = text.lower()
        tokens = (token for token in self._pattern.split(text) if token)
        if self.min_token_length > 0:
            tokens = (token for token in tokens if len(token) >= self.min_token_length)
        return TokenizedString(tokens)


#: Module-level default tokenizer matching the paper's evaluation setup.
DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> TokenizedString:
    """Tokenize with the default whitespace+punctuation tokenizer."""
    return DEFAULT_TOKENIZER.tokenize(text)
