"""The :class:`TokenizedString` value type.

A tokenized string ``x^t = {x^t1, ..., x^tm}`` is a finite *multiset* of
tokens (Sec. II-A of the paper).  Duplicate tokens are permitted and
significant: ``{"ann", "ann"}`` differs from ``{"ann"}``.

The class is immutable and hashable so instances can be used as MapReduce
keys and set members.  It caches the statistics the TSJ filters need:

* ``aggregate_length`` -- ``L(x^t)``, the sum of token lengths;
* ``token_count``      -- ``T(x^t)``, the number of tokens;
* ``length_histogram`` -- a mapping ``token length -> multiplicity`` used by
  the distance-lower-bound filter (Sec. III-E.2).

The multiset views (``length_histogram``, ``token_multiset``,
``distinct_tokens``) are built lazily on first access and cached: the TSJ
fan-out jobs touch every record once per pipeline stage, and rebuilding a
Counter/frozenset per stage dominated their map-side allocation.
``length_histogram`` returns a read-only mapping proxy over the cached
dict; ``token_multiset`` hands out a cheap per-call copy of the cached
Counter (so callers may still mutate their result, as before).
"""

from __future__ import annotations

from collections import Counter
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping


class TokenizedString:
    """An immutable multiset of string tokens.

    Tokens are stored in sorted order so that two tokenized strings with the
    same multiset of tokens compare and hash equal regardless of the order in
    which tokens were supplied.

    Parameters
    ----------
    tokens:
        Any iterable of tokens.  Empty tokens are dropped on construction:
        the set-level edits ``AddEmptyToken`` / ``RemoveEmptyToken`` are free
        (Def. 3), so empty tokens never change any distance and keeping them
        would only distort ``T(.)``.
    """

    __slots__ = (
        "_tokens",
        "_aggregate_length",
        "_hash",
        "_histogram",
        "_multiset",
        "_distinct",
    )

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        cleaned = sorted(token for token in tokens if token)
        object.__setattr__(self, "_tokens", tuple(cleaned))
        object.__setattr__(
            self, "_aggregate_length", sum(len(token) for token in cleaned)
        )
        object.__setattr__(self, "_hash", hash(self._tokens))
        # Lazily-built cached views (see the module docstring).
        object.__setattr__(self, "_histogram", None)
        object.__setattr__(self, "_multiset", None)
        object.__setattr__(self, "_distinct", None)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _from_canonical(cls, tokens: tuple[str, ...]) -> "TokenizedString":
        """Trusted constructor for already-canonical token tuples.

        ``tokens`` must be sorted and hold no empty strings -- the
        invariants ``__init__`` establishes.  The snapshot decoder uses
        this to skip the clean-and-sort pass on rows it has already
        validated; everyone else should construct normally.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "_tokens", tokens)
        object.__setattr__(self, "_aggregate_length", sum(map(len, tokens)))
        object.__setattr__(self, "_hash", hash(tokens))
        object.__setattr__(self, "_histogram", None)
        object.__setattr__(self, "_multiset", None)
        object.__setattr__(self, "_distinct", None)
        return self

    @classmethod
    def from_text(cls, text: str, separator: str | None = None) -> "TokenizedString":
        """Build from raw text using naive whitespace splitting.

        This is a convenience for tests and examples; real pipelines should
        use :class:`repro.tokenize.Tokenizer`, which also strips punctuation.
        """
        return cls(text.split(separator))

    # -- multiset protocol ----------------------------------------------------

    @property
    def tokens(self) -> tuple[str, ...]:
        """The tokens in canonical (sorted) order."""
        return self._tokens

    @property
    def token_count(self) -> int:
        """``T(x^t)`` -- the number of tokens."""
        return len(self._tokens)

    @property
    def aggregate_length(self) -> int:
        """``L(x^t)`` -- the total number of characters over all tokens."""
        return self._aggregate_length

    @property
    def length_histogram(self) -> Mapping[int, int]:
        """Histogram mapping each token length to its multiplicity.

        TSJ ships this histogram with each tokenized-string id so reducers
        can compute SLD lower bounds without materialising the tokens
        (Sec. III-E.2).  Cached after the first access and returned as a
        read-only mapping proxy (mutation raises ``TypeError``).
        """
        histogram = self._histogram
        if histogram is None:
            histogram = MappingProxyType(
                dict(Counter(len(token) for token in self._tokens))
            )
            object.__setattr__(self, "_histogram", histogram)
        return histogram

    def token_multiset(self) -> Counter:
        """The tokens as a :class:`collections.Counter` multiset.

        The Counter is built once and cached; each call returns a shallow
        copy (``O(distinct tokens)``, no re-hashing of the token strings)
        so callers may mutate their result safely.
        """
        multiset = self._multiset
        if multiset is None:
            multiset = Counter(self._tokens)
            object.__setattr__(self, "_multiset", multiset)
        return multiset.copy()

    def distinct_tokens(self) -> frozenset[str]:
        """The distinct token values (multiplicity discarded).

        Cached after the first access (frozensets are immutable anyway).
        """
        distinct = self._distinct
        if distinct is None:
            distinct = frozenset(self._tokens)
            object.__setattr__(self, "_distinct", distinct)
        return distinct

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: object) -> bool:
        return token in self._tokens

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TokenizedString):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "TokenizedString") -> bool:
        if not isinstance(other, TokenizedString):
            return NotImplemented
        return self._tokens < other._tokens

    def __repr__(self) -> str:
        return f"TokenizedString({list(self._tokens)!r})"

    def __str__(self) -> str:
        return " ".join(self._tokens)

    # -- immutability ---------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TokenizedString is immutable")

    def __reduce__(self):
        return (TokenizedString, (list(self._tokens),))
