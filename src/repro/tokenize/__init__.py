"""Tokenizers and the :class:`TokenizedString` value type.

The paper (Sec. II-A) models a *tokenized string* as a finite multiset of
tokens produced by a tokenizer ``t(.)``.  This package provides:

* :class:`TokenizedString` -- an immutable multiset of tokens that caches the
  aggregate token length ``L(.)``, the token count ``T(.)`` and the
  token-length histogram used by TSJ's lower-bound filter (Sec. III-E.2).
* :class:`Tokenizer` -- configurable splitting on whitespace and punctuation,
  mirroring the evaluation setup ("names were tokenized using whitespaces and
  punctuation characters", Sec. V).
"""

from repro.tokenize.tokenized_string import TokenizedString
from repro.tokenize.tokenizer import Tokenizer, tokenize

__all__ = ["TokenizedString", "Tokenizer", "tokenize"]
