"""Join-parameter tuning: the footnote-5 search over (T, M).

The paper (Sec. V, footnote 5): "Typically, for each major geo-location, a
gradient descent search is performed to set these parameters.  At each
gradient descent evaluation, a sample of the clusters is evaluated by the
operations team ... and the rates of true positives and the false
positives are computed.  The values of 0.1 and 1,000 constitute a
reasonable starting point for the search."

We reproduce that loop with a labelled sample standing in for the
operations team: :func:`tune_parameters` performs a coordinate-descent
search over a (T, M) grid, scoring each candidate by the F-beta of the
pairs a TSJ run discovers against the labelled ground-truth pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analysis.recall import join_quality
from repro.tokenize import TokenizedString


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a parameter search."""

    threshold: float
    max_token_frequency: int | None
    score: float
    evaluations: int
    #: (T, M, score) of every configuration evaluated, in visit order.
    trace: tuple[tuple[float, int | None, float], ...]


def _fbeta(precision: float, recall: float, beta: float) -> float:
    if precision == 0 and recall == 0:
        return 0.0
    b2 = beta * beta
    denominator = b2 * precision + recall
    if denominator == 0:
        return 0.0
    return (1 + b2) * precision * recall / denominator


def tune_parameters(
    records: Sequence[TokenizedString],
    truth_pairs: Iterable[tuple[int, int]],
    thresholds: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.25),
    max_frequencies: Sequence[int | None] = (50, 100, 500, 1000, None),
    beta: float = 1.0,
    start: tuple[float, int | None] = (0.1, 1000),
    run_join: Callable | None = None,
) -> TuningResult:
    """Coordinate-descent search for the best (T, M) against labelled pairs.

    Starting from the paper's recommended point (0.1, 1000), alternately
    optimises ``T`` with ``M`` fixed and ``M`` with ``T`` fixed until a
    full sweep improves nothing.  The objective is the F-beta of the TSJ
    result's pairs against ``truth_pairs`` (beta > 1 favours recall, as an
    abuse team catching rings would; beta < 1 favours precision, as a
    data-cleaning deployment would).

    Parameters
    ----------
    run_join:
        Override the evaluation function (signature
        ``run_join(records, threshold, max_frequency) -> set[pair]``);
        defaults to a TSJ self-join on a small simulated cluster.

    Returns the best configuration with its full evaluation trace.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    threshold_grid = sorted(set(thresholds))
    frequency_grid = list(dict.fromkeys(max_frequencies))
    if not threshold_grid or not frequency_grid:
        raise ValueError("parameter grids must be non-empty")
    truth = set(truth_pairs)

    if run_join is None:

        def run_join(records, threshold, max_frequency):
            from repro.mapreduce import ClusterConfig, MapReduceEngine
            from repro.tsj import TSJ, TSJConfig

            engine = MapReduceEngine(ClusterConfig(n_machines=4))
            config = TSJConfig(threshold=threshold, max_token_frequency=max_frequency)
            return TSJ(config, engine).self_join(records).pairs

    cache: dict[tuple[float, int | None], float] = {}
    trace: list[tuple[float, int | None, float]] = []

    def score(threshold: float, max_frequency: int | None) -> float:
        key = (threshold, max_frequency)
        if key not in cache:
            pairs = run_join(records, threshold, max_frequency)
            quality = join_quality(pairs, truth)
            cache[key] = _fbeta(quality.precision, quality.recall, beta)
            trace.append((threshold, max_frequency, cache[key]))
        return cache[key]

    best_threshold = min(threshold_grid, key=lambda t: abs(t - start[0]))
    best_frequency = start[1] if start[1] in frequency_grid else frequency_grid[-1]
    best_score = score(best_threshold, best_frequency)

    improved = True
    while improved:
        improved = False
        for candidate in threshold_grid:
            value = score(candidate, best_frequency)
            if value > best_score:
                best_score, best_threshold = value, candidate
                improved = True
        for candidate in frequency_grid:
            value = score(best_threshold, candidate)
            if value > best_score:
                best_score, best_frequency = value, candidate
                improved = True

    return TuningResult(
        threshold=best_threshold,
        max_token_frequency=best_frequency,
        score=best_score,
        evaluations=len(cache),
        trace=tuple(trace),
    )
