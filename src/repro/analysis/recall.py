"""Join-quality metrics: precision and recall of discovered pairs.

Sec. V-B measures approximation quality as *recall*: "the ratio between
the number of the discovered pairs to the number of pairs discovered by
fuzzy-token-matching" -- precision stays 1.0 by construction because every
approximation only loses candidates before an exact verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


def _normalise(pairs: Iterable[tuple[int, int]]) -> set[tuple[int, int]]:
    return {(a, b) if a < b else (b, a) for a, b in pairs}


def pair_recall(
    found: Iterable[tuple[int, int]], reference: Iterable[tuple[int, int]]
) -> float:
    """``|found ∩ reference| / |reference|`` over unordered pairs.

    Returns 1.0 when the reference is empty (nothing to miss).

    Examples
    --------
    >>> pair_recall([(1, 0)], [(0, 1), (2, 3)])
    0.5
    """
    reference_set = _normalise(reference)
    if not reference_set:
        return 1.0
    return len(_normalise(found) & reference_set) / len(reference_set)


@dataclass(frozen=True)
class JoinQuality:
    """Precision/recall summary of one join run against a reference."""

    precision: float
    recall: float
    found: int
    reference: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def join_quality(
    found: Iterable[tuple[int, int]], reference: Iterable[tuple[int, int]]
) -> JoinQuality:
    """Full precision/recall report of ``found`` vs ``reference``.

    Examples
    --------
    >>> join_quality([(0, 1)], [(0, 1), (2, 3)])
    JoinQuality(precision=1.0, recall=0.5, found=1, reference=2)
    """
    found_set = _normalise(found)
    reference_set = _normalise(reference)
    intersection = len(found_set & reference_set)
    precision = intersection / len(found_set) if found_set else 1.0
    recall = intersection / len(reference_set) if reference_set else 1.0
    return JoinQuality(
        precision=precision,
        recall=recall,
        found=len(found_set),
        reference=len(reference_set),
    )
