"""Similarity-graph clustering: from similar pairs to fraud rings.

Sec. I-A's pipeline: similar account pairs become edges of a similarity
graph; the graph is clustered; clusters flag potential rings.  We cluster
with connected components (union-find) -- the natural choice when edges
already encode "suspiciously similar" -- and report how well the detected
clusters recover planted ground-truth rings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


class _UnionFind:
    """Path-halving union-find over integer ids."""

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self.parent.setdefault(item, item)
        while parent != item:
            grandparent = self.parent[parent]
            self.parent[item] = grandparent
            item, parent = parent, self.parent.setdefault(grandparent, grandparent)
        return item

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Attach the larger root id under the smaller for determinism.
            if root_a < root_b:
                self.parent[root_b] = root_a
            else:
                self.parent[root_a] = root_b


def cluster_pairs(
    pairs: Iterable[tuple[int, int]], min_size: int = 2
) -> list[set[int]]:
    """Connected components of the similarity graph.

    Parameters
    ----------
    pairs:
        Similar-pair edges (unordered).
    min_size:
        Smallest cluster to report (2 keeps every non-trivial component).

    Returns clusters sorted by (descending size, smallest member) for
    deterministic output.

    Examples
    --------
    >>> cluster_pairs([(0, 1), (1, 2), (5, 6)])
    [{0, 1, 2}, {5, 6}]
    """
    uf = _UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    components: dict[int, set[int]] = {}
    for node in list(uf.parent):
        components.setdefault(uf.find(node), set()).add(node)
    clusters = [nodes for nodes in components.values() if len(nodes) >= min_size]
    return sorted(clusters, key=lambda nodes: (-len(nodes), min(nodes)))


@dataclass(frozen=True)
class RingDetectionReport:
    """How well detected clusters recover planted rings."""

    rings_total: int
    rings_detected: int
    members_total: int
    members_recovered: int
    clusters: int

    @property
    def ring_recall(self) -> float:
        """Fraction of planted rings with >= 2 members in one cluster."""
        if self.rings_total == 0:
            return 1.0
        return self.rings_detected / self.rings_total

    @property
    def member_recall(self) -> float:
        if self.members_total == 0:
            return 1.0
        return self.members_recovered / self.members_total


def to_networkx(pairs: Iterable[tuple[int, int]], distances=None):
    """Export the similarity graph to a ``networkx.Graph``.

    Edges carry a ``distance`` attribute when ``distances`` (a mapping
    from unordered pairs) is supplied.  Useful for plugging richer
    clustering algorithms than connected components into the Sec. I-A
    pipeline.  Requires the optional ``networkx`` dependency.
    """
    import networkx as nx

    graph = nx.Graph()
    for a, b in pairs:
        key = (a, b) if a < b else (b, a)
        if distances is not None and key in distances:
            graph.add_edge(a, b, distance=distances[key])
        else:
            graph.add_edge(a, b)
    return graph


def ring_detection_report(
    clusters: Sequence[set[int]], rings: Sequence[set[int]]
) -> RingDetectionReport:
    """Score detected ``clusters`` against planted ground-truth ``rings``.

    A ring counts as *detected* when at least two of its members land in
    the same cluster (one similar pair suffices to link accounts for
    manual investigation); *recovered members* counts ring members placed
    in a cluster containing at least one other member of their ring.
    """
    detected = 0
    recovered = 0
    for ring in rings:
        best_overlap = 0
        for cluster in clusters:
            overlap = len(ring & cluster)
            if overlap > best_overlap:
                best_overlap = overlap
        if best_overlap >= 2:
            detected += 1
            recovered += best_overlap
    return RingDetectionReport(
        rings_total=len(rings),
        rings_detected=detected,
        members_total=sum(len(ring) for ring in rings),
        members_recovered=recovered,
        clusters=len(clusters),
    )
