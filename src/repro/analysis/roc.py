"""ROC curves for distance-based fraud prediction (Sec. V-D / Fig. 6).

Accounts are scored by the distance between their old and new names;
larger distances indicate fraud ("assuming the correlation between the
magnitude of the name change and the likelihood of fraud").  Sweeping the
decision threshold over the observed scores traces the ROC curve; the area
under it summarises how well a distance measure separates the classes.
"""

from __future__ import annotations

from typing import Sequence


def roc_curve(
    scores: Sequence[float], labels: Sequence[bool]
) -> tuple[list[float], list[float], list[float]]:
    """ROC curve of a score that is *higher for positives*.

    Parameters
    ----------
    scores:
        Predicted scores (here: name-change distances).
    labels:
        ``True`` for positive (fraudulent) instances.

    Returns
    -------
    (fpr, tpr, thresholds):
        Parallel lists tracing the curve from (0, 0) to (1, 1), one point
        per distinct score threshold (descending).

    Examples
    --------
    >>> fpr, tpr, _ = roc_curve([0.9, 0.8, 0.3, 0.1], [True, True, False, False])
    >>> (fpr[-1], tpr[-1])
    (1.0, 1.0)
    """
    if len(scores) != len(labels):
        raise ValueError("scores and labels must align")
    if not scores:
        return [0.0], [0.0], [float("inf")]
    n_positive = sum(1 for label in labels if label)
    n_negative = len(labels) - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("need both classes for a ROC curve")

    ranked = sorted(zip(scores, labels), key=lambda item: -item[0])
    fpr = [0.0]
    tpr = [0.0]
    thresholds = [float("inf")]
    true_positives = false_positives = 0
    index = 0
    while index < len(ranked):
        threshold = ranked[index][0]
        # Consume all instances tied at this score before emitting a point.
        while index < len(ranked) and ranked[index][0] == threshold:
            if ranked[index][1]:
                true_positives += 1
            else:
                false_positives += 1
            index += 1
        fpr.append(false_positives / n_negative)
        tpr.append(true_positives / n_positive)
        thresholds.append(threshold)
    return fpr, tpr, thresholds


def auc(fpr: Sequence[float], tpr: Sequence[float]) -> float:
    """Area under a ROC curve by the trapezoid rule.

    Examples
    --------
    >>> auc([0.0, 0.0, 1.0], [0.0, 1.0, 1.0])
    1.0
    >>> auc([0.0, 1.0], [0.0, 1.0])
    0.5
    """
    if len(fpr) != len(tpr) or len(fpr) < 2:
        raise ValueError("need at least two aligned curve points")
    area = 0.0
    for i in range(1, len(fpr)):
        width = fpr[i] - fpr[i - 1]
        area += width * (tpr[i] + tpr[i - 1]) / 2.0
    return area
