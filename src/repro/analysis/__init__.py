"""Evaluation analytics: ROC curves, join recall, and ring clustering.

* :mod:`repro.analysis.roc` -- ROC curves and AUC for distance-based fraud
  prediction (Sec. V-D / Fig. 6).
* :mod:`repro.analysis.recall` -- precision/recall of a join result
  against an oracle or a reference run (Sec. V-B / Figs. 4-5).
* :mod:`repro.analysis.graphs` -- the similarity-graph clustering of
  Sec. I-A: similar-pair edges, connected components, ring detection
  quality.
"""

from repro.analysis.graphs import cluster_pairs, ring_detection_report
from repro.analysis.recall import join_quality, pair_recall
from repro.analysis.roc import auc, roc_curve

__all__ = [
    "roc_curve",
    "auc",
    "pair_recall",
    "join_quality",
    "cluster_pairs",
    "ring_detection_report",
]
