"""The shared worker pool behind every multiprocessing fast path.

PR 1's batched verification (:func:`repro.accel.verify_pairs`) and the
parallel MapReduce engine (:mod:`repro.runtime.parallel`) both fan work
out over OS processes.  Spawning a fresh ``multiprocessing.Pool`` per
call would pay fork + import costs on every job of a TSJ pipeline (ten
jobs per join), so this module keeps **one** process-wide pool that all
runtime layers share: shuffle workers and verification workers are the
same processes.

The pool is created lazily on first use, grows (by replacement) when a
caller asks for more workers than it has, and is torn down at interpreter
exit.  Pool worker processes are daemonic and must not create pools of
their own; :func:`in_worker_process` lets callers detect that situation
and fall back to in-process execution instead of crashing.

Fault tolerance
---------------

A killed worker (OOM, a crashing native kernel, an injected fault from
:mod:`repro.faults`) must not take the whole run down -- the
MapReduce-era systems this repo reproduces treat task re-execution
after worker failure as table stakes.  :func:`resilient_pool_map` is
the dispatch API every runtime layer fans out through:

* the live pool is **probed on checkout** (a terminated or
  generation-stale pool is replaced before dispatch);
* while a job is in flight the worker set is **monitored** -- a worker
  death (pid set change, a dead ``exitcode``) or broken pool plumbing
  (``BrokenPipeError``/``OSError`` on the result channel) raises
  :class:`PoolBrokenError` instead of hanging forever;
* the broken pool is torn down and **rebuilt** (registered initializers
  re-run, so published snapshots and fault plans survive) and the whole
  shard batch is **retried** a bounded number of times;
* when retries are exhausted the batch **degrades to in-process
  execution** of the identical chunk functions -- byte-identical
  results, no pool.

Recovery is observable: :func:`runtime_counters` reports
``pool_rebuilds`` / ``shard_retries`` / ``pool_degraded``, which the
HTTP service surfaces under ``/v1/metrics`` and as degraded-mode flags
in ``/v1/health``.  An ambient request deadline
(:mod:`repro.runtime.deadline`) is honored between monitor ticks, so an
expired request abandons its in-flight shards cleanly.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import os
import threading
from typing import Any, Callable, Sequence

from repro.runtime.deadline import check_deadline

_POOL: multiprocessing.pool.Pool | None = None
_POOL_SIZE: int = 0

#: Worker initializers, keyed so re-registration replaces (rather than
#: accumulates) state for the same publisher.  Each entry runs once in
#: every worker at pool start-up: under the ``fork`` start method the
#: arguments are inherited copy-on-write, under ``spawn``/``forkserver``
#: they are pickled to each worker exactly once -- the explicit
#: broadcast fallback used by the snapshot-sharing layer
#: (:mod:`repro.service.sharing`).
_INITIALIZERS: dict[str, tuple[Callable, tuple]] = {}
#: Bumped on every (re-)registration; a live pool built under an older
#: generation is replaced on the next :func:`shared_pool` call so its
#: workers pick the new state up.
_INIT_GENERATION: int = 0
_POOL_GENERATION: int = -1


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, always >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux / restricted platforms
        return max(1, os.cpu_count() or 1)


def default_worker_count() -> int:
    """Default parallelism: one worker per usable CPU."""
    return available_cpus()


def fork_is_default() -> bool:
    """Whether this platform forks workers by default.

    Under the ``spawn`` and ``forkserver`` start methods (macOS and
    Windows; Linux defaults to forkserver from Python 3.14) child
    processes re-import ``__main__``, so pool creation from an unguarded
    script crashes — forkserver is deliberately *not* treated as safe
    here: its workers re-run ``__main__`` just like spawn's (verified
    empirically; the ``__main__``-guard requirement in the
    :mod:`multiprocessing` programming guidelines covers both).
    ``"auto"`` engine resolution therefore only opts into parallelism
    where ``fork`` is the default.  Explicitly requesting
    ``engine="parallel"`` works everywhere, subject to the standard
    ``if __name__ == "__main__"`` guard on spawn/forkserver platforms.

    When no start method has been set yet, the platform default is read
    from ``get_all_start_methods()`` (its first element is documented to
    be the default: ``fork`` on Linux, ``spawn`` on macOS/Windows)
    rather than by resolving ``get_start_method()``, which would pin the
    global context and break a host application's later
    ``set_start_method()`` call.
    """
    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:
        method = multiprocessing.get_all_start_methods()[0]
    return method == "fork"


def in_worker_process() -> bool:
    """Whether the caller already runs inside a pool worker.

    Pool workers are daemonic and cannot create child processes; nested
    fan-out must run in-process instead.
    """
    return multiprocessing.current_process().daemon


def _bootstrap_worker(entries: tuple[tuple[Callable, tuple], ...]) -> None:
    """Pool-worker entry point: run every registered initializer once."""
    for initializer, args in entries:
        initializer(*args)


def register_worker_initializer(
    key: str, initializer: Callable, args: tuple = ()
) -> None:
    """Run ``initializer(*args)`` in every worker of the shared pool.

    Registration under an existing ``key`` replaces the previous entry,
    so a publisher refreshing its state (e.g. a snapshot re-published
    after an append) does not accumulate stale payloads.  A live pool
    created before the registration is replaced on the next
    :func:`shared_pool` call -- that rebuild is what broadcasts the new
    state to every worker on spawn/forkserver platforms, and what makes
    fork workers re-inherit the parent's memory (copy-on-write, no
    pickling) on fork platforms.
    """
    global _INIT_GENERATION
    _INITIALIZERS[key] = (initializer, args)
    _INIT_GENERATION += 1


def unregister_worker_initializer(key: str) -> None:
    """Drop a registration (no-op when absent); frees the held payload."""
    global _INIT_GENERATION
    if _INITIALIZERS.pop(key, None) is not None:
        _INIT_GENERATION += 1


def _pool_is_serviceable(pool: multiprocessing.pool.Pool) -> bool:
    """Checkout probe: can this pool still accept a dispatch?

    A pool that was terminated (by a crash-recovery rebuild racing this
    checkout, or a stray ``terminate()``) rejects new jobs; detecting it
    here turns a confusing ``ValueError: Pool not running`` at dispatch
    into a silent replacement.  ``_state`` is stdlib-private but stable
    across every supported CPython (the pool's own ``apply_async`` guard
    reads it the same way).
    """
    return getattr(pool, "_state", multiprocessing.pool.RUN) == (
        multiprocessing.pool.RUN
    )


def shared_pool(processes: int | None = None) -> multiprocessing.pool.Pool:
    """The process-wide worker pool, created (or grown) on demand.

    Parameters
    ----------
    processes:
        Minimum number of workers the caller needs; ``None`` means the
        CPU count.  A request larger than the live pool replaces it with
        a bigger one; a smaller request reuses the existing pool (extra
        workers just idle), so alternating callers do not thrash pools.

    Growth replaces the pool via ``terminate()``, so the returned object
    must not be cached across ``shared_pool()`` calls: re-fetch it per
    use (as all in-tree callers do).  A held reference may point at a
    terminated pool after another caller requests a larger size.
    """
    global _POOL, _POOL_SIZE, _POOL_GENERATION
    if in_worker_process():
        raise RuntimeError(
            "shared_pool() called from inside a pool worker; "
            "guard call sites with in_worker_process()"
        )
    wanted = processes if processes and processes > 0 else default_worker_count()
    if _POOL is not None and (
        _POOL_SIZE < wanted
        or _POOL_GENERATION != _INIT_GENERATION
        or not _pool_is_serviceable(_POOL)
    ):
        # An initializer-driven rebuild keeps the pool grow-only: a small
        # request must not shrink a pool a larger consumer already paid
        # for (that would just thrash pools between alternating callers).
        wanted = max(wanted, _POOL_SIZE)
        shutdown_shared_pool()
    if _POOL is None:
        _POOL = multiprocessing.Pool(
            processes=wanted,
            initializer=_bootstrap_worker,
            initargs=(tuple(_INITIALIZERS.values()),),
        )
        _POOL_SIZE = wanted
        _POOL_GENERATION = _INIT_GENERATION
    return _POOL


def shared_pool_size() -> int:
    """Workers in the live shared pool (0 when no pool exists yet)."""
    return _POOL_SIZE if _POOL is not None else 0


def shutdown_shared_pool(join_timeout: float = 5.0) -> None:
    """Tear the shared pool down (tests, run boundaries, interpreter exit).

    Safe to call when no pool exists; the next :func:`shared_pool` call
    lazily creates a fresh one.  Resilient to a *broken* pool: teardown
    of a corpse (workers SIGKILLed, handler threads wedged) runs on a
    daemon thread bounded by ``join_timeout``, so this function -- which
    is also the :mod:`atexit` hook -- can neither raise nor hang
    interpreter exit.
    """
    global _POOL, _POOL_SIZE
    pool, _POOL, _POOL_SIZE = _POOL, None, 0
    if pool is None:
        return

    def _teardown() -> None:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # noqa: BLE001 -- a corpse may fail arbitrarily
            pass

    reaper = threading.Thread(
        target=_teardown, name="repro-pool-teardown", daemon=True
    )
    reaper.start()
    reaper.join(join_timeout)


atexit.register(shutdown_shared_pool)


# -- crash recovery ----------------------------------------------------------


class PoolBrokenError(RuntimeError):
    """The shared pool lost a worker (or its plumbing) mid-job.

    Raised by :func:`pool_map` when worker death or a broken result
    channel is detected; :func:`resilient_pool_map` absorbs it by
    rebuilding the pool and retrying.
    """


#: Retries of a whole shard batch before degrading to in-process
#: execution (2 retries = up to 3 pooled attempts).
MAX_SHARD_RETRIES = 2

#: Seconds between worker-liveness checks while a pooled job is in
#: flight; also the granularity of deadline enforcement mid-dispatch.
POOL_MONITOR_INTERVAL = 0.02

_COUNTERS = {
    "pool_rebuilds": 0,
    "shard_retries": 0,
    "pool_degraded": 0,
    "store_rebuilds": 0,
}
_COUNTER_LOCK = threading.Lock()


def _bump(name: str, by: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += by


def runtime_counters() -> dict[str, int]:
    """Crash-recovery counters: ``pool_rebuilds`` (pools replaced after a
    failure), ``shard_retries`` (whole-batch re-dispatches),
    ``pool_degraded`` (batches that fell back to in-process execution)
    and ``store_rebuilds`` (durable-index loads that degraded to a full
    rebuild from the corpus).  Served under ``/v1/metrics`` and
    summarised as degraded-mode flags in ``/v1/health``."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_runtime_counters() -> None:
    """Zero the recovery counters (test isolation, bench boundaries)."""
    with _COUNTER_LOCK:
        for name in _COUNTERS:
            _COUNTERS[name] = 0


def _worker_snapshot(pool: multiprocessing.pool.Pool) -> tuple:
    """The live worker pid set (private API, stable across CPythons)."""
    workers = getattr(pool, "_pool", None) or ()
    return tuple(sorted(worker.pid for worker in workers))


def _workers_died(pool: multiprocessing.pool.Pool, baseline: tuple) -> bool:
    workers = getattr(pool, "_pool", None) or ()
    if any(worker.exitcode is not None for worker in workers):
        return True
    # The pool's maintenance thread replaces dead workers quickly; a pid
    # set that changed since dispatch means a death was already papered
    # over -- but the dead worker's tasks are lost either way.
    return _worker_snapshot(pool) != baseline


def pool_map(
    func: Callable,
    payloads: Sequence,
    processes: int | None = None,
    *,
    poll_seconds: float = POOL_MONITOR_INTERVAL,
) -> list:
    """``shared_pool(processes).map`` with worker-death detection.

    ``multiprocessing.Pool`` silently hangs when a worker is killed
    mid-task (the in-flight task is simply lost), so the blocking wait
    is replaced by a monitor loop: dispatch asynchronously, then poll
    for completion, worker deaths and the ambient request deadline.
    Worker-raised exceptions propagate unchanged (they are the *task's*
    failure, not the pool's); transport-shaped failures raise
    :class:`PoolBrokenError`.
    """
    pool = shared_pool(processes)
    try:
        pending = pool.map_async(func, payloads)
    except Exception as exc:
        raise PoolBrokenError(f"pool dispatch failed: {exc}") from exc
    baseline = _worker_snapshot(pool)
    while True:
        try:
            return pending.get(timeout=poll_seconds)
        except multiprocessing.TimeoutError:
            pass
        except (BrokenPipeError, EOFError, ConnectionError, OSError) as exc:
            raise PoolBrokenError(f"pool result channel broke: {exc}") from exc
        check_deadline("waiting for pooled shard results")
        if not _pool_is_serviceable(pool) or _workers_died(pool, baseline):
            raise PoolBrokenError(
                "worker death detected mid-job "
                f"(workers at dispatch: {baseline})"
            )


def resilient_pool_map(
    func: Callable,
    payloads: Sequence,
    processes: int | None = None,
    *,
    retries: int = MAX_SHARD_RETRIES,
    label: str = "pool job",
) -> list[Any]:
    """Fan ``func`` over the shared pool, surviving worker crashes.

    The one dispatch API the runtime layers share (the parallel engine's
    map/reduce shards, ``verify_pairs`` chunks, pooled query serving).
    On :class:`PoolBrokenError` the pool is torn down (counted in
    ``pool_rebuilds``) and the whole batch retried -- chunk functions
    are pure, so re-execution is safe -- up to ``retries`` times; after
    that the batch runs **in-process** through the identical chunk
    functions (counted in ``pool_degraded``), so results stay
    byte-identical to both the pooled and the serial paths.  Calls
    already inside a pool worker run in-process immediately (nested
    fan-out is not allowed).  Deadline expiry and worker-raised
    exceptions propagate to the caller; only pool breakage is absorbed.
    """
    if in_worker_process():
        return [func(payload) for payload in payloads]
    for attempt in range(retries + 1):
        if attempt:
            _bump("shard_retries")
        try:
            return pool_map(func, payloads, processes)
        except PoolBrokenError:
            _bump("pool_rebuilds")
            shutdown_shared_pool()
    _bump("pool_degraded")
    check_deadline(f"degraded in-process execution of {label}")
    return [func(payload) for payload in payloads]
