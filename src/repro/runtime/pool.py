"""The shared worker pool behind every multiprocessing fast path.

PR 1's batched verification (:func:`repro.accel.verify_pairs`) and the
parallel MapReduce engine (:mod:`repro.runtime.parallel`) both fan work
out over OS processes.  Spawning a fresh ``multiprocessing.Pool`` per
call would pay fork + import costs on every job of a TSJ pipeline (ten
jobs per join), so this module keeps **one** process-wide pool that all
runtime layers share: shuffle workers and verification workers are the
same processes.

The pool is created lazily on first use, grows (by replacement) when a
caller asks for more workers than it has, and is torn down at interpreter
exit.  Pool worker processes are daemonic and must not create pools of
their own; :func:`in_worker_process` lets callers detect that situation
and fall back to in-process execution instead of crashing.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import os
from typing import Callable

_POOL: multiprocessing.pool.Pool | None = None
_POOL_SIZE: int = 0

#: Worker initializers, keyed so re-registration replaces (rather than
#: accumulates) state for the same publisher.  Each entry runs once in
#: every worker at pool start-up: under the ``fork`` start method the
#: arguments are inherited copy-on-write, under ``spawn``/``forkserver``
#: they are pickled to each worker exactly once -- the explicit
#: broadcast fallback used by the snapshot-sharing layer
#: (:mod:`repro.service.sharing`).
_INITIALIZERS: dict[str, tuple[Callable, tuple]] = {}
#: Bumped on every (re-)registration; a live pool built under an older
#: generation is replaced on the next :func:`shared_pool` call so its
#: workers pick the new state up.
_INIT_GENERATION: int = 0
_POOL_GENERATION: int = -1


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, always >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux / restricted platforms
        return max(1, os.cpu_count() or 1)


def default_worker_count() -> int:
    """Default parallelism: one worker per usable CPU."""
    return available_cpus()


def fork_is_default() -> bool:
    """Whether this platform forks workers by default.

    Under the ``spawn`` and ``forkserver`` start methods (macOS and
    Windows; Linux defaults to forkserver from Python 3.14) child
    processes re-import ``__main__``, so pool creation from an unguarded
    script crashes — forkserver is deliberately *not* treated as safe
    here: its workers re-run ``__main__`` just like spawn's (verified
    empirically; the ``__main__``-guard requirement in the
    :mod:`multiprocessing` programming guidelines covers both).
    ``"auto"`` engine resolution therefore only opts into parallelism
    where ``fork`` is the default.  Explicitly requesting
    ``engine="parallel"`` works everywhere, subject to the standard
    ``if __name__ == "__main__"`` guard on spawn/forkserver platforms.

    When no start method has been set yet, the platform default is read
    from ``get_all_start_methods()`` (its first element is documented to
    be the default: ``fork`` on Linux, ``spawn`` on macOS/Windows)
    rather than by resolving ``get_start_method()``, which would pin the
    global context and break a host application's later
    ``set_start_method()`` call.
    """
    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:
        method = multiprocessing.get_all_start_methods()[0]
    return method == "fork"


def in_worker_process() -> bool:
    """Whether the caller already runs inside a pool worker.

    Pool workers are daemonic and cannot create child processes; nested
    fan-out must run in-process instead.
    """
    return multiprocessing.current_process().daemon


def _bootstrap_worker(entries: tuple[tuple[Callable, tuple], ...]) -> None:
    """Pool-worker entry point: run every registered initializer once."""
    for initializer, args in entries:
        initializer(*args)


def register_worker_initializer(
    key: str, initializer: Callable, args: tuple = ()
) -> None:
    """Run ``initializer(*args)`` in every worker of the shared pool.

    Registration under an existing ``key`` replaces the previous entry,
    so a publisher refreshing its state (e.g. a snapshot re-published
    after an append) does not accumulate stale payloads.  A live pool
    created before the registration is replaced on the next
    :func:`shared_pool` call -- that rebuild is what broadcasts the new
    state to every worker on spawn/forkserver platforms, and what makes
    fork workers re-inherit the parent's memory (copy-on-write, no
    pickling) on fork platforms.
    """
    global _INIT_GENERATION
    _INITIALIZERS[key] = (initializer, args)
    _INIT_GENERATION += 1


def unregister_worker_initializer(key: str) -> None:
    """Drop a registration (no-op when absent); frees the held payload."""
    global _INIT_GENERATION
    if _INITIALIZERS.pop(key, None) is not None:
        _INIT_GENERATION += 1


def shared_pool(processes: int | None = None) -> multiprocessing.pool.Pool:
    """The process-wide worker pool, created (or grown) on demand.

    Parameters
    ----------
    processes:
        Minimum number of workers the caller needs; ``None`` means the
        CPU count.  A request larger than the live pool replaces it with
        a bigger one; a smaller request reuses the existing pool (extra
        workers just idle), so alternating callers do not thrash pools.

    Growth replaces the pool via ``terminate()``, so the returned object
    must not be cached across ``shared_pool()`` calls: re-fetch it per
    use (as all in-tree callers do).  A held reference may point at a
    terminated pool after another caller requests a larger size.
    """
    global _POOL, _POOL_SIZE, _POOL_GENERATION
    if in_worker_process():
        raise RuntimeError(
            "shared_pool() called from inside a pool worker; "
            "guard call sites with in_worker_process()"
        )
    wanted = processes if processes and processes > 0 else default_worker_count()
    if _POOL is not None and (
        _POOL_SIZE < wanted or _POOL_GENERATION != _INIT_GENERATION
    ):
        # An initializer-driven rebuild keeps the pool grow-only: a small
        # request must not shrink a pool a larger consumer already paid
        # for (that would just thrash pools between alternating callers).
        wanted = max(wanted, _POOL_SIZE)
        shutdown_shared_pool()
    if _POOL is None:
        _POOL = multiprocessing.Pool(
            processes=wanted,
            initializer=_bootstrap_worker,
            initargs=(tuple(_INITIALIZERS.values()),),
        )
        _POOL_SIZE = wanted
        _POOL_GENERATION = _INIT_GENERATION
    return _POOL


def shared_pool_size() -> int:
    """Workers in the live shared pool (0 when no pool exists yet)."""
    return _POOL_SIZE if _POOL is not None else 0


def shutdown_shared_pool() -> None:
    """Tear the shared pool down (tests, run boundaries, interpreter exit).

    Safe to call when no pool exists; the next :func:`shared_pool` call
    lazily creates a fresh one.
    """
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_shared_pool)
