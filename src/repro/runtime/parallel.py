"""A parallel executor for the simulated MapReduce cluster.

:class:`ParallelMapReduceEngine` runs the same jobs as the serial
:class:`repro.mapreduce.engine.MapReduceEngine`, but spreads the work
over OS processes from the shared runtime pool
(:mod:`repro.runtime.pool`):

* the **map phase** shards input records across workers along the
  simulated-mapper assignment (record ``index % n_machines``), so each
  simulated mapper -- and therefore each combiner buffer -- lives whole
  inside one worker;
* the **shuffle** is a real partitioned exchange: workers emit
  ``(key, value)`` pairs tagged with their position in the serial
  emission order, the parent merges the per-worker partitions and
  regroups values per key exactly as the serial engine's hash shuffle
  (``stable_hash(key) % n_machines``) would;
* the **reduce phase** shards reduce keys across workers along the
  simulated-reducer assignment, and the parent reassembles outputs in
  the serial engine's group order.

The emission-order tags are what makes the engine *provably* equivalent
rather than merely equivalent-up-to-reordering: outputs come back in the
identical list order, and the merged :class:`JobMetrics` -- per-machine
records, ops, shuffle bytes, task counts, ledgers, counters -- compare
equal (``==``) to a serial run, so every simulated runtime and every
``rebin`` sweep is byte-identical regardless of how many OS workers ran
the job.  The serial engine stays the oracle;
``tests/runtime/test_parallel_engine.py`` property-tests the equivalence
across worker counts.

Small inputs fall back to the serial path in-process (parallelism only
pays past ``min_parallel_records``), so the engine is safe as a default
even for tiny workloads.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Iterable

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.engine import (
    JobMetrics,
    JobResult,
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    estimate_size,
)
from repro.faults import fault_point
from repro.mapreduce.shuffle import SizeMemo
from repro.runtime.deadline import check_deadline
from repro.runtime.pool import (
    default_worker_count,
    in_worker_process,
    resilient_pool_map,
)

#: Below this many input records a job runs serially in-process: pool
#: dispatch and pickling would dominate any fan-out win.
DEFAULT_MIN_PARALLEL_RECORDS = 1024

#: An emission-order tag: ``(record_index, seq)`` without a combiner,
#: ``(simulated_mapper, seq)`` with one.  Tags sort in the serial
#: engine's global shuffle-emission order in both cases.
_Tag = tuple[int, int]


def _run_map_shard(
    payload: tuple[MapReduceJob, int, list[tuple[int, Any]]],
) -> dict[str, Any]:
    """Worker entry point: map (and combine) one shard of input records.

    The shard holds ``(index, record)`` pairs for complete simulated
    mappers, in input order.  Returns per-mapper metrics plus the
    worker's shuffle partition: for every key, the shuffled bytes, the
    first-emission tag, and the tagged values.
    """
    job, n_machines, shard = payload
    fault_point("engine.map")
    ctx = MapReduceContext()
    map_records: dict[int, int] = {}
    map_ops: dict[int, int] = {}
    combine_ops: dict[int, int] = {}
    ledger: list[tuple[int, int]] = []
    output_pairs = 0
    #: key -> [shuffle_bytes, first_tag, [(tag, value), ...]]
    partition: dict[Any, list] = {}

    phase_ops = 0

    def sink(ops: int) -> None:
        nonlocal phase_ops
        phase_ops += ops

    ctx._bind(sink)

    # The batched shuffle data path's size memo (see
    # repro.mapreduce.shuffle): identical accounted bytes, computed once
    # per distinct key/payload instead of once per emission.
    sizes = SizeMemo(estimate_size)

    def emit(key: Any, value: Any, tag: _Tag) -> None:
        nbytes = sizes.size(key) + sizes.size(value)
        entry = partition.get(key)
        if entry is None:
            partition[key] = [nbytes, tag, [(tag, value)]]
        else:
            entry[0] += nbytes
            entry[2].append((tag, value))

    use_combiner = job.has_combiner
    buffers: dict[int, dict[Any, list[Any]]] = {}

    for index, record in shard:
        mapper = index % n_machines
        map_records[mapper] = map_records.get(mapper, 0) + 1
        phase_ops = 0
        seq = 0
        for key, value in job.map(record, ctx):
            output_pairs += 1
            if use_combiner:
                buffers.setdefault(mapper, {}).setdefault(key, []).append(value)
            else:
                emit(key, value, (index, seq))
            seq += 1
        map_ops[mapper] = map_ops.get(mapper, 0) + phase_ops
        ledger.append((index, phase_ops))

    if use_combiner:
        for mapper in sorted(buffers):
            phase_ops = 0
            seq = 0
            for key, values in buffers[mapper].items():
                combined = job.combine(key, values, ctx)
                for value in combined if combined is not None else values:
                    emit(key, value, (mapper, seq))
                    seq += 1
            combine_ops[mapper] = combine_ops.get(mapper, 0) + phase_ops

    return {
        "map_records": map_records,
        "map_ops": map_ops,
        "combine_ops": combine_ops,
        "ledger": ledger,
        "output_pairs": output_pairs,
        "counters": ctx.counters,
        "partition": partition,
    }


def _run_reduce_shard(
    payload: tuple[MapReduceJob, list[tuple[Any, list[Any]]]],
) -> tuple[dict[Any, tuple[list[Any], int, int]], dict[str, int]]:
    """Worker entry point: reduce the groups of one shard of keys.

    Returns ``key -> (outputs, ops, n_values)`` plus the worker's
    counters; values arrive already merged in serial order.
    """
    job, groups = payload
    fault_point("engine.reduce")
    ctx = MapReduceContext()
    group_ops = 0

    def sink(ops: int) -> None:
        nonlocal group_ops
        group_ops += ops

    ctx._bind(sink)
    results: dict[Any, tuple[list[Any], int, int]] = {}
    for key, values in groups:
        group_ops = 0
        outputs = list(job.reduce(key, values, ctx))
        results[key] = (outputs, group_ops, len(values))
    return results, ctx.counters


def _merge_counters(target: dict[str, int], part: dict[str, int]) -> None:
    for name, value in part.items():
        target[name] = target.get(name, 0) + value


class ParallelMapReduceEngine(MapReduceEngine):
    """Executes jobs over worker processes; results equal the serial engine.

    Parameters
    ----------
    config:
        The simulated cluster (machine count, cost model) -- the same
        meaning as for :class:`MapReduceEngine`; the *simulated* size is
        independent of how many OS workers execute the job.
    processes:
        OS worker processes to fan out over; ``None`` means one per
        usable CPU.  The workers come from the shared runtime pool and
        are reused across jobs (and by ``verify_pairs``).
    min_parallel_records:
        Inputs smaller than this run serially in-process (identical
        results either way; pure dispatch-overhead heuristic).
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        processes: int | None = None,
        min_parallel_records: int = DEFAULT_MIN_PARALLEL_RECORDS,
    ) -> None:
        super().__init__(config)
        self.processes = processes
        self.min_parallel_records = min_parallel_records

    def run(self, job: MapReduceJob, records: Iterable[Any]) -> JobResult:
        records = list(records)
        n = self.n_machines
        workers = self.processes or default_worker_count()
        n_shards = min(workers, n, len(records))
        if (
            n_shards <= 1
            or len(records) < self.min_parallel_records
            # Pool workers are daemonic and cannot fan out further; a job
            # running inside one (nested engines) falls back to serial.
            or in_worker_process()
        ):
            return super().run(job, records)
        # ---- map phase: shard whole simulated mappers across workers ------
        # At most n_shards workers ever receive tasks; don't fork more.
        # Dispatch goes through resilient_pool_map: a worker death mid-
        # shard rebuilds the pool and re-runs the batch (shard functions
        # are pure), degrading to in-process execution when retries run
        # out -- identical outputs on every path.
        check_deadline("map phase dispatch")
        shards: list[list[tuple[int, Any]]] = [[] for _ in range(n_shards)]
        for index, record in enumerate(records):
            shards[(index % n) % n_shards].append((index, record))
        map_parts = resilient_pool_map(
            _run_map_shard,
            [(job, n, shard) for shard in shards if shard],
            n_shards,
            label="map shards",
        )

        metrics = JobMetrics(name=job.name, n_machines=n)
        metrics.map_records = [0] * n
        metrics.map_ops = [0] * n
        metrics.shuffle_bytes = [0] * n
        metrics.reduce_records = [0] * n
        metrics.reduce_ops = [0] * n
        metrics.reduce_tasks = [0] * n
        counters: dict[str, int] = {}

        ledger_entries: list[tuple[int, int]] = []
        #: key -> [shuffle_bytes, first_tag, [tagged value lists, per worker]]
        key_info: dict[Any, list] = {}
        for part in map_parts:
            for mapper, count in part["map_records"].items():
                metrics.map_records[mapper] += count
            for mapper, ops in part["map_ops"].items():
                metrics.map_ops[mapper] += ops
            for mapper, ops in part["combine_ops"].items():
                metrics.map_ops[mapper] += ops
                metrics.combine_ops_total += ops
            metrics.map_output_pairs += part["output_pairs"]
            ledger_entries.extend(part["ledger"])
            _merge_counters(counters, part["counters"])
            for key, (nbytes, first, tagged) in part["partition"].items():
                entry = key_info.get(key)
                if entry is None:
                    key_info[key] = [nbytes, first, [tagged]]
                else:
                    entry[0] += nbytes
                    if first < entry[1]:
                        entry[1] = first
                    entry[2].append(tagged)
        ledger_entries.sort()
        metrics.map_ledger = [ops for _, ops in ledger_entries]

        # ---- shuffle merge: regroup in serial emission order ---------------
        ordered_keys = sorted(key_info, key=lambda key: key_info[key][1])
        destinations: dict[Any, int] = {}
        groups: dict[Any, list[Any]] = {}
        for key in ordered_keys:
            nbytes, _, tagged_lists = key_info[key]
            if len(tagged_lists) == 1:
                tagged = tagged_lists[0]
            else:
                tagged = sorted(chain(*tagged_lists), key=lambda tv: tv[0])
            groups[key] = [value for _, value in tagged]
            destination = self.key_hash(key) % n
            destinations[key] = destination
            metrics.shuffle_bytes[destination] += nbytes
            metrics.reduce_ledger[key] = [0, 0, nbytes]

        # ---- reduce phase: shard whole simulated reducers across workers --
        check_deadline("reduce phase dispatch")
        reduce_shards: list[list[tuple[Any, list[Any]]]] = [[] for _ in range(n_shards)]
        for key in ordered_keys:
            reduce_shards[destinations[key] % n_shards].append((key, groups[key]))
        reduce_parts = resilient_pool_map(
            _run_reduce_shard,
            [(job, shard) for shard in reduce_shards if shard],
            n_shards,
            label="reduce shards",
        )
        results_by_key: dict[Any, tuple[list[Any], int, int]] = {}
        for results, part_counters in reduce_parts:
            results_by_key.update(results)
            _merge_counters(counters, part_counters)

        outputs: list[Any] = []
        for key in ordered_keys:
            key_outputs, group_ops, n_values = results_by_key[key]
            reducer = destinations[key]
            metrics.reduce_tasks[reducer] += 1
            metrics.reduce_records[reducer] += n_values
            metrics.reduce_ops[reducer] += group_ops
            ledger = metrics.reduce_ledger[key]
            ledger[0] += n_values
            ledger[1] += group_ops
            outputs.extend(key_outputs)

        metrics.output_records = len(outputs)
        metrics.counters = counters
        return JobResult(outputs=outputs, metrics=metrics)
