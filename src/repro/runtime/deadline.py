"""Request deadlines: a budget that travels with the call, not the spec.

A spec's optional ``deadline_ms`` is relative ("finish within 250ms");
what the execution layers need is the *absolute* expiry of the request
currently running on this thread.  :class:`Deadline` is that absolute
form, and a :mod:`contextvars` variable carries it implicitly from
:meth:`repro.api.Session.run` down into the MapReduce engines, the
pool dispatch loop and ``verify_pairs`` -- no signature changes, and
each server handler thread (or asyncio task) gets its own value.

Expiry is checked at **shard boundaries** -- before a job dispatches,
between poll ticks while a pool job is in flight, per verification
chunk -- so partial work is abandoned cleanly: no shard is half-merged,
and results that *are* returned are never deadline-dependent.  The
check raises the typed
:class:`~repro.api.errors.DeadlineExceededError`, which the HTTP layer
answers as a uniform 504 envelope.

This module is stdlib-only at import time (the error class loads
lazily), so every layer -- ``repro.mapreduce`` included, which sits
below the runtime -- can check deadlines without import cycles.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager

__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class Deadline:
    """An absolute expiry on the monotonic clock.

    Built from a relative budget (:meth:`from_ms`) at request admission;
    cheap enough to consult in dispatch loops (one clock read).
    """

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: float) -> None:
        self.expires_at = expires_at
        self.budget_ms = budget_ms

    @classmethod
    def from_ms(cls, budget_ms: float) -> "Deadline":
        """The deadline ``budget_ms`` milliseconds from now."""
        return cls(time.monotonic() + budget_ms / 1000.0, budget_ms)

    def remaining(self) -> float:
        """Seconds left (clamped to ``0.0`` once expired)."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, doing: str) -> None:
        """Raise the typed 504 error when the budget is spent.

        ``doing`` names the boundary for the error message ("map phase
        dispatch", "verification chunk", ...), so an expired request
        reports *where* its budget ran out.
        """
        if self.expired():
            from repro.api.errors import DeadlineExceededError

            raise DeadlineExceededError(
                f"deadline of {self.budget_ms:g}ms exceeded while {doing}; "
                "partial work abandoned"
            )

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_CURRENT: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline governing this thread's current request, if any."""
    return _CURRENT.get()


def check_deadline(doing: str) -> None:
    """Check the ambient deadline at a shard boundary (no-op without one)."""
    deadline = _CURRENT.get()
    if deadline is not None:
        deadline.check(doing)


@contextmanager
def deadline_scope(budget_ms: float | None):
    """Install a request deadline for the duration of the block.

    ``None`` leaves any ambient deadline untouched (a spec without
    ``deadline_ms`` running under an outer budget still honors it).
    """
    if budget_ms is None:
        yield None
        return
    deadline = Deadline.from_ms(budget_ms)
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
