"""Execution runtime: parallel engines and the shared worker pool.

The paper's scalability claims are about real clusters; the simulated
:class:`repro.mapreduce.MapReduceEngine` is single-threaded by design so
its metered costs stay deterministic.  This package adds the execution
layer that actually uses the machine's cores **without** giving up that
determinism:

* :mod:`repro.runtime.pool` -- one process-wide worker pool shared by
  the parallel engine and :func:`repro.accel.verify_pairs`, so shuffle
  workers and verification workers are the same processes;
* :mod:`repro.runtime.parallel` -- :class:`ParallelMapReduceEngine`,
  which shards map/combine/shuffle/reduce across the pool and merges
  per-worker :class:`JobMetrics` back into results that compare equal
  to a serial run.

Engine selection
----------------

Everything user-facing accepts ``engine``, mirroring PR 1's verification
``backend`` selector:

* ``"serial"``   -- the deterministic reference engine (the oracle);
* ``"parallel"`` -- the multiprocessing engine;
* ``"auto"``     -- ``"parallel"`` when more than one CPU is usable and
  the platform forks workers by default (Linux), else ``"serial"``; the
  conservative choice keeps unguarded scripts safe on spawn platforms
  (macOS/Windows), where ``"parallel"`` can still be requested
  explicitly under the standard ``__main__`` guard.  The default
  everywhere user-facing.

Both engines return identical outputs and identical metrics (property-
tested in ``tests/runtime/test_parallel_engine.py``), so the selector is
purely a wall-clock knob: simulated seconds never change.  Future native
kernels and true sharded deployments slot in behind the same selector.
"""

from __future__ import annotations

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.engine import MapReduceEngine
from repro.runtime.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.runtime.parallel import (
    DEFAULT_MIN_PARALLEL_RECORDS,
    ParallelMapReduceEngine,
)
from repro.runtime.pool import (
    MAX_SHARD_RETRIES,
    PoolBrokenError,
    available_cpus,
    default_worker_count,
    fork_is_default,
    in_worker_process,
    reset_runtime_counters,
    resilient_pool_map,
    runtime_counters,
    shared_pool,
    shared_pool_size,
    shutdown_shared_pool,
)

#: The accepted engine selectors, in documentation order.
ENGINES = ("auto", "serial", "parallel")


def resolve_engine(engine: str) -> str:
    """Normalise an engine selector to ``"serial"`` or ``"parallel"``.

    ``"auto"`` picks ``"parallel"`` when more than one CPU is usable and
    the platform defaults to ``fork`` worker start-up, ``"serial"``
    otherwise; unknown names raise.
    """
    if engine == "auto":
        parallel = default_worker_count() > 1 and fork_is_default()
        return "parallel" if parallel else "serial"
    if engine in ("serial", "parallel"):
        return engine
    from repro.api.registry import validate_choice

    validate_choice("execution engine", engine, ENGINES)
    # A name in ENGINES without a branch above is a newly added
    # concrete engine: it resolves to itself.
    return engine


def create_engine(
    engine: str = "auto",
    config: ClusterConfig | None = None,
    processes: int | None = None,
) -> MapReduceEngine:
    """Build the MapReduce engine named by ``engine``.

    Parameters
    ----------
    engine:
        ``"auto" | "serial" | "parallel"`` (see :func:`resolve_engine`).
    config:
        Simulated cluster configuration for the engine.
    processes:
        OS worker processes for the parallel engine (``None`` = CPU
        count); ignored by the serial engine.
    """
    if resolve_engine(engine) == "serial":
        return MapReduceEngine(config)
    return ParallelMapReduceEngine(config, processes=processes)


__all__ = [
    "DEFAULT_MIN_PARALLEL_RECORDS",
    "Deadline",
    "ENGINES",
    "MAX_SHARD_RETRIES",
    "ParallelMapReduceEngine",
    "PoolBrokenError",
    "available_cpus",
    "check_deadline",
    "create_engine",
    "current_deadline",
    "deadline_scope",
    "default_worker_count",
    "in_worker_process",
    "reset_runtime_counters",
    "resilient_pool_map",
    "resolve_engine",
    "runtime_counters",
    "shared_pool",
    "shared_pool_size",
    "shutdown_shared_pool",
]
