"""The batched shuffle data path shared by the serial and parallel engines.

Pre-overhaul both engines accounted every ``(key, value)`` emission
individually: a recursive :func:`repro.mapreduce.engine.estimate_size`
walk over the (often deeply nested) payload tuple plus a
:func:`repro.mapreduce.hashing.stable_hash` of the key -- per pair, even
though real shuffles repeat the same keys (one token key per containing
record) and the same payloads (one record-metadata tuple per token of the
record) millions of times.  Profiling the 5k-name ``nsld_join`` put ~40%
of the serial wall-clock in exactly those two calls.

This module batches the data path without changing a single accounted
byte:

* :class:`SizeMemo` memoizes ``estimate_size`` by value equality (the
  repeated payloads are hashable tuples); unhashable values fall through
  to the plain recursive walk.
* :class:`ShuffleLedger` interns shuffle keys to dense ids on first
  emission and keeps the per-key state as parallel columns (destination
  partition, shuffled bytes, value list) instead of per-record tuples.
  ``stable_hash`` runs once per *distinct* key; the per-emission cost is
  two dict probes and a list append.

Both engines drive their accounting through these classes, so the
simulated :class:`repro.mapreduce.engine.JobMetrics` stay byte-identical
to the pre-overhaul engine and engine-invariant by construction -- the
memoization only removes redundant recomputation.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.mapreduce.hashing import stable_hash


def memoized_stable_hash(memo: dict[Hashable, int], key: Hashable) -> int:
    """:func:`stable_hash` through a caller-owned memo dict.

    The single definition both engines and the ledger route through --
    the memo dict is the unit of sharing (the engine passes one
    engine-lifetime dict everywhere), the function is the unit of truth.
    """
    value = memo.get(key)
    if value is None:
        value = memo[key] = stable_hash(key)
    return value


class SizeMemo:
    """Value-equality memo over an ``estimate_size``-style function.

    Tuples recurse *through* the memo: a payload tuple distinct per
    emission (it carries the candidate ids) still resolves its repeated
    components -- histograms, token tuples, record metadata -- with one
    dict probe each instead of a full recursive walk.  Scalars skip the
    memo (sizing them is already one arithmetic op).

    Examples
    --------
    >>> from repro.mapreduce.engine import estimate_size
    >>> memo = SizeMemo(estimate_size)
    >>> memo.size(("ann", 3)) == estimate_size(("ann", 3))
    True
    >>> memo.size((("a", "bb"), (1, 2))) == estimate_size((("a", "bb"), (1, 2)))
    True
    >>> memo.size([1, 2]) == estimate_size([1, 2])  # unhashable: pass-through
    True
    """

    __slots__ = ("_estimate", "_memo")

    def __init__(self, estimate: Callable[[Any], int]) -> None:
        self._estimate = estimate
        self._memo: dict[Hashable, int] = {}

    def size(self, value: Any) -> int:
        kind = type(value)
        if kind is int:
            return 8
        if kind is str:
            return 4 + len(value)
        memo = self._memo
        try:
            cached = memo.get(value)
        except TypeError:  # unhashable (lists, dicts): size it every time
            return self._estimate(value)
        if cached is None:
            if kind is tuple:
                size = self.size
                cached = 4
                for item in value:
                    cached += size(item)
            else:
                cached = self._estimate(value)
            memo[value] = cached
        return cached


class ShuffleLedger:
    """One job's shuffle in column form: interned keys, batched accounting.

    Keys are interned to dense ids in first-emission order (matching the
    serial engine's historical ``dict`` insertion order exactly); per-key
    columns hold the hash destination, the shuffled byte tally and the
    value list.  The byte accounting is definitionally
    ``estimate_size(key) + estimate_size(value)`` per emission, via
    :class:`SizeMemo`.

    Examples
    --------
    >>> from repro.mapreduce.engine import estimate_size
    >>> ledger = ShuffleLedger(4, SizeMemo(estimate_size))
    >>> ledger.emit("ann", 1); ledger.emit("bob", 2); ledger.emit("ann", 3)
    >>> ledger.keys
    ['ann', 'bob']
    >>> ledger.values[0]
    [1, 3]
    >>> ledger.nbytes[0] == 2 * (estimate_size("ann") + estimate_size(1))
    True
    >>> ledger.destinations[0] == stable_hash("ann") % 4
    True
    """

    __slots__ = (
        "n_partitions",
        "_key_ids",
        "_key_sizes",
        "keys",
        "destinations",
        "nbytes",
        "values",
        "_sizes",
        "_hashes",
    )

    def __init__(
        self,
        n_partitions: int,
        sizes: SizeMemo,
        hash_memo: dict[Hashable, int] | None = None,
    ) -> None:
        self.n_partitions = n_partitions
        self._key_ids: dict[Hashable, int] = {}
        self._key_sizes: list[int] = []
        #: Column stores, indexed by dense key id (first-emission order).
        self.keys: list[Hashable] = []
        self.destinations: list[int] = []
        self.nbytes: list[int] = []
        self.values: list[list[Any]] = []
        self._sizes = sizes
        # The stable_hash memo may outlive the ledger (the engine shares
        # one across jobs: record-id and token keys recur pipeline-wide).
        self._hashes = {} if hash_memo is None else hash_memo

    def __len__(self) -> int:
        """Number of distinct keys shuffled."""
        return len(self.keys)

    def key_hash(self, key: Hashable) -> int:
        """Memoized :func:`stable_hash` of a shuffle key."""
        return memoized_stable_hash(self._hashes, key)

    def emit(self, key: Hashable, value: Any) -> None:
        """Shuffle one ``(key, value)`` pair into the ledger."""
        key_id = self._key_ids.get(key)
        if key_id is None:
            key_id = len(self.keys)
            self._key_ids[key] = key_id
            self.keys.append(key)
            self.destinations.append(self.key_hash(key) % self.n_partitions)
            self._key_sizes.append(self._sizes.size(key))
            self.nbytes.append(0)
            self.values.append([])
        self.nbytes[key_id] += self._key_sizes[key_id] + self._sizes.size(value)
        self.values[key_id].append(value)
