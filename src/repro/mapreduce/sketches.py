"""Streaming frequency sketches for scalable popular-token detection.

Sec. III-G.2 drops tokens shared by more than ``M`` tokenized strings and
notes that "dropping high-frequency tokens in a scalable way will be
discussed in an extended version of the paper".  At 44M records an exact
per-token count is a heavy shuffle; the streaming literature offers two
classic summaries that fit in one mapper-side pass:

* :class:`SpaceSaving` -- the deterministic top-k / heavy-hitters summary
  of Metwally, Agrawal & El Abbadi (ICDT 2005) -- the first author's own
  algorithm, and the natural fit here: every token with true count
  ``> n / capacity`` is guaranteed to be retained, and reported counts
  overestimate by at most the minimum counter.
* :class:`CountMinSketch` -- Cormode & Muthukrishnan's randomised counter
  array: reported counts never underestimate and overestimate by at most
  ``e * n / width`` with probability ``1 - exp(-depth)``.

Both overestimate-only guarantees match the semantics ``M`` needs: a
token flagged frequent by the sketch may occasionally be an innocent
token dropped too eagerly (recall loss, like ``M`` itself), but no truly
frequent token can sneak through and blow up a reducer.

:func:`approximate_frequent_tokens` applies either sketch over a record
stream the way a distributed TSJ would (mapper-local sketches merged at
the driver).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.mapreduce.hashing import stable_hash


class SpaceSaving:
    """The Space-Saving heavy-hitters summary (Metwally et al., 2005).

    Maintains at most ``capacity`` counters.  A new item evicts the
    minimum counter and inherits its count (+1), so reported counts are
    overestimates bounded by the evicted minimum, and any item with true
    frequency above ``n / capacity`` is guaranteed present.

    Examples
    --------
    >>> sketch = SpaceSaving(capacity=2)
    >>> for token in ["john"] * 5 + ["mary"] * 3 + ["zoe"]:
    ...     sketch.add(token)
    >>> sketch.count("john") >= 5
    True
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self.total = 0

    def add(self, item: str, increment: int = 1) -> None:
        """Observe ``item`` (optionally with a weight)."""
        if increment < 1:
            raise ValueError("increment must be positive")
        self.total += increment
        if item in self._counts:
            self._counts[item] += increment
            return
        if len(self._counts) < self.capacity:
            self._counts[item] = increment
            self._errors[item] = 0
            return
        victim = min(self._counts, key=lambda key: (self._counts[key], key))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[item] = floor + increment
        self._errors[item] = floor

    def count(self, item: str) -> int:
        """Estimated count: never below the true count of a stored item."""
        return self._counts.get(item, 0)

    def error(self, item: str) -> int:
        """Maximum overestimation of the stored count."""
        return self._errors.get(item, 0)

    def heavy_hitters(self, threshold: int) -> dict[str, int]:
        """Items whose estimated count exceeds ``threshold``.

        Guaranteed to include every item with true count > ``threshold``
        whenever ``threshold >= total / capacity``.
        """
        return {
            item: count
            for item, count in self._counts.items()
            if count > threshold
        }

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two sketches (for mapper-side partial aggregation).

        The merged sketch keeps the overestimate-only guarantee: counts
        and errors add; the result is re-truncated to ``capacity`` by
        treating evicted counters' counts as the error floor of future
        inserts (standard Space-Saving merge).
        """
        merged = SpaceSaving(self.capacity)
        merged.total = self.total + other.total
        combined_counts: dict[str, int] = dict(self._counts)
        combined_errors: dict[str, int] = dict(self._errors)
        for item, count in other._counts.items():
            combined_counts[item] = combined_counts.get(item, 0) + count
            combined_errors[item] = combined_errors.get(item, 0) + other._errors[item]
        keep = sorted(
            combined_counts, key=lambda key: (-combined_counts[key], key)
        )[: self.capacity]
        floor = 0
        evicted = [item for item in combined_counts if item not in set(keep)]
        if evicted:
            floor = max(combined_counts[item] for item in evicted)
        merged._counts = {item: combined_counts[item] for item in keep}
        merged._errors = {
            item: min(combined_errors[item] + floor, merged._counts[item])
            for item in keep
        }
        return merged

    def __len__(self) -> int:
        return len(self._counts)


class CountMinSketch:
    """A Count-Min sketch: hashed counter array, overestimate-only.

    Examples
    --------
    >>> sketch = CountMinSketch(width=64, depth=4)
    >>> for token in ["john"] * 10:
    ...     sketch.add(token)
    >>> sketch.count("john") >= 10
    True
    >>> sketch.count("never-seen") >= 0
    True
    """

    def __init__(self, width: int = 1024, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._rows = [[0] * width for _ in range(depth)]
        self.total = 0

    def _buckets(self, item: str) -> Iterator[tuple[int, int]]:
        for row in range(self.depth):
            yield row, stable_hash((row, item)) % self.width

    def add(self, item: str, increment: int = 1) -> None:
        if increment < 1:
            raise ValueError("increment must be positive")
        self.total += increment
        for row, bucket in self._buckets(item):
            self._rows[row][bucket] += increment

    def count(self, item: str) -> int:
        """Estimated count; never underestimates."""
        return min(self._rows[row][bucket] for row, bucket in self._buckets(item))

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Cell-wise sum of two same-shape sketches."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("can only merge sketches of identical shape")
        merged = CountMinSketch(self.width, self.depth)
        merged.total = self.total + other.total
        for row in range(self.depth):
            merged._rows[row] = [
                a + b for a, b in zip(self._rows[row], other._rows[row])
            ]
        return merged


def approximate_frequent_tokens(
    records: Iterable,
    max_frequency: int,
    n_mappers: int = 8,
    capacity_factor: int = 16,
) -> frozenset[str]:
    """Scalable approximate detection of tokens in more than
    ``max_frequency`` tokenized strings (the extended-version feature).

    Simulates the distributed pattern: each of ``n_mappers`` builds a
    mapper-local :class:`SpaceSaving` sketch over its share of records;
    the driver merges the sketches and reports heavy hitters.  Capacity is
    sized so the guarantee threshold ``n / capacity`` sits well below
    ``max_frequency`` (``capacity_factor`` sketch slots per expected heavy
    hitter).

    The result may contain a few tokens whose true frequency is slightly
    below ``max_frequency`` (overestimate-only, harmless recall loss --
    the same trade ``M`` itself makes) but misses no truly frequent token.
    """
    if max_frequency < 1:
        raise ValueError("max_frequency must be positive")
    record_list = list(records)
    total_tokens = sum(record.token_count for record in record_list)
    capacity = max(
        capacity_factor,
        capacity_factor * (total_tokens // max(max_frequency, 1) + 1),
    )
    sketches = [SpaceSaving(capacity) for _ in range(n_mappers)]
    for index, record in enumerate(record_list):
        sketch = sketches[index % n_mappers]
        for token in record.distinct_tokens():
            sketch.add(token)
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = merged.merge(sketch)
    return frozenset(merged.heavy_hitters(max_frequency))
