"""Stable hashing for deterministic key partitioning.

Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
would make worker assignment -- and therefore every simulated runtime --
non-reproducible.  :func:`stable_hash` provides a process-independent
64-bit hash over the plain value types used as MapReduce keys.

The same function doubles as the fingerprint ``HASH`` in TSJ's
grouping-on-one-string dedup strategy (Sec. III-G.3).
"""

from __future__ import annotations

import struct
from hashlib import blake2b

_FLOAT_PACKER = struct.Struct("<d")


def _canonical_bytes(value: object) -> bytes:
    """Encode a value into type-tagged canonical bytes.

    Supports the key types the simulator uses: ``str``, ``bytes``, ``int``,
    ``float``, ``bool``, ``None``, and (nested) tuples thereof.  Type tags
    prevent cross-type collisions such as ``"1"`` vs ``1``.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # must precede int: bool is a subclass
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F" + _FLOAT_PACKER.pack(value)
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"Y" + value
    if isinstance(value, tuple):
        parts = [b"T", str(len(value)).encode("ascii")]
        for item in value:
            encoded = _canonical_bytes(item)
            parts.append(str(len(encoded)).encode("ascii"))
            parts.append(b":")
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"unhashable MapReduce key type: {type(value).__name__}")


def stable_hash(value: object) -> int:
    """A deterministic non-negative 64-bit hash of ``value``.

    Examples
    --------
    >>> stable_hash("ann") == stable_hash("ann")
    True
    >>> stable_hash(("a", 1)) != stable_hash(("a", 2))
    True
    """
    digest = blake2b(_canonical_bytes(value), digest_size=8).digest()
    return int.from_bytes(digest, "little")
