"""Cluster configuration and the simulated-runtime cost model.

The paper's evaluation machines are modest (1 GB RAM, 0.5 CPU); runtimes in
Figs. 1-3 and 7 are dominated by how evenly the algorithms spread work and
by per-task overheads (Sec. V-A explicitly attributes the
grouping-on-one-string win to "the overhead of instantiating MapReduce
workers").  The :class:`CostModel` therefore charges:

* ``job_overhead``        -- fixed per MapReduce job (master scheduling,
  input splitting); the serial fraction that caps speedup (Amdahl).
* ``worker_startup``      -- per wave of workers (paid once per phase, all
  workers start in parallel).
* ``task_overhead``       -- per reduce *group* (task instantiation); this
  is what separates the two dedup strategies.
* ``per_record``          -- per record mapped or reduced.
* ``per_op``              -- per compute operation charged by user code
  (e.g. one DP cell of an LD computation).
* ``per_shuffle_byte``    -- per byte moved from mappers to reducers.

A phase's duration is the **maximum** over its workers (stragglers gate the
wave -- this is where skew hurts), and a job's simulated runtime is
``job_overhead + map_phase + shuffle + reduce_phase``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Constants converting metered work into simulated seconds.

    The defaults are calibrated to commodity-cluster magnitudes (records and
    shuffle measured against single-digit-microsecond handling costs, task
    dispatch in the tens of milliseconds, job setup in the tens of seconds).
    Absolute values are not meant to match the paper's testbed -- only the
    *shape* of the curves matters (see EXPERIMENTS.md).
    """

    job_overhead: float = 12.0
    worker_startup: float = 1.0
    task_overhead: float = 0.02
    per_record: float = 2e-5
    per_op: float = 2e-7
    per_shuffle_byte: float = 4e-8

    def phase_seconds(
        self,
        records: int,
        ops: int,
        shuffle_bytes: int,
        tasks: int = 0,
    ) -> float:
        """Seconds one worker spends on the given amount of work."""
        return (
            tasks * self.task_overhead
            + records * self.per_record
            + ops * self.per_op
            + shuffle_bytes * self.per_shuffle_byte
        )


@dataclass(frozen=True)
class ClusterConfig:
    """A simulated shared-nothing cluster.

    Parameters
    ----------
    n_machines:
        Number of simulated workers; the paper sweeps 100-1000.  Mappers
        and reducers both use ``n_machines`` workers (the paper runs
        "1,000 Mappers and 1,000 Reducers").
    cost_model:
        The work-to-seconds conversion; see :class:`CostModel`.
    """

    n_machines: int = 10
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("cluster needs at least one machine")
