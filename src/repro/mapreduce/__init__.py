"""A deterministic, metered MapReduce simulation engine (Sec. III-A).

The paper runs TSJ on a production MapReduce cluster of 100-1000 machines.
This package provides an in-process substitute that

* executes real ``map -> shuffle -> reduce`` semantics (hash partitioning of
  keys across ``n_machines`` simulated workers),
* **meters** the work each simulated worker performs -- records processed,
  compute operations charged by the user code (e.g. DP cells), shuffle
  bytes, reduce groups -- and
* converts the metered work into a simulated wall-clock **makespan** through
  an explicit :class:`CostModel`, so "runtime vs number of machines" curves
  reflect genuine load balance and skew of the algorithms rather than
  single-host noise.

Everything is deterministic: key placement uses a stable hash, so repeated
runs (and the paper-reproduction benchmarks) give identical numbers.
"""

from repro.mapreduce.cluster import ClusterConfig, CostModel
from repro.mapreduce.engine import (
    JobMetrics,
    JobResult,
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)
from repro.mapreduce.hashing import stable_hash

__all__ = [
    "ClusterConfig",
    "CostModel",
    "MapReduceEngine",
    "MapReduceJob",
    "MapReduceContext",
    "JobMetrics",
    "JobResult",
    "PipelineResult",
    "stable_hash",
]
