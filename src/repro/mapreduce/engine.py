"""The simulated MapReduce engine: real semantics, metered work.

A :class:`MapReduceJob` supplies ``map`` and ``reduce`` generator methods
(and optionally ``combine``).  :class:`MapReduceEngine` executes the job
over an input iterable with genuine hash-partitioned shuffle semantics
while attributing every record, compute op, task and shuffled byte to the
simulated worker that handled it.  :class:`JobMetrics` then answers "how
long would this job have taken on ``n`` machines?" through the
:class:`repro.mapreduce.cluster.CostModel`.

The engine is single-threaded on purpose: determinism is worth more to a
reproduction than parallel wall-clock, and the *simulated* runtime is what
the paper's scalability figures plot.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.mapreduce.cluster import ClusterConfig, CostModel
from repro.mapreduce.hashing import stable_hash
from repro.mapreduce.shuffle import ShuffleLedger, SizeMemo, memoized_stable_hash
from repro.tokenize.tokenized_string import TokenizedString

KeyValue = tuple[Any, Any]


def estimate_size(value: object) -> int:
    """Rough serialized size of a value in bytes (for shuffle accounting).

    Uses flat per-type estimates comparable to compact binary encodings;
    exactness is irrelevant -- only relative volume between strategies
    matters for the simulated runtimes.

    The estimate is a function of value *equality*: ``bool`` sizes like
    the ``int`` it equals (``True == 1``), ``float`` like an equal int.
    The memoized shuffle path (:class:`repro.mapreduce.shuffle.SizeMemo`)
    relies on this -- two equal values must never account differently.
    """
    if value is None:
        return 1
    if isinstance(value, int):  # bool included: True == 1 must size alike
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, bytes):
        return 4 + len(value)
    if isinstance(value, TokenizedString):
        return 4 + sum(4 + len(token) for token in value.tokens)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in value.items())
    return 16


class MapReduceContext:
    """Hands user code a way to charge compute and bump counters.

    An instance is bound to one simulated worker at a time; the engine
    rebinds it as execution moves between workers.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self._ops_sink: Callable[[int], None] = lambda n: None

    def charge(self, ops: int) -> None:
        """Attribute ``ops`` compute operations to the current worker.

        Distance functions accept this bound method as their ``ops`` hook,
        so e.g. every DP cell of an LD verification lands on the worker
        that ran the verification.
        """
        self._ops_sink(ops)

    def count(self, name: str, increment: int = 1) -> None:
        """Increment a named job counter (like Hadoop counters)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def _bind(self, sink: Callable[[int], None]) -> None:
        self._ops_sink = sink


class MapReduceJob(abc.ABC):
    """A single MapReduce job: ``map``, optional ``combine``, ``reduce``."""

    #: Human-readable job name (used in metrics breakdowns).
    name: str = "job"

    @abc.abstractmethod
    def map(self, record: Any, ctx: MapReduceContext) -> Iterator[KeyValue]:
        """Yield ``(key, value)`` pairs for one input record."""

    @abc.abstractmethod
    def reduce(
        self, key: Any, values: Sequence[Any], ctx: MapReduceContext
    ) -> Iterator[Any]:
        """Yield output records for one reduce group."""

    def combine(
        self, key: Any, values: Sequence[Any], ctx: MapReduceContext
    ) -> Iterator[Any] | None:
        """Optional mapper-side pre-aggregation.

        Return an iterator of combined *values* for ``key``, or ``None``
        (the default) to disable combining.
        """
        return None

    @property
    def has_combiner(self) -> bool:
        """Whether :meth:`combine` is overridden."""
        return type(self).combine is not MapReduceJob.combine


@dataclass
class JobMetrics:
    """Per-worker work ledger for one executed job.

    Besides the per-machine aggregates, the job keeps fine-grained ledgers
    (ops per input record, work per reduce key) so :meth:`rebin` can
    recompute the simulated makespan for *any* cluster size without
    re-executing the join -- the outputs are machine-count-invariant, only
    the work placement changes.
    """

    name: str
    n_machines: int
    map_records: list[int] = field(default_factory=list)
    map_ops: list[int] = field(default_factory=list)
    map_output_pairs: int = 0
    shuffle_bytes: list[int] = field(default_factory=list)
    reduce_records: list[int] = field(default_factory=list)
    reduce_ops: list[int] = field(default_factory=list)
    reduce_tasks: list[int] = field(default_factory=list)
    output_records: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    #: ops charged while mapping each input record, in input order.
    map_ledger: list[int] = field(default_factory=list, repr=False)
    #: per reduce key: [records, ops, shuffle_bytes].
    reduce_ledger: dict = field(default_factory=dict, repr=False)
    #: combiner ops (not attributable to one input record); spread evenly
    #: across mappers when rebinned.
    combine_ops_total: int = 0

    def rebin(self, n_machines: int) -> "JobMetrics":
        """This job's work ledger re-placed on a cluster of another size.

        Input records are re-split round-robin and reduce keys re-hashed,
        exactly as a fresh run on ``n_machines`` would place them.
        """
        if n_machines < 1:
            raise ValueError("cluster needs at least one machine")
        clone = JobMetrics(name=self.name, n_machines=n_machines)
        clone.map_records = [0] * n_machines
        clone.map_ops = [0] * n_machines
        clone.shuffle_bytes = [0] * n_machines
        clone.reduce_records = [0] * n_machines
        clone.reduce_ops = [0] * n_machines
        clone.reduce_tasks = [0] * n_machines
        clone.map_output_pairs = self.map_output_pairs
        clone.output_records = self.output_records
        clone.counters = dict(self.counters)
        clone.map_ledger = self.map_ledger
        clone.reduce_ledger = self.reduce_ledger
        clone.combine_ops_total = self.combine_ops_total
        for index, ops in enumerate(self.map_ledger):
            machine = index % n_machines
            clone.map_records[machine] += 1
            clone.map_ops[machine] += ops
        if self.combine_ops_total:
            share, remainder = divmod(self.combine_ops_total, n_machines)
            for machine in range(n_machines):
                clone.map_ops[machine] += share + (1 if machine < remainder else 0)
        for key, (records, ops, nbytes) in self.reduce_ledger.items():
            machine = stable_hash(key) % n_machines
            clone.reduce_tasks[machine] += 1
            clone.reduce_records[machine] += records
            clone.reduce_ops[machine] += ops
            clone.shuffle_bytes[machine] += nbytes
        return clone

    def simulated_seconds(self, cost: CostModel | None = None) -> float:
        """Simulated job makespan on this cluster size.

        ``job_overhead`` + slowest mapper + slowest reducer, each phase
        paying one ``worker_startup``.  Shuffle cost is charged to the
        receiving reducer (network is attributed to the puller, as in
        Hadoop's copy phase).
        """
        cost = cost or CostModel()
        map_time = max(
            (
                cost.phase_seconds(records=r, ops=o, shuffle_bytes=0)
                for r, o in zip(self.map_records, self.map_ops)
            ),
            default=0.0,
        )
        reduce_time = max(
            (
                cost.phase_seconds(records=r, ops=o, shuffle_bytes=b, tasks=t)
                for r, o, b, t in zip(
                    self.reduce_records,
                    self.reduce_ops,
                    self.shuffle_bytes,
                    self.reduce_tasks,
                )
            ),
            default=0.0,
        )
        return cost.job_overhead + 2 * cost.worker_startup + map_time + reduce_time

    @property
    def total_map_records(self) -> int:
        return sum(self.map_records)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(self.shuffle_bytes)

    @property
    def total_reduce_tasks(self) -> int:
        return sum(self.reduce_tasks)

    @property
    def total_ops(self) -> int:
        return sum(self.map_ops) + sum(self.reduce_ops)

    def skew(self) -> float:
        """Reduce-phase imbalance: max worker load / mean worker load.

        1.0 is perfectly balanced.  The metric the paper's load-balancing
        discussion (grouping strategies, dropping popular tokens) is about.
        """
        loads = [r + t for r, t in zip(self.reduce_records, self.reduce_tasks)]
        total = sum(loads)
        if total == 0:
            return 1.0
        return max(loads) * self.n_machines / total


@dataclass
class JobResult:
    """Outputs plus the work ledger of one job execution."""

    outputs: list
    metrics: JobMetrics


@dataclass
class PipelineResult:
    """Aggregate of several chained jobs (a TSJ run is a pipeline)."""

    outputs: list
    stages: list[JobMetrics]

    def simulated_seconds(self, cost: CostModel | None = None) -> float:
        """Pipeline makespan: jobs run back-to-back."""
        return sum(stage.simulated_seconds(cost) for stage in self.stages)

    def rebin(self, n_machines: int) -> "PipelineResult":
        """The same pipeline re-placed on a cluster of ``n_machines``.

        Cheap: only the work ledgers are re-hashed; no join re-executes.
        This is how the scalability benchmarks sweep cluster sizes.
        """
        return PipelineResult(
            outputs=self.outputs,
            stages=[stage.rebin(n_machines) for stage in self.stages],
        )

    def counters(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stage in self.stages:
            for name, value in stage.counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged


class MapReduceEngine:
    """Executes :class:`MapReduceJob` instances on a simulated cluster."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        # Shared accounting memos for the batched shuffle data path: keys
        # (record ids, tokens) and payloads (records, histograms) recur
        # across the jobs of a pipeline, so both memos outlive single runs.
        self._size_memo = SizeMemo(estimate_size)
        self._hash_memo: dict[Any, int] = {}

    def key_hash(self, key: Any) -> int:
        """Memoized :func:`repro.mapreduce.hashing.stable_hash` of a key."""
        return memoized_stable_hash(self._hash_memo, key)

    @property
    def n_machines(self) -> int:
        return self.config.n_machines

    def run(self, job: MapReduceJob, records: Iterable[Any]) -> JobResult:
        """Run one job over ``records`` and return outputs + metrics.

        Input records are split round-robin across mappers (MapReduce input
        splits); intermediate keys are hash-partitioned across reducers
        with :func:`repro.mapreduce.hashing.stable_hash`.

        An ambient request deadline (:mod:`repro.runtime.deadline`) is
        honored at phase boundaries and periodically inside the map and
        reduce loops, so an expired request abandons the job cleanly
        instead of running to completion first.
        """
        # Lazy: repro.runtime's package __init__ imports this module back,
        # so a module-level import would be circular.
        from repro.runtime.deadline import check_deadline

        n = self.n_machines
        metrics = JobMetrics(name=job.name, n_machines=n)
        metrics.map_records = [0] * n
        metrics.map_ops = [0] * n
        metrics.shuffle_bytes = [0] * n
        metrics.reduce_records = [0] * n
        metrics.reduce_ops = [0] * n
        metrics.reduce_tasks = [0] * n

        ctx = MapReduceContext()

        # ---- map phase ------------------------------------------------------
        # Buffered per-mapper only when a combiner needs mapper-local groups;
        # otherwise pairs stream straight into the shuffle ledger -- the
        # batched data path (interned keys, memoized sizes/hashes, value
        # columns) that replaces per-pair accounting.
        shuffle = ShuffleLedger(n, self._size_memo, self._hash_memo)
        use_combiner = job.has_combiner
        mapper_buffers: list[dict[Any, list[Any]]] | None = (
            [dict() for _ in range(n)] if use_combiner else None
        )

        record_ops = 0

        def map_sink(ops: int) -> None:
            nonlocal record_ops
            record_ops += ops

        for index, record in enumerate(records):
            if not index & 0xFFF:  # every 4096 records: one clock read
                check_deadline("map phase")
            mapper = index % n
            metrics.map_records[mapper] += 1
            record_ops = 0
            ctx._bind(map_sink)
            for key, value in job.map(record, ctx):
                metrics.map_output_pairs += 1
                if use_combiner:
                    mapper_buffers[mapper].setdefault(key, []).append(value)
                else:
                    shuffle.emit(key, value)
            metrics.map_ops[mapper] += record_ops
            metrics.map_ledger.append(record_ops)

        if use_combiner:
            combine_ops = 0

            def combine_sink(ops: int) -> None:
                nonlocal combine_ops
                combine_ops += ops

            for mapper, buffer in enumerate(mapper_buffers):
                combine_ops = 0
                ctx._bind(combine_sink)
                for key, values in buffer.items():
                    combined = job.combine(key, values, ctx)
                    for value in combined if combined is not None else values:
                        shuffle.emit(key, value)
                metrics.map_ops[mapper] += combine_ops
                metrics.combine_ops_total += combine_ops

        # ---- shuffle settle -------------------------------------------------
        # Drain the ledger columns into the metrics: per-key bytes land on
        # the receiving reducer, and the fine-grained reduce ledger is
        # seeded in first-emission order (the historical dict order).
        for key, destination, nbytes in zip(
            shuffle.keys, shuffle.destinations, shuffle.nbytes
        ):
            metrics.shuffle_bytes[destination] += nbytes
            metrics.reduce_ledger[key] = [0, 0, nbytes]

        # ---- reduce phase ---------------------------------------------------
        outputs: list[Any] = []
        group_ops = 0

        def reduce_sink(ops: int) -> None:
            nonlocal group_ops
            group_ops += ops

        ctx._bind(reduce_sink)
        for group_index, (key, reducer, values) in enumerate(
            zip(shuffle.keys, shuffle.destinations, shuffle.values)
        ):
            if not group_index & 0xFFF:
                check_deadline("reduce phase")
            metrics.reduce_tasks[reducer] += 1
            metrics.reduce_records[reducer] += len(values)

            group_ops = 0
            outputs.extend(job.reduce(key, values, ctx))
            metrics.reduce_ops[reducer] += group_ops
            ledger = metrics.reduce_ledger[key]
            ledger[0] += len(values)
            ledger[1] += group_ops

        metrics.output_records = len(outputs)
        metrics.counters = dict(ctx.counters)
        return JobResult(outputs=outputs, metrics=metrics)
