"""``SimilarityIndex`` <-> snapshot sections: what durability preserves.

A :class:`repro.service.SimilarityIndex` is rebuilt state over one input:
the raw names.  The snapshot persists the *expensive* derived state --
the tokenized records as interned token-id rows, the vocab's token
table, the token postings and the Lemma 6 length partition -- as flat
``int64`` columns plus string tables, so a cold load is array
reconstruction instead of re-tokenizing and re-interning the corpus.

Deliberately *not* persisted, because it is cheap, lazily built, or
process-local: the Myers ``Peq`` masks (lazy per token on first use;
results and simulated costs are identical by construction since the
vocab memo re-charges metered work on every hit), the encoded
histograms (recomputed from the restored records in one pass), the
result cache, metric-tree backends, numpy probe arrays and pool
publication tokens (all already excluded from pickling for the same
reason).

Restoration trusts the container's CRCs for byte integrity but still
cross-checks section shapes against each other (row counts, offset
monotonicity, id ranges): a snapshot that passes checksums yet is
internally inconsistent -- a truncated writer bug, a hand-edited file --
must fail as :class:`~repro.api.errors.CorruptSnapshotError`, never
serve wrong results.

Sections::

    meta             JSON: record count, backend, cache_size, tokenizer
    names            string table (raw names, record-id order)
    tokens           string table (vocab tokens, token-id order)
    record_offsets   int64, per record: end offset into record_tokens
    record_tokens    int64, flattened token-id rows (sorted within a row)
    postings_keys    int64, per postings slot: the interned token id
    postings_offsets int64, per slot: end offset into postings
    postings         int64, flattened record-id posting lists
    length_values    int64, sorted aggregate lengths (Lemma 6 partition)
    length_ids       int64, the record ids aligned with length_values
"""

from __future__ import annotations

import json

from repro.api.errors import CorruptSnapshotError
from repro.store.format import (
    pack_int_array,
    pack_strings,
    unpack_int_array,
    unpack_strings,
)
from repro.tokenize import Tokenizer

__all__ = ["index_to_sections", "index_from_sections"]

_REQUIRED_SECTIONS = (
    "meta",
    "names",
    "tokens",
    "record_offsets",
    "record_tokens",
    "postings_keys",
    "postings_offsets",
    "postings",
    "length_values",
    "length_ids",
)


def index_to_sections(index) -> dict[str, bytes]:
    """Serialise a ``SimilarityIndex`` into named snapshot sections."""
    vocab = index.vocab
    tokens = [vocab.token(token_id) for token_id in range(len(vocab))]
    token_id_of = {token: token_id for token_id, token in enumerate(tokens)}

    record_tokens: list[int] = []
    record_offsets: list[int] = []
    for record in index.records:
        record_tokens.extend(token_id_of[token] for token in record.tokens)
        record_offsets.append(len(record_tokens))

    token_postings = index.token_postings
    keys = list(token_postings.interner.signatures())
    postings_flat: list[int] = []
    postings_offsets: list[int] = []
    for postings in token_postings.postings:
        postings_flat.extend(postings)
        postings_offsets.append(len(postings_flat))

    meta = {
        "records": len(index.records),
        "backend": index.backend,
        "cache_size": index.result_cache.capacity,
        "tokenizer": {
            "lowercase": index.tokenizer.lowercase,
            "min_token_length": index.tokenizer.min_token_length,
            "extra_separators": index.tokenizer.extra_separators,
        },
    }
    return {
        "meta": json.dumps(meta, ensure_ascii=False).encode("utf-8"),
        "names": pack_strings(index.names),
        "tokens": pack_strings(tokens),
        "record_offsets": pack_int_array(record_offsets),
        "record_tokens": pack_int_array(record_tokens),
        "postings_keys": pack_int_array(keys),
        "postings_offsets": pack_int_array(postings_offsets),
        "postings": pack_int_array(postings_flat),
        "length_values": pack_int_array(
            length for length, _ in index._lengths
        ),
        "length_ids": pack_int_array(
            record_id for _, record_id in index._lengths
        ),
    }


def index_from_sections(sections: dict[str, bytes]):
    """Reconstruct a ``SimilarityIndex`` from validated snapshot sections.

    Raises :class:`~repro.api.errors.CorruptSnapshotError` when the
    sections are missing or mutually inconsistent.
    """
    from repro.accel import Vocab
    from repro.candidates import PostingsIndex
    from repro.service import SimilarityIndex

    def fail(reason: str) -> CorruptSnapshotError:
        return CorruptSnapshotError(f"corrupt snapshot: {reason}")

    missing = [name for name in _REQUIRED_SECTIONS if name not in sections]
    if missing:
        raise fail(f"missing section(s) {missing}")

    meta = _decode_meta(sections["meta"])
    names = unpack_strings(sections["names"], "names")
    tokens = unpack_strings(sections["tokens"], "tokens")
    record_offsets = unpack_int_array(sections["record_offsets"], "record_offsets")
    record_tokens = unpack_int_array(sections["record_tokens"], "record_tokens")
    postings_keys = unpack_int_array(sections["postings_keys"], "postings_keys")
    postings_offsets = unpack_int_array(
        sections["postings_offsets"], "postings_offsets"
    )
    postings_flat = unpack_int_array(sections["postings"], "postings")
    length_values = unpack_int_array(sections["length_values"], "length_values")
    length_ids = unpack_int_array(sections["length_ids"], "length_ids")

    record_count = meta["records"]
    if len(names) != record_count or len(record_offsets) != record_count:
        raise fail(
            f"meta claims {record_count} records but names/record_offsets "
            f"hold {len(names)}/{len(record_offsets)}"
        )
    if len(length_values) != record_count or len(length_ids) != record_count:
        raise fail("length partition rows do not match the record count")
    if len(postings_keys) != len(postings_offsets):
        raise fail("postings_keys and postings_offsets disagree on slot count")

    records, histograms = _decode_records(
        tokens, record_offsets, record_tokens, fail
    )
    postings = _decode_postings(
        postings_keys, postings_offsets, postings_flat, len(tokens),
        record_count, PostingsIndex, fail,
    )

    lengths: list[tuple[int, int]] = []
    previous = None
    for value, record_id in zip(length_values, length_ids):
        if not 0 <= record_id < record_count:
            raise fail(f"length partition names record id {record_id}")
        entry = (value, record_id)
        if previous is not None and entry < previous:
            raise fail("length partition is not sorted")
        previous = entry
        lengths.append(entry)

    index = SimilarityIndex(
        tokenizer=Tokenizer(**meta["tokenizer"]),
        backend=meta["backend"],
        cache_size=meta["cache_size"],
    )
    index._names = names
    index._records = records
    index._vocab = Vocab(tokens)
    index._token_postings = postings
    index._lengths = lengths
    index._histograms = histograms

    expected = sorted(
        (record.aggregate_length, record_id)
        for record_id, record in enumerate(records)
    )
    if expected != lengths:
        raise fail("length partition disagrees with the restored records")
    return index


def _decode_meta(payload: bytes) -> dict:
    def fail(reason: str) -> CorruptSnapshotError:
        return CorruptSnapshotError(f"corrupt snapshot: meta section {reason}")

    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise fail(f"is undecodable: {exc}") from exc
    if not isinstance(meta, dict):
        raise fail("is not an object")
    records = meta.get("records")
    tokenizer = meta.get("tokenizer")
    if (
        not isinstance(records, int)
        or records < 0
        or not isinstance(meta.get("backend"), str)
        or not isinstance(meta.get("cache_size"), int)
        or meta["cache_size"] < 0
        or not isinstance(tokenizer, dict)
        or not isinstance(tokenizer.get("lowercase"), bool)
        or not isinstance(tokenizer.get("min_token_length"), int)
        or not isinstance(tokenizer.get("extra_separators"), str)
        or set(tokenizer) != {"lowercase", "min_token_length", "extra_separators"}
    ):
        raise fail("holds malformed fields")
    return meta


def _decode_records(tokens, record_offsets, record_tokens, fail):
    """Record rows plus their encoded histograms, in one decode pass."""
    from repro.tokenize import TokenizedString

    records = []
    histograms = []
    token_count = len(tokens)
    start = 0
    for stop in record_offsets:
        if stop < start or stop > len(record_tokens):
            raise fail("record_offsets are non-monotonic or out of range")
        row_ids = record_tokens[start:stop]
        if row_ids and not 0 <= min(row_ids) <= max(row_ids) < token_count:
            raise fail("a record row names an unknown token id")
        row = [tokens[token_id] for token_id in row_ids]
        # Rows are persisted in each record's canonical order (sorted,
        # no empty tokens: the empty string would sort first), which the
        # trusted constructor below relies on; anything else is writer
        # damage the container CRCs cannot see.
        if row != sorted(row) or (row and not row[0]):
            raise fail("a record row is not in canonical token order")
        records.append(TokenizedString._from_canonical(tuple(row)))
        counts: dict[int, int] = {}
        for token in row:
            length = len(token)
            counts[length] = counts.get(length, 0) + 1
        histograms.append(tuple(sorted(counts.items())))
        start = stop
    if start != len(record_tokens):
        raise fail("record_tokens holds bytes past the last record row")
    return records, histograms


def _decode_postings(
    keys, offsets, flat, token_count, record_count, postings_cls, fail
):
    postings_index = postings_cls()
    interner_ids = postings_index.interner._ids
    columns = postings_index.postings
    start = 0
    for slot, (key, stop) in enumerate(zip(keys, offsets)):
        if not 0 <= key < token_count:
            raise fail(f"postings slot {slot} keys unknown token id {key}")
        if key in interner_ids:
            raise fail(f"postings key {key} appears in two slots")
        if stop < start or stop > len(flat):
            raise fail("postings_offsets are non-monotonic or out of range")
        column = flat[start:stop]
        if len(column) and not 0 <= min(column) <= max(column) < record_count:
            raise fail(f"postings slot {slot} names an unknown record id")
        interner_ids[int(key)] = slot
        columns.append(column)
        start = stop
    if start != len(flat):
        raise fail("postings holds bytes past the last slot")
    return postings_index
