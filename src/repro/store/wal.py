"""The write-ahead append log: fsync first, mutate memory second.

``Session.append`` (and the server's ``/v1/append`` route) must not lose
records across a crash, but cutting a full snapshot per append would
make appends O(index).  The classic answer is a WAL: each append writes
one durable record *before* the in-memory index mutates, so on restart
``snapshot + replay(WAL)`` reconstructs exactly the state every
acknowledged append saw.  Compaction (a fresh snapshot, then
:meth:`WriteAheadLog.reset`) bounds replay work.

Record framing (all integers little-endian)::

    RWL1 (4) | payload length u32 | header crc32 u32 | payload
    | payload crc32 u32

where the payload is a JSON object ``{"base": <records before the
append>, "names": [...]}``.  The framing distinguishes the two failure
shapes replay must treat differently, relying on the *prefix property*
of torn writes (a crash mid-append leaves a prefix of the record, never
scrambled middles -- the same assumption every journaling system makes):

* **torn tail** -- the file ends inside a record: fewer bytes than a
  header, or a valid header whose payload/trailer runs past EOF.  Only
  a crash mid-append produces this, so replay *truncates* the partial
  record and carries on; nothing acknowledged is ever behind the tear.
* **corruption** -- a complete record that fails its CRC, or a complete
  header that fails *its* CRC mid-file.  No torn write produces these,
  so replay raises the typed
  :class:`~repro.api.errors.WalReplayError` (degrading to a full
  rebuild one layer up) rather than guessing.

The ``base`` offset makes replay idempotent across the compaction crash
window: a fresh snapshot that crashed before :meth:`reset` leaves WAL
records describing appends the snapshot already contains -- replay skips
any record whose ``base`` is below the index's current length, and flags
a ``base`` *above* it (a gap: lost acknowledged data) as corruption.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.api.errors import WalReplayError
from repro.faults import fault_point

__all__ = ["WAL_MAGIC", "WalRecord", "WriteAheadLog"]

#: Per-record magic; version-bumped with the snapshot format.
WAL_MAGIC = b"RWL1"

_HEADER = struct.Struct("<4sII")  # magic, payload length, header crc
_TRAILER = struct.Struct("<I")  # payload crc

#: Sanity bound on one record's payload (a batch of appended names);
#: anything larger than this in a length field is corruption, not data.
_MAX_PAYLOAD = 1 << 30


class WalRecord:
    """One replayable append: the names added and the index size before."""

    __slots__ = ("base", "names")

    def __init__(self, base: int, names: tuple[str, ...]) -> None:
        self.base = base
        self.names = tuple(names)

    def __repr__(self) -> str:
        return f"WalRecord(base={self.base}, names={len(self.names)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WalRecord):
            return NotImplemented
        return self.base == other.base and self.names == other.names


def _encode_record(record: WalRecord) -> bytes:
    payload = json.dumps(
        {"base": record.base, "names": list(record.names)},
        ensure_ascii=False,
    ).encode("utf-8")
    header_crc = zlib.crc32(WAL_MAGIC + struct.pack("<I", len(payload)))
    return (
        _HEADER.pack(WAL_MAGIC, len(payload), header_crc)
        + payload
        + _TRAILER.pack(zlib.crc32(payload))
    )


class WriteAheadLog:
    """An append-only log of durable :class:`WalRecord` entries.

    ``append()`` is the durability barrier: it returns only after the
    record bytes are written *and fsynced*, so a crash at any later
    point (including before the in-memory index mutates) replays the
    append on the next boot.  ``replay()`` yields the surviving records
    in order, truncating a torn tail in place; ``reset()`` empties the
    log after a compaction snapshot has been published.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: Set by the last :meth:`replay`: whether a torn tail was cut.
        self.torn_tail_truncated = False

    # -- writing ----------------------------------------------------------------

    def append(self, names, base: int) -> WalRecord:
        """Durably log one append (names added atop ``base`` records)."""
        record = WalRecord(base, tuple(names))
        data = _encode_record(record)
        handle = os.open(
            self.path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644
        )
        try:
            fault_point("store.write")
            os.write(handle, data)
            fault_point("store.fsync")
            os.fsync(handle)
        finally:
            os.close(handle)
        return record

    def reset(self) -> None:
        """Empty the log (the snapshot now covers everything in it)."""
        handle = os.open(self.path, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
        try:
            os.fsync(handle)
        finally:
            os.close(handle)

    # -- reading ----------------------------------------------------------------

    def record_count(self) -> int:
        """How many intact records the log currently holds (no truncation)."""
        try:
            data = self._read()
        except FileNotFoundError:
            return 0
        records, _ = self._parse(data)
        return len(records)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def replay(self) -> list[WalRecord]:
        """The surviving records, oldest first; truncates a torn tail.

        A missing log file replays as empty.  A torn tail (see the module
        docstring) is cut off the file -- physically, so later appends
        start on a clean boundary -- and noted in
        :attr:`torn_tail_truncated`.  Mid-file corruption raises
        :class:`~repro.api.errors.WalReplayError`.
        """
        self.torn_tail_truncated = False
        try:
            data = self._read()
        except FileNotFoundError:
            return []
        records, good_end = self._parse(data)
        if good_end < len(data):
            self._truncate(good_end)
            self.torn_tail_truncated = True
        return records

    def _read(self) -> bytes:
        with open(self.path, "rb") as handle:
            return handle.read()

    def _parse(self, data: bytes) -> tuple[list[WalRecord], int]:
        """Decode records until EOF or a tear; corruption raises.

        Returns ``(records, offset of the first torn byte)`` -- the
        offset equals ``len(data)`` when the file ends cleanly.
        """
        records: list[WalRecord] = []
        offset = 0
        while offset < len(data):
            remaining = len(data) - offset
            if remaining < _HEADER.size:
                return records, offset  # torn: partial header at EOF
            magic, length, header_crc = _HEADER.unpack_from(data, offset)
            expected = zlib.crc32(magic + struct.pack("<I", length))
            if magic != WAL_MAGIC or header_crc != expected or length > _MAX_PAYLOAD:
                # A torn write cannot produce a *complete* bad header --
                # it produces a short one, handled above.
                raise WalReplayError(
                    f"corrupt append log {self.path!r}: bad record header "
                    f"at offset {offset}"
                )
            end = offset + _HEADER.size + length + _TRAILER.size
            if end > len(data):
                return records, offset  # torn: payload/trailer ran past EOF
            payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
            (payload_crc,) = _TRAILER.unpack_from(data, offset + _HEADER.size + length)
            if zlib.crc32(payload) != payload_crc:
                raise WalReplayError(
                    f"corrupt append log {self.path!r}: payload checksum "
                    f"mismatch at offset {offset}"
                )
            records.append(self._decode_payload(payload, offset))
            offset = end
        return records, offset

    def _decode_payload(self, payload: bytes, offset: int) -> WalRecord:
        try:
            entry = json.loads(payload.decode("utf-8"))
            base = entry["base"]
            names = entry["names"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise WalReplayError(
                f"corrupt append log {self.path!r}: undecodable record "
                f"at offset {offset}: {exc}"
            ) from exc
        if (
            not isinstance(base, int)
            or base < 0
            or not isinstance(names, list)
            or not all(isinstance(name, str) for name in names)
        ):
            raise WalReplayError(
                f"corrupt append log {self.path!r}: malformed record "
                f"at offset {offset}"
            )
        return WalRecord(base, tuple(names))

    def _truncate(self, size: int) -> None:
        handle = os.open(self.path, os.O_WRONLY)
        try:
            os.ftruncate(handle, size)
            os.fsync(handle)
        finally:
            os.close(handle)
