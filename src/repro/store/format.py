"""The on-disk snapshot container: magic, version, checksummed sections.

A snapshot is one file holding named binary *sections*.  The container
is deliberately dumb -- it knows nothing about indexes, only about
integrity -- so every durability property is checkable at this layer:

* an 8-byte magic (:data:`MAGIC`) and a format version
  (:data:`FORMAT_VERSION`) up front, so a foreign or future file fails
  before any section is interpreted;
* every section carries its payload length and a CRC32, verified on
  read -- a flipped byte anywhere in a payload surfaces as the typed
  :class:`~repro.api.errors.CorruptSnapshotError`, never as garbage
  data served to a query;
* section payloads are 8-byte aligned and the array sections
  (:func:`pack_int_array`) are raw little-endian ``int64`` columns, so
  a future reader can ``mmap`` the file and view postings/lengths
  in place instead of copying.

Publication is strictly atomic (:func:`write_snapshot_file`): the bytes
go to a same-directory temp file, are fsynced, and only then renamed
over the target (``os.replace``), followed by a directory fsync.  A
crash at *any* point before the rename -- including mid-write, proven by
the ``store.write`` kill fault in the chaos suite -- leaves the previous
snapshot byte-identical; a crash after the rename leaves the new one
complete.  There is no intermediate state.

Layout (all integers little-endian)::

    MAGIC (8) | format version u32 | section count u32
    per section:
        name length u32 | name (utf-8) | payload length u64 | crc32 u32
        | zero padding to 8-byte alignment | payload
        | zero padding to 8-byte alignment
"""

from __future__ import annotations

import os
import struct
import sys
import zlib
from array import array

from repro.api.errors import CorruptSnapshotError
from repro.faults import fault_point

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "pack_int_array",
    "pack_strings",
    "read_snapshot_file",
    "unpack_int_array",
    "unpack_strings",
    "write_snapshot_file",
]

#: The 8-byte file magic ("repro snapshot").
MAGIC = b"RPROSNAP"

#: The snapshot format version this build writes (and the only one it
#: reads).  Bump on any layout change; old readers then fail loudly with
#: the typed error instead of misreading sections.
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sII")
_SECTION_HEAD = struct.Struct("<I")  # name length
_SECTION_BODY = struct.Struct("<QI")  # payload length, crc32


def _pad(length: int) -> int:
    return (8 - length % 8) % 8


def _aligned(chunks: list[bytes], data: bytes) -> None:
    chunks.append(data)
    chunks.append(b"\x00" * _pad(len(data)))


def encode_snapshot(sections: dict[str, bytes]) -> bytes:
    """Serialise named sections into the container byte string."""
    chunks: list[bytes] = [_HEADER.pack(MAGIC, FORMAT_VERSION, len(sections))]
    for name, payload in sections.items():
        encoded = name.encode("utf-8")
        header = (
            _SECTION_HEAD.pack(len(encoded))
            + encoded
            + _SECTION_BODY.pack(len(payload), zlib.crc32(payload))
        )
        _aligned(chunks, header)
        _aligned(chunks, payload)
    return b"".join(chunks)


def decode_snapshot(data: bytes, what: str = "snapshot") -> dict[str, bytes]:
    """Parse and integrity-check a container; the inverse of
    :func:`encode_snapshot`.

    Raises :class:`~repro.api.errors.CorruptSnapshotError` on any
    violation: short file, bad magic, unsupported version, truncated
    section, checksum mismatch.
    """

    def fail(reason: str) -> CorruptSnapshotError:
        return CorruptSnapshotError(f"corrupt {what}: {reason}")

    if len(data) < _HEADER.size:
        raise fail(f"file is {len(data)} bytes, shorter than the header")
    magic, version, count = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise fail(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != FORMAT_VERSION:
        raise fail(
            f"unsupported format version {version} "
            f"(this build reads {FORMAT_VERSION})"
        )
    sections: dict[str, bytes] = {}
    offset = _HEADER.size
    for _ in range(count):
        if offset + _SECTION_HEAD.size > len(data):
            raise fail("truncated section header")
        (name_length,) = _SECTION_HEAD.unpack_from(data, offset)
        head_end = offset + _SECTION_HEAD.size + name_length + _SECTION_BODY.size
        if name_length > 1 << 16 or head_end > len(data):
            raise fail("truncated or oversized section name")
        try:
            name = data[
                offset + _SECTION_HEAD.size : offset + _SECTION_HEAD.size + name_length
            ].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise fail(f"undecodable section name: {exc}") from exc
        payload_length, crc = _SECTION_BODY.unpack_from(
            data, offset + _SECTION_HEAD.size + name_length
        )
        payload_start = head_end + _pad(head_end - offset)
        payload_end = payload_start + payload_length
        if payload_end > len(data):
            raise fail(f"section {name!r} is truncated")
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            raise fail(f"checksum mismatch in section {name!r}")
        sections[name] = payload
        offset = payload_end + _pad(payload_length)
    return sections


def write_snapshot_file(path: str, sections: dict[str, bytes]) -> int:
    """Atomically publish ``sections`` at ``path``; returns bytes written.

    Write to a same-directory temp file, fsync it, ``os.replace`` over
    the target, then fsync the directory -- the previous snapshot stays
    byte-identical until the rename, and the rename is atomic.
    """
    data = encode_snapshot(sections)
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = f"{path}.tmp.{os.getpid()}"
    handle = os.open(temp_path, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
    try:
        # The chaos suite kills the process here (and between the write
        # and the fsync): the rename below must not have happened yet.
        fault_point("store.write")
        os.write(handle, data)
        fault_point("store.fsync")
        os.fsync(handle)
    finally:
        os.close(handle)
    os.replace(temp_path, path)
    _fsync_directory(directory)
    return len(data)


def read_snapshot_file(path: str, what: str = "snapshot") -> dict[str, bytes]:
    """Read and integrity-check one snapshot container file."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise CorruptSnapshotError(f"unreadable {what}: {exc}") from exc
    return decode_snapshot(data, what=what)


def _fsync_directory(directory: str) -> None:
    """Durably record a rename in its directory (no-op where unsupported)."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows: directories are not openable; best effort
    try:
        os.fsync(handle)
    except OSError:
        pass
    finally:
        os.close(handle)


# -- column encodings ---------------------------------------------------------


def pack_int_array(values) -> bytes:
    """Encode an int sequence as a little-endian ``int64`` column."""
    column = values if isinstance(values, array) else array("q", values)
    if column.typecode != "q":
        column = array("q", column)
    if sys.byteorder == "big":
        column = array("q", column)
        column.byteswap()
    return column.tobytes()


def unpack_int_array(payload: bytes, name: str = "array") -> array:
    """Decode a little-endian ``int64`` column section."""
    if len(payload) % 8:
        raise CorruptSnapshotError(
            f"corrupt snapshot: section {name!r} is not a whole number of "
            f"int64 values ({len(payload)} bytes)"
        )
    column = array("q")
    column.frombytes(payload)
    if sys.byteorder == "big":
        column.byteswap()
    return column


def pack_strings(strings) -> bytes:
    """Encode a string list: count, end-offsets column, one utf-8 blob."""
    blobs = [text.encode("utf-8") for text in strings]
    offsets = array("q", [len(blobs)])
    total = 0
    for blob in blobs:
        total += len(blob)
        offsets.append(total)
    return pack_int_array(offsets) + b"".join(blobs)


def unpack_strings(payload: bytes, name: str = "strings") -> list[str]:
    """Decode a :func:`pack_strings` section (count + offsets + blob)."""

    def fail(reason: str) -> CorruptSnapshotError:
        return CorruptSnapshotError(f"corrupt snapshot: section {name!r} {reason}")

    if len(payload) < 8:
        raise fail("is shorter than its count header")
    (count,) = unpack_int_array(payload[:8], name)
    blob_start = 8 + count * 8
    if count < 0 or blob_start > len(payload):
        raise fail(f"claims an impossible string count {count}")
    offsets = unpack_int_array(payload[8:blob_start], name)
    blob = payload[blob_start:]
    if count and offsets[-1] != len(blob):
        raise fail("has offsets inconsistent with its blob length")
    strings: list[str] = []
    start = 0
    for stop in offsets:
        if stop < start or stop > len(blob):
            raise fail("has non-monotonic offsets")
        try:
            strings.append(blob[start:stop].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise fail(f"holds undecodable utf-8: {exc}") from exc
        start = stop
    return strings
