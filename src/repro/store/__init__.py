"""Durable indexes: crash-safe snapshots, a write-ahead log, warm restart.

The persistence layer under ``Session(store_dir=...)``, ``Session.save``
/ ``Session.load`` and the CLI ``repro index save/load`` + ``repro serve
--store``:

* :mod:`repro.store.format` -- the versioned, checksummed, atomically
  published container file;
* :mod:`repro.store.snapshot` -- ``SimilarityIndex`` <-> sections;
* :mod:`repro.store.wal` -- the fsync-before-mutate append log with
  torn-tail tolerance;
* :mod:`repro.store.store` -- :class:`SnapshotStore`, composing them
  into load / degrade-to-rebuild / compact semantics.
"""

from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    read_snapshot_file,
    write_snapshot_file,
)
from repro.store.snapshot import index_from_sections, index_to_sections
from repro.store.store import SnapshotStore
from repro.store.wal import WalRecord, WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "index_from_sections",
    "index_to_sections",
    "read_snapshot_file",
    "write_snapshot_file",
]
