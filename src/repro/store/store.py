""":class:`SnapshotStore`: one directory holding a durable index.

The store composes the container (:mod:`repro.store.format`), the
section codec (:mod:`repro.store.snapshot`) and the append log
(:mod:`repro.store.wal`) into the recovery contract the serving layer
builds on::

    store/
        index.snap   the latest atomic snapshot (previous one until the
                     publishing rename -- never a partial file)
        index.wal    appends acknowledged since that snapshot

* :meth:`save` publishes a snapshot atomically, then empties the WAL
  (order matters: a crash between the two leaves WAL records the
  snapshot already covers, which replay skips via their ``base``
  offsets -- never double-applies).
* :meth:`load` is the strict path: snapshot + WAL replay, raising the
  typed :class:`~repro.api.errors.CorruptSnapshotError` /
  :class:`~repro.api.errors.WalReplayError` on damage.
* :meth:`open` is the serving path: load when possible, otherwise
  **degrade to a full rebuild** from the supplied corpus -- counted in
  ``runtime_counters()["store_rebuilds"]`` and in :meth:`status`, the
  same observable-degradation pattern as the pool's crash recovery.
  Records that lived only in a corrupted store are gone by definition;
  the corpus the process was booted with is the recovery floor.
* :meth:`log_append` + :meth:`maybe_compact` are the write path: WAL
  first (fsynced), memory second, snapshot when the log grows past its
  thresholds.

Chaos hooks: the container's writer passes ``store.write`` /
``store.fsync`` fault points (shared with :meth:`WriteAheadLog.append`),
and every replayed WAL record passes ``store.replay`` -- an injected fault
there surfaces as :class:`WalReplayError`, driving the degraded path
deterministically.
"""

from __future__ import annotations

import os

from repro.api.errors import CorruptSnapshotError, WalReplayError
from repro.faults import FaultInjected, fault_point
from repro.store.format import read_snapshot_file, write_snapshot_file
from repro.store.snapshot import index_from_sections, index_to_sections
from repro.store.wal import WriteAheadLog

__all__ = ["SnapshotStore"]

SNAPSHOT_NAME = "index.snap"
WAL_NAME = "index.wal"


class SnapshotStore:
    """Durable snapshot + WAL lifecycle for one ``SimilarityIndex``.

    Parameters
    ----------
    directory:
        The store directory (created if missing).
    compact_after_records / compact_after_bytes:
        WAL growth thresholds past which :meth:`maybe_compact` cuts a
        fresh snapshot; either triggers.
    """

    def __init__(
        self,
        directory: str,
        *,
        compact_after_records: int = 256,
        compact_after_bytes: int = 1 << 20,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
        self.wal = WriteAheadLog(os.path.join(directory, WAL_NAME))
        self.compact_after_records = compact_after_records
        self.compact_after_bytes = compact_after_bytes
        #: Degraded loads this store performed (mirrors the process-wide
        #: ``store_rebuilds`` runtime counter, scoped to this store).
        self.rebuilds = 0
        #: Whether the last :meth:`open`/:meth:`load` used the snapshot.
        self.loaded_from_snapshot = False
        self._wal_records = 0

    # -- the write path ---------------------------------------------------------

    def save(self, index) -> int:
        """Atomically publish a snapshot of ``index``; returns its size.

        The WAL empties only *after* the snapshot rename: a crash
        between the two leaves records the snapshot already covers,
        which replay skips by their ``base`` offsets.
        """
        written = write_snapshot_file(
            self.snapshot_path, index_to_sections(index)
        )
        self.wal.reset()
        self._wal_records = 0
        return written

    def log_append(self, names, base: int):
        """Durably log one append *before* the in-memory mutation."""
        record = self.wal.append(names, base)
        self._wal_records += 1
        return record

    def maybe_compact(self, index) -> bool:
        """Cut a fresh snapshot when the WAL outgrows its thresholds."""
        if (
            self._wal_records >= self.compact_after_records
            or self.wal.size_bytes() >= self.compact_after_bytes
        ):
            self.save(index)
            return True
        return False

    # -- the read path ----------------------------------------------------------

    def load(self):
        """The strict load: snapshot + WAL replay, typed errors on damage.

        Raises :class:`FileNotFoundError` when no snapshot exists,
        :class:`~repro.api.errors.CorruptSnapshotError` /
        :class:`~repro.api.errors.WalReplayError` when the store cannot
        be trusted.  A torn WAL tail is not damage: it is truncated and
        the intact prefix served.
        """
        sections = read_snapshot_file(self.snapshot_path)
        index = index_from_sections(sections)
        records = self.wal.replay()
        snapshot_records = len(index)
        pending: list[str] = []
        try:
            for record in records:
                fault_point("store.replay")
                if record.base < snapshot_records:
                    continue  # the snapshot already covers this append
                if record.base != snapshot_records + len(pending):
                    raise WalReplayError(
                        f"append log {self.wal.path!r} has a gap: record "
                        f"expects {record.base} records, snapshot+replay "
                        f"holds {snapshot_records + len(pending)}"
                    )
                pending.extend(record.names)
        except FaultInjected as exc:
            raise WalReplayError(f"replay failed: {exc}") from exc
        if pending:
            # One batched append: one length-partition sort for the whole
            # tail, not one per logged record.
            index.append(pending)
        self._wal_records = len(records)
        self.loaded_from_snapshot = True
        return index

    def open(
        self,
        names=None,
        *,
        tokenizer=None,
        backend: str = "auto",
        cache_size: int = 256,
    ):
        """The serving load: use the store, degrade to a rebuild, seed.

        * An intact store loads (snapshot + replay).
        * A damaged store -- typed snapshot/WAL errors -- **rebuilds**
          from ``names`` (the boot corpus), publishes a fresh snapshot,
          and counts the degradation; with no corpus to rebuild from the
          typed error propagates.
        * An empty directory is a first boot: build from ``names`` (or
          empty, ready for appends) and publish the initial snapshot.
        """
        from repro.service import SimilarityIndex

        try:
            return self.load()
        except FileNotFoundError:
            if self.wal.size_bytes():
                # A WAL without its snapshot holds appends relative to
                # state that no longer exists: unrecoverable as-is.
                return self._rebuild(
                    names,
                    CorruptSnapshotError(
                        f"snapshot {self.snapshot_path!r} is missing but "
                        "its append log is not"
                    ),
                    tokenizer,
                    backend,
                    cache_size,
                )
        except (CorruptSnapshotError, WalReplayError) as exc:
            return self._rebuild(names, exc, tokenizer, backend, cache_size)
        # First boot: nothing on disk yet.
        index = SimilarityIndex(
            names or (),
            tokenizer=tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        return index

    def _rebuild(self, names, cause, tokenizer, backend: str, cache_size: int):
        """Degrade: full rebuild from the corpus, fresh snapshot, counted."""
        from repro.runtime import pool
        from repro.service import SimilarityIndex

        if names is None:
            raise cause
        pool._bump("store_rebuilds")
        self.rebuilds += 1
        self.loaded_from_snapshot = False
        index = SimilarityIndex(
            names,
            tokenizer=tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        return index

    # -- observability -----------------------------------------------------------

    def status(self) -> dict:
        """The ``store`` block ``/v1/health`` reports."""
        try:
            last_compaction = os.path.getmtime(self.snapshot_path)
        except OSError:
            last_compaction = None
        return {
            "loaded": self.loaded_from_snapshot,
            "wal_records": self._wal_records,
            "last_compaction": last_compaction,
            "torn_tail_truncated": self.wal.torn_tail_truncated,
            "rebuilds": self.rebuilds,
        }
