"""Assignment-problem solvers for the token-alignment bigraph.

Computing ``SLD`` (Sec. III-F) reduces to a minimum-weight perfect matching
on a complete bipartite graph whose edge weights are token-pair Levenshtein
distances -- the classic *assignment problem*.

* :func:`hungarian` -- exact ``O(n^3)`` solver (shortest-augmenting-path
  formulation with potentials, a.k.a. the Jonker-Volgenant variant of the
  Hungarian algorithm).  Written from scratch; tests cross-check it against
  ``scipy.optimize.linear_sum_assignment``.
* :func:`greedy_assignment` -- the paper's *greedy-token-aligning*
  approximation (Sec. III-G.5): repeatedly take the globally cheapest
  remaining edge and remove its endpoints.  ``O(n^2 log n)`` after the
  weights are known, never better than the optimum, and empirically within
  a whisker of it on name data (Fig. 4's recall of 0.99993+).

Both take a square cost matrix as a list of rows and return
``(assignment, total_cost)`` where ``assignment[i]`` is the column matched
to row ``i``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

Matrix = Sequence[Sequence[float]]


def hungarian(cost: Matrix) -> tuple[list[int], float]:
    """Solve the assignment problem exactly.

    Parameters
    ----------
    cost:
        Square matrix; ``cost[i][j]`` is the weight of assigning row ``i``
        to column ``j``.  Weights may be any finite real numbers.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column assigned to row ``i``; ``total`` is
        the minimum total weight.

    Raises
    ------
    ValueError
        If the matrix is empty or not square.

    Examples
    --------
    >>> hungarian([[4, 1], [2, 3]])
    ([1, 0], 3)
    """
    n = len(cost)
    if n == 0:
        raise ValueError("cost matrix must be non-empty")
    for row in cost:
        if len(row) != n:
            raise ValueError("cost matrix must be square")

    infinity = float("inf")
    # Potentials and matching arrays are 1-indexed; index 0 is a virtual row
    # used to seed each augmenting search.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match = [0] * (n + 1)  # match[j] = row matched to column j (1-indexed)
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        min_reduced = [infinity] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = infinity
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, n + 1):
                if used[j]:
                    continue
                current = row[j - 1] - u[i0] - v[j]
                if current < min_reduced[j]:
                    min_reduced[j] = current
                    way[j] = j0
                if min_reduced[j] < delta:
                    delta = min_reduced[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    min_reduced[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Unwind the augmenting path discovered by the search.
        while j0:
            j_prev = way[j0]
            match[j0] = match[j_prev]
            j0 = j_prev

    assignment = [0] * n
    for j in range(1, n + 1):
        assignment[match[j] - 1] = j - 1
    total = sum(cost[i][assignment[i]] for i in range(n))
    return assignment, total


def greedy_assignment(cost: Matrix) -> tuple[list[int], float]:
    """Greedy approximation to the assignment problem (Sec. III-G.5).

    Repeatedly selects the globally minimum-weight edge among rows and
    columns not yet matched, then removes both endpoints.  Ties break on
    (weight, row, column) so results are deterministic.

    Returns the same ``(assignment, total)`` shape as :func:`hungarian`;
    ``total`` is an upper bound on the optimum.

    Examples
    --------
    >>> greedy_assignment([[4, 1], [2, 3]])
    ([1, 0], 3.0)
    >>> # A case where greedy is suboptimal: picking the 0 forces the 10.
    >>> greedy_assignment([[0, 2], [3, 10]])
    ([0, 1], 10.0)
    >>> hungarian([[0, 2], [3, 10]])
    ([1, 0], 5)
    """
    n = len(cost)
    if n == 0:
        raise ValueError("cost matrix must be non-empty")
    for row in cost:
        if len(row) != n:
            raise ValueError("cost matrix must be square")

    heap = [
        (weight, i, j) for i, row in enumerate(cost) for j, weight in enumerate(row)
    ]
    heapq.heapify(heap)
    assignment = [-1] * n
    row_done = [False] * n
    col_done = [False] * n
    remaining = n
    total = 0.0
    while remaining:
        weight, i, j = heapq.heappop(heap)
        if row_done[i] or col_done[j]:
            continue
        assignment[i] = j
        row_done[i] = True
        col_done[j] = True
        total += weight
        remaining -= 1
    return assignment, total
