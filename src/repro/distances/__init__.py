"""Distance measures over strings and tokenized strings.

This package implements every distance the paper defines, uses, or compares
against:

* :func:`levenshtein` / :func:`levenshtein_within` -- character-level edit
  distance (Def. 1) and its thresholded banded variant.
* :func:`nld` / :func:`nld_within` -- Normalized Levenshtein Distance
  (Def. 2, borrowed from Li & Liu 2007) plus the bound Lemmas 3, 8, 9, 10.
* :func:`sld` / :func:`nsld` -- the paper's contributions: Setwise
  Levenshtein Distance (Def. 3) and Normalized Setwise Levenshtein Distance
  (Def. 4), computed via minimum-weight perfect matching on the token
  bigraph (Sec. III-F), with the greedy-token-aligning approximation
  (Sec. III-G.5).
* :mod:`repro.distances.jaro` -- Jaro and Jaro-Winkler (related work).
* :mod:`repro.distances.set_measures` -- crisp multiset Jaccard / cosine /
  Dice / Ruzicka / overlap (Sec. II-D's "too rigid" strawmen).
* :mod:`repro.distances.fuzzy_set_measures` -- Wang et al.'s fuzzy-token
  FJaccard / FCosine / FDice and Cohen et al.'s SoftTfIdf (Sec. V-D
  baselines).
* :mod:`repro.distances.fms` -- Chaudhuri et al.'s FMS / AFMS.

Verification backends: the edit-distance entry points accept a
``backend`` selector (``"auto" | "dp" | "bitparallel"``).  The classic DP
(``"dp"``, the default of the raw distance functions) is the reference
oracle; the bit-parallel Myers kernels of :mod:`repro.accel`
(``"bitparallel"``, what ``"auto"`` currently resolves to) are drop-in
equivalent and what the join layers default to.  The accelerated kernels
and the batched :func:`verify_pairs` API are re-exported here.
"""

from repro.accel import (
    Vocab,
    edit_distance,
    edit_distance_within,
    myers_distance,
    myers_within,
    verify_pairs,
)
from repro.distances.assignment import (
    greedy_assignment,
    hungarian,
)
from repro.distances.fms import afms, fms
from repro.distances.fuzzy_set_measures import (
    fuzzy_cosine,
    fuzzy_dice,
    fuzzy_jaccard,
    fuzzy_overlap,
    soft_tfidf,
)
from repro.distances.jaro import jaro, jaro_winkler
from repro.distances.levenshtein import (
    levenshtein,
    levenshtein_bounded,
    levenshtein_within,
)
from repro.distances.normalized import (
    max_ld_for_longer,
    max_ld_for_shorter,
    min_ld_exceeding_for_longer,
    min_ld_exceeding_for_shorter,
    min_length_for_nld,
    nld,
    nld_length_lower_bound,
    nld_within,
)
from repro.distances.set_measures import (
    multiset_cosine,
    multiset_dice,
    multiset_jaccard,
    multiset_overlap,
    multiset_ruzicka,
)
from repro.distances.setwise import (
    nsld,
    nsld_greedy,
    nsld_length_lower_bound,
    nsld_within,
    sld,
    sld_greedy,
    sld_lower_bound_from_histograms,
)

__all__ = [
    "levenshtein",
    "levenshtein_bounded",
    "levenshtein_within",
    "myers_distance",
    "myers_within",
    "edit_distance",
    "edit_distance_within",
    "verify_pairs",
    "Vocab",
    "nld",
    "nld_within",
    "nld_length_lower_bound",
    "min_length_for_nld",
    "max_ld_for_longer",
    "max_ld_for_shorter",
    "min_ld_exceeding_for_longer",
    "min_ld_exceeding_for_shorter",
    "sld",
    "sld_greedy",
    "nsld",
    "nsld_greedy",
    "nsld_within",
    "nsld_length_lower_bound",
    "sld_lower_bound_from_histograms",
    "hungarian",
    "greedy_assignment",
    "jaro",
    "jaro_winkler",
    "multiset_jaccard",
    "multiset_cosine",
    "multiset_dice",
    "multiset_ruzicka",
    "multiset_overlap",
    "fuzzy_jaccard",
    "fuzzy_cosine",
    "fuzzy_dice",
    "fuzzy_overlap",
    "soft_tfidf",
    "fms",
    "afms",
]
