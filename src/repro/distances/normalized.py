"""Normalized Levenshtein Distance (Def. 2) and the bound lemmas.

``NLD(x, y) = 2 * LD(x, y) / (|x| + |y| + LD(x, y))`` (Li & Liu 2007).
``NLD`` lies in ``[0, 1]`` (Lemma 2) and is a metric (Theorem 1).

This module also implements the length/LD bounds the paper derives to make
NLD-joins efficient:

* **Lemma 3**: with ``|y| >= |x|``,
  ``1 - |x|/|y| <= NLD(x, y) <= 2 / (|x|/|y| + 2)``.
* **Lemma 8**: if ``NLD(x, y) <= T`` and ``|x| <= |y|`` then
  ``LD(x, y) <= floor(2*T*|y| / (2-T))``; if ``|x| > |y|`` then
  ``LD(x, y) <= floor(T*|y| / (1-T))``.
* **Lemma 9**: if ``NLD(x, y) <= T`` and ``|x| <= |y|`` then
  ``ceil((1-T) * |y|) <= |x|`` (the *length condition*).
* **Lemma 10**: if ``NLD(x, y) > T`` and ``|x| <= |y|`` then
  ``LD(x, y) > floor(T*|y| / (2-T))``; if ``|x| > |y|`` then
  ``LD(x, y) > floor(2*T*|y| / (2-T))`` (used by the SLD lower-bound
  filter for *unmatched* tokens, Sec. III-E.2).

Lemmas 8 and 9 let MassJoin convert the NLD threshold ``T`` into a
per-length LD threshold ``U`` and a candidate length window, so the
LD-join machinery of PassJoin applies unchanged.
"""

from __future__ import annotations

import math

from repro.distances.levenshtein import OpsHook


def nld(x: str, y: str, ops: OpsHook = None, backend: str = "dp") -> float:
    """Normalized Levenshtein Distance (Def. 2).

    ``backend`` selects the LD kernel (``"auto" | "dp" | "bitparallel"``,
    see :mod:`repro.accel`); the default stays the DP reference oracle.

    Examples
    --------
    >>> nld("thomson", "thompson")
    0.125
    >>> nld("alex", "alexa")
    0.2
    """
    if x == y:
        return 0.0
    from repro.accel import edit_distance

    distance = edit_distance(x, y, ops=ops, backend=backend)
    return 2.0 * distance / (len(x) + len(y) + distance)


def nld_within(
    x: str, y: str, threshold: float, ops: OpsHook = None, backend: str = "dp"
) -> float | None:
    """``NLD(x, y)`` if it is at most ``threshold``, else ``None``.

    Converts the NLD threshold into an LD limit via Lemma 8 and runs the
    banded verification kernel of the selected ``backend``, so the cost is
    ``O(U * min(|x|, |y|))`` (or the bit-parallel column count) instead of
    quadratic.
    """
    if threshold < 0:
        return None
    if x == y:
        return 0.0
    if threshold >= 1.0:
        return nld(x, y, ops=ops, backend=backend)
    shorter, longer = (x, y) if len(x) <= len(y) else (y, x)
    # Lemma 9: length condition -- prune without touching characters.
    if len(shorter) < min_length_for_nld(threshold, len(longer)):
        if ops is not None:
            ops(1)
        return None
    limit = max_ld_for_shorter(threshold, len(longer))
    from repro.accel import edit_distance_within

    distance = edit_distance_within(x, y, limit, ops=ops, backend=backend)
    if distance is None:
        return None
    value = 2.0 * distance / (len(x) + len(y) + distance)
    return value if value <= threshold else None


# ---------------------------------------------------------------------------
# Lemma 3: NLD bounds from lengths alone.
# ---------------------------------------------------------------------------


def nld_length_lower_bound(len_x: int, len_y: int) -> float:
    """Lower bound on ``NLD`` from string lengths (Lemma 3).

    With ``|y| >= |x|``: ``NLD(x, y) >= 1 - |x|/|y|``.  Symmetric in its
    arguments.  Returns 0.0 when both lengths are zero (equal empty strings).
    """
    shorter, longer = sorted((len_x, len_y))
    if longer == 0:
        return 0.0
    return 1.0 - shorter / longer


def nld_length_upper_bound(len_x: int, len_y: int) -> float:
    """Upper bound on ``NLD`` from string lengths (Lemma 3).

    With ``|y| >= |x|``: ``NLD(x, y) <= 2 / (|x|/|y| + 2)``.
    """
    shorter, longer = sorted((len_x, len_y))
    if longer == 0:
        return 0.0
    return 2.0 / (shorter / longer + 2.0)


# ---------------------------------------------------------------------------
# Lemma 8: LD upper bounds implied by NLD <= T.
# ---------------------------------------------------------------------------


def max_ld_for_shorter(threshold: float, len_y: int) -> int:
    """Max ``LD(x, y)`` given ``NLD(x, y) <= T`` and ``|x| <= |y|`` (Lemma 8).

    ``LD(x, y) <= floor(2*T*|y| / (2-T))``.  ``len_y`` is the length of the
    *longer* string ``y``.

    The closed form is floor-of-float, which can land one below the true
    cap when the exact NLD sits on the threshold (the ``2*T*|y|/(2-T)``
    rounding differs from the ``2*LD/(|x|+|y|+LD)`` value the verifier
    compares).  The cap is therefore widened while ``cap + 1`` still
    satisfies the value-shaped inequality at the loosest lengths
    (``|x| = |y|``), so a thresholded verification never misses a pair
    whose computed NLD is ``<= T``.
    """
    if threshold >= 2.0:
        raise ValueError("NLD threshold must be < 2 (it is at most 1)")
    cap = math.floor(2.0 * threshold * len_y / (2.0 - threshold))
    while 2.0 * (cap + 1) / (2.0 * len_y + (cap + 1)) <= threshold:
        cap += 1
    return cap


def max_ld_for_longer(threshold: float, len_y: int) -> int:
    """Max ``LD(x, y)`` given ``NLD(x, y) <= T`` and ``|x| > |y|`` (Lemma 8).

    ``LD(x, y) <= floor(T*|y| / (1-T))``.  ``len_y`` is the length of the
    *shorter* string ``y``.

    Widened against the float knife edge exactly like
    :func:`max_ld_for_shorter`: ``cap + 1`` is admitted while it still
    satisfies the value-shaped inequality at the loosest lengths
    (``|x| = |y| + LD``, where ``NLD = LD/(|y|+LD)``).
    """
    if threshold >= 1.0:
        raise ValueError("this bound requires T < 1")
    cap = math.floor(threshold * len_y / (1.0 - threshold))
    while (cap + 1.0) / (len_y + (cap + 1.0)) <= threshold:
        cap += 1
    return cap


# ---------------------------------------------------------------------------
# Lemma 9: the length condition.
# ---------------------------------------------------------------------------


def min_length_for_nld(threshold: float, len_y: int) -> int:
    """Minimum ``|x|`` for ``NLD(x, y) <= T`` with ``|x| <= |y|`` (Lemma 9).

    ``ceil((1-T) * |y|) <= |x|``.  Two tokens whose lengths violate this
    window cannot be NLD-similar, so MassJoin never compares them.

    Tightened against the float knife edge like the Lemma 8 caps: the
    floor of the window is lowered while a length just below it could
    still produce an NLD value ``<= T`` under the verifier's own
    arithmetic (``NLD >= 2*(|y|-|x|)/(|x|+|y|+(|y|-|x|))``), so the
    length condition never prunes a pair whose computed NLD meets the
    threshold.
    """
    minimum = math.ceil((1.0 - threshold) * len_y)
    while minimum > 0:
        shorter = minimum - 1
        difference = len_y - shorter
        if 2.0 * difference / (shorter + len_y + difference) > threshold:
            break
        minimum = shorter
    return minimum


def length_window(threshold: float, len_y: int) -> tuple[int, int]:
    """Inclusive window of lengths ``|x|`` that may satisfy ``NLD <= T``
    when compared with a string of length ``len_y`` and ``|x| <= |y|``.

    Returns ``(ceil((1-T)*len_y), len_y)`` per Lemma 9.  The symmetric case
    ``|x| > |y|`` is covered by evaluating the window of the longer string.
    """
    return (min_length_for_nld(threshold, len_y), len_y)


# ---------------------------------------------------------------------------
# Lemma 10: LD lower bounds implied by NLD > T (for unmatched token pairs).
# ---------------------------------------------------------------------------


def min_ld_exceeding_for_shorter(threshold: float, len_y: int) -> int:
    """Strict lower bound on ``LD(x, y)`` given ``NLD(x, y) > T`` and
    ``|x| <= |y|`` (Lemma 10): ``LD(x, y) > floor(T*|y| / (2-T))``.

    Returns the floor value; the true LD is strictly greater.  ``len_y`` is
    the length of the longer string.
    """
    return math.floor(threshold * len_y / (2.0 - threshold))


def min_ld_exceeding_for_longer(threshold: float, len_y: int) -> int:
    """Strict lower bound on ``LD(x, y)`` given ``NLD(x, y) > T`` and
    ``|x| > |y|`` (Lemma 10): ``LD(x, y) > floor(2*T*|y| / (2-T))``.

    ``len_y`` is the length of the shorter string.
    """
    return math.floor(2.0 * threshold * len_y / (2.0 - threshold))
