"""Fuzzy-token set similarity measures (Sec. V-D baselines).

Wang, Li & Feng (TODS 2014) extend the crisp set measures by letting tokens
match *fuzzily*: two tokens may be matched if their token similarity is at
least a threshold ``T1``; the *fuzzy overlap* of two token sets is the
maximum total similarity over a one-to-one matching of their tokens.  The
fuzzy variants of Jaccard / cosine / Dice then substitute the fuzzy overlap
for the crisp intersection size:

* ``FJaccard = O / (|x| + |y| - O)``
* ``FCosine  = O / sqrt(|x| * |y|)``
* ``FDice    = 2 * O / (|x| + |y|)``

where ``O`` is the fuzzy overlap and ``|.|`` the (weighted) set size.  The
paper's Fig. 6 compares NSLD against the *weighted* versions, where each
token carries a weight (typically its IDF) and a matched pair contributes
``similarity * (w1 + w2) / 2``.

These measures are provably non-metric and require tuning two unrelated
thresholds (``T1`` on tokens, ``T2`` on the set similarity), which is the
paper's core usability criticism.

Cohen, Ravikumar & Fienberg's SoftTfIdf (2003) is also provided: a
TF-IDF-weighted soft overlap where a token matches its best Jaro-Winkler
partner above a threshold.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from repro.accel import token_nld
from repro.distances.assignment import hungarian
from repro.distances.jaro import jaro_winkler

TokenSimilarity = Callable[[str, str], float]
TokenWeights = Mapping[str, float] | None


def _default_token_similarity(a: str, b: str) -> float:
    """Edit similarity ``1 - NLD`` -- Wang et al.'s token predicate.

    Routed through :func:`repro.accel.token_nld`, so tokens are interned
    to dense ints with precomputed bit-masks and the skewed head of the
    token distribution answers from the bounded memo; the value is
    identical to ``1 - nld(a, b)``.
    """
    return 1.0 - token_nld(a, b)


def _weight(token: str, weights: TokenWeights) -> float:
    if weights is None:
        return 1.0
    return weights.get(token, 1.0)


def fuzzy_overlap(
    x: Sequence[str],
    y: Sequence[str],
    token_threshold: float = 0.8,
    similarity: TokenSimilarity | None = None,
    weights: TokenWeights = None,
) -> float:
    """Maximum-weight fuzzy token overlap (Wang et al.).

    Builds the bipartite graph of token pairs whose similarity is at least
    ``token_threshold`` and finds the matching maximising the total
    contribution ``sim * (w_a + w_b) / 2`` via the Hungarian algorithm
    (exact -- token counts are small).

    Parameters
    ----------
    token_threshold:
        Wang et al.'s ``T1``; pairs below it contribute nothing.
    similarity:
        Token similarity in ``[0, 1]``; defaults to edit similarity
        ``1 - NLD``.
    weights:
        Optional token weight map (e.g. IDF); missing tokens weigh 1.0.

    Examples
    --------
    >>> fuzzy_overlap(["chan", "kalan"], ["chan", "kalan"])
    2.0
    >>> fuzzy_overlap(["abc"], ["xyz"])
    0.0
    """
    if not x or not y:
        return 0.0
    sim = similarity or _default_token_similarity
    n = max(len(x), len(y))
    # Maximise by minimising negated contributions on a padded square matrix.
    matrix: list[list[float]] = []
    for i in range(n):
        row: list[float] = []
        for j in range(n):
            if i < len(x) and j < len(y):
                value = sim(x[i], y[j])
                if value >= token_threshold:
                    pair_weight = (_weight(x[i], weights) + _weight(y[j], weights)) / 2
                    row.append(-value * pair_weight)
                else:
                    row.append(0.0)
            else:
                row.append(0.0)
        matrix.append(row)
    _, total = hungarian(matrix)
    return -total + 0.0  # "+ 0.0" normalises IEEE negative zero


def _weighted_size(tokens: Sequence[str], weights: TokenWeights) -> float:
    return sum(_weight(token, weights) for token in tokens)


def fuzzy_jaccard(
    x: Sequence[str],
    y: Sequence[str],
    token_threshold: float = 0.8,
    similarity: TokenSimilarity | None = None,
    weights: TokenWeights = None,
) -> float:
    """Weighted fuzzy Jaccard similarity (Wang et al.)."""
    overlap = fuzzy_overlap(x, y, token_threshold, similarity, weights)
    denominator = _weighted_size(x, weights) + _weighted_size(y, weights) - overlap
    if denominator <= 0:
        return 1.0 if not x and not y else 0.0
    return overlap / denominator


def fuzzy_cosine(
    x: Sequence[str],
    y: Sequence[str],
    token_threshold: float = 0.8,
    similarity: TokenSimilarity | None = None,
    weights: TokenWeights = None,
) -> float:
    """Weighted fuzzy cosine similarity (Wang et al.)."""
    overlap = fuzzy_overlap(x, y, token_threshold, similarity, weights)
    denominator = math.sqrt(_weighted_size(x, weights) * _weighted_size(y, weights))
    if denominator == 0:
        return 1.0 if not x and not y else 0.0
    return overlap / denominator


def fuzzy_dice(
    x: Sequence[str],
    y: Sequence[str],
    token_threshold: float = 0.8,
    similarity: TokenSimilarity | None = None,
    weights: TokenWeights = None,
) -> float:
    """Weighted fuzzy Dice similarity (Wang et al.)."""
    overlap = fuzzy_overlap(x, y, token_threshold, similarity, weights)
    denominator = _weighted_size(x, weights) + _weighted_size(y, weights)
    if denominator == 0:
        return 1.0
    return 2.0 * overlap / denominator


def soft_tfidf(
    x: Sequence[str],
    y: Sequence[str],
    token_threshold: float = 0.9,
    weights: TokenWeights = None,
) -> float:
    """SoftTfIdf similarity (Cohen et al. 2003).

    For each token ``w`` of ``x`` whose best Jaro-Winkler partner ``v`` in
    ``y`` scores above ``token_threshold``, accumulate
    ``V(w, x) * V(v, y) * JW(w, v)`` where ``V`` are L2-normalised token
    weights.  Note the measure is asymmetric in general (it iterates over
    ``x``'s tokens); the paper lists this as one of its drawbacks.
    """
    if not x or not y:
        return 1.0 if not x and not y else 0.0

    def normalised(tokens: Sequence[str]) -> dict[str, float]:
        raw = {token: _weight(token, weights) for token in set(tokens)}
        norm = math.sqrt(sum(value * value for value in raw.values()))
        return {token: value / norm for token, value in raw.items()}

    vx, vy = normalised(x), normalised(y)
    total = 0.0
    for token_x in vx:
        best_sim, best_token = 0.0, None
        for token_y in vy:
            value = jaro_winkler(token_x, token_y)
            if value > best_sim:
                best_sim, best_token = value, token_y
        if best_token is not None and best_sim > token_threshold:
            total += vx[token_x] * vy[best_token] * best_sim
    return total
