"""Setwise Levenshtein Distance (Def. 3) and its normalisation (Def. 4).

``SLD(x^t, y^t)`` is the minimum number of character-level edit operations
on tokens -- with free ``AddEmptyToken`` / ``RemoveEmptyToken`` set-level
edits -- transforming one tokenized string into the other.  Operationally
(Sec. III-F): pad the smaller multiset with empty tokens until both have
``k = max(T(x), T(y))`` tokens, build the complete bipartite graph whose
edge weights are token-pair Levenshtein distances, and take the weight of
the minimum-weight perfect matching.

``NSLD(x^t, y^t) = 2*SLD / (L(x) + L(y) + SLD)`` lies in ``[0, 1]``
(Lemma 5) and is a metric (Theorem 2).

This module provides:

* :func:`sld` / :func:`nsld` -- exact values via the Hungarian algorithm;
* :func:`sld_greedy` / :func:`nsld_greedy` -- the greedy-token-aligning
  approximation (Sec. III-G.5), an upper bound on the exact value;
* :func:`nsld_within` -- thresholded verification with the Lemma 6 length
  shortcut, TSJ's final verify step;
* :func:`nsld_length_lower_bound` -- Lemma 6's bound from aggregate lengths
  (TSJ's length filter, Sec. III-E.1);
* :func:`sld_lower_bound_from_histograms` -- the token-length-histogram
  lower bound driving the distance-lower-bound filter (Sec. III-E.2, built
  on Lemma 10).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.distances.assignment import greedy_assignment, hungarian
from repro.distances.levenshtein import OpsHook
from repro.distances.normalized import (
    min_ld_exceeding_for_longer,
    min_ld_exceeding_for_shorter,
)
from repro.tokenize.tokenized_string import TokenizedString

#: Known-similar token pair for the histogram filter: (len_x_token,
#: len_y_token, exact LD).  Produced by the similar-token candidate
#: generation phase, which computes token LDs as a by-product.
SimilarPair = tuple[int, int, int]


def _token_cost_matrix(
    x: TokenizedString,
    y: TokenizedString,
    ops: OpsHook = None,
    backend: str = "dp",
    token_ld=None,
) -> list[list[int]]:
    """The padded token-vs-token LD matrix of Sec. III-F.

    Row ``i`` corresponds to the ``i``-th token of ``x`` (or an empty pad
    token), column ``j`` to the ``j``-th token of ``y``.  ``LD(t, "")`` is
    ``len(t)``, so pad entries need no DP.

    Token pairs go through :func:`repro.accel.token_distance`: under a
    fast ``backend`` tokens are interned to dense ints with precomputed
    Myers tables and the skewed head of the token distribution answers
    from the bounded memo instead of re-running the kernel;
    ``backend="dp"`` dispatches straight to the plain DP oracle (no
    interning, no memo).  ``token_ld`` overrides the token-distance
    source entirely (it must return exact LDs) -- the serving layer
    routes it to a snapshot-private vocab so the padding/aligning/
    normalisation logic stays single-sourced here.
    """
    if token_ld is None:
        from repro.accel import token_distance

        def token_ld(tx, ty):
            return token_distance(tx, ty, ops=ops, backend=backend)

    k = max(x.token_count, y.token_count)
    x_tokens = list(x.tokens) + [""] * (k - x.token_count)
    y_tokens = list(y.tokens) + [""] * (k - y.token_count)
    matrix: list[list[int]] = []
    for tx in x_tokens:
        row = []
        for ty in y_tokens:
            if not tx:
                row.append(len(ty))
            elif not ty:
                row.append(len(tx))
            else:
                row.append(token_ld(tx, ty))
        matrix.append(row)
    return matrix


def sld(
    x: TokenizedString,
    y: TokenizedString,
    ops: OpsHook = None,
    backend: str = "dp",
    token_ld=None,
) -> int:
    """Exact Setwise Levenshtein Distance (Def. 3).

    ``token_ld`` optionally overrides the token-distance source (see
    :func:`_token_cost_matrix`); values are identical whenever the
    callable returns exact LDs.

    Examples
    --------
    >>> from repro.tokenize import TokenizedString
    >>> sld(TokenizedString(["chan", "kalan"]), TokenizedString(["chank", "alan"]))
    2
    >>> sld(TokenizedString(["chan", "kalan"]), TokenizedString(["alan"]))
    5
    """
    if x == y:
        return 0
    if x.token_count == 0:
        return y.aggregate_length
    if y.token_count == 0:
        return x.aggregate_length
    matrix = _token_cost_matrix(x, y, ops=ops, backend=backend, token_ld=token_ld)
    _, total = hungarian(matrix)
    return int(total)


def sld_greedy(
    x: TokenizedString,
    y: TokenizedString,
    ops: OpsHook = None,
    backend: str = "dp",
) -> int:
    """Greedy-token-aligning SLD (Sec. III-G.5); an upper bound on :func:`sld`."""
    if x == y:
        return 0
    if x.token_count == 0:
        return y.aggregate_length
    if y.token_count == 0:
        return x.aggregate_length
    matrix = _token_cost_matrix(x, y, ops=ops, backend=backend)
    _, total = greedy_assignment(matrix)
    return int(total)


def _normalize(sld_value: int, x: TokenizedString, y: TokenizedString) -> float:
    denominator = x.aggregate_length + y.aggregate_length + sld_value
    if denominator == 0:
        return 0.0  # both tokenized strings are empty
    return 2.0 * sld_value / denominator


def nsld(
    x: TokenizedString,
    y: TokenizedString,
    ops: OpsHook = None,
    backend: str = "dp",
    token_ld=None,
) -> float:
    """Exact Normalized Setwise Levenshtein Distance (Def. 4).

    Examples
    --------
    >>> from repro.tokenize import TokenizedString
    >>> nsld(TokenizedString(["chan", "kalan"]), TokenizedString(["chank", "alan"]))
    0.2
    """
    return _normalize(sld(x, y, ops=ops, backend=backend, token_ld=token_ld), x, y)


def nsld_greedy(
    x: TokenizedString,
    y: TokenizedString,
    ops: OpsHook = None,
    backend: str = "dp",
) -> float:
    """NSLD under greedy token aligning; an upper bound on :func:`nsld`."""
    return _normalize(sld_greedy(x, y, ops=ops, backend=backend), x, y)


def nsld_within(
    x: TokenizedString,
    y: TokenizedString,
    threshold: float,
    greedy: bool = False,
    ops: OpsHook = None,
    backend: str = "dp",
) -> float | None:
    """``NSLD(x, y)`` if at most ``threshold``, else ``None``.

    Applies the Lemma 6 length shortcut before building the bigraph, then
    verifies with the exact Hungarian aligner or the greedy approximation.
    With ``greedy=True`` a pair whose exact NSLD is within the threshold may
    be missed (never the reverse) -- precision stays 1.0, recall may dip,
    exactly the trade described in Sec. V-B.
    """
    if threshold < 0:
        return None
    if nsld_length_lower_bound(x.aggregate_length, y.aggregate_length) > threshold:
        return None
    if greedy:
        value = nsld_greedy(x, y, ops=ops, backend=backend)
    else:
        value = nsld(x, y, ops=ops, backend=backend)
    return value if value <= threshold else None


# ---------------------------------------------------------------------------
# Lemma 6: NSLD bounds from aggregate lengths.
# ---------------------------------------------------------------------------


def nsld_length_lower_bound(length_x: int, length_y: int) -> float:
    """Lower bound on NSLD from aggregate token lengths (Lemma 6).

    With ``L(y) >= L(x)``: ``NSLD(x, y) >= 1 - L(x)/L(y)``.  Symmetric.
    This is TSJ's length filter (Sec. III-E.1): ship ``L(.)`` with each
    tokenized-string id and discard pairs whose bound already exceeds ``T``.

    Computed as ``2*d / (L(x)+L(y)+d)`` with ``d = |L(x)-L(y)|`` -- the
    normalisation shape of :func:`nsld` evaluated at ``SLD = d``, which
    is algebraically equal to ``1 - L(x)/L(y)`` but rounds to the
    *identical* float as the exact NSLD whenever the true SLD is the
    length difference.  The ``1 - shorter/longer`` form can round one
    ulp above the exact value and prune a pair whose NSLD sits exactly
    on the threshold (found by the property tests).
    """
    shorter, longer = sorted((length_x, length_y))
    if longer == 0:
        return 0.0
    difference = longer - shorter
    return 2.0 * difference / (shorter + longer + difference)


def nsld_length_upper_bound(length_x: int, length_y: int) -> float:
    """The paper's Lemma 6 *upper* bound -- **erratum: not actually valid**.

    Lemma 6 claims, with ``L(y) >= L(x)``,
    ``NSLD(x, y) <= 2 / (L(x)/L(y) + 2)``, via ``SLD <= L(y)``.  That step
    holds for plain strings (Lemma 3: ``LD <= max(|x|, |y|)``) but fails
    for tokenized strings when token counts mismatch: for
    ``x = {"bb"}, y = {"a", "a"}`` the optimal alignment pairs ``"bb"``
    with one ``"a"`` (LD 2) and pads the other (LD 1), so
    ``SLD = 3 > L(y) = 2`` and ``NSLD = 6/7 > 2/3``.

    The function reproduces the published formula for reference; nothing
    in TSJ relies on it (the filters use only the *lower* bound, which is
    sound -- see the property tests).  A trivially valid upper bound is
    ``NSLD <= 1`` (Lemma 5).
    """
    shorter, longer = sorted((length_x, length_y))
    if longer == 0:
        return 0.0
    return 2.0 / (shorter / longer + 2.0)


# ---------------------------------------------------------------------------
# Sec. III-E.2: the distance-lower-bound filter.
# ---------------------------------------------------------------------------


def sld_lower_bound_from_histograms(
    histogram_x: Mapping[int, int],
    histogram_y: Mapping[int, int],
    similar_pairs: Iterable[SimilarPair],
    threshold: float,
    use_lemma10: bool = True,
) -> int:
    """A sound lower bound on ``SLD`` from token-length histograms.

    TSJ ships, with each tokenized-string id, the histogram of its token
    lengths.  During candidate generation the NLD-join has already computed
    the exact LD of every *similar* token pair (NLD <= ``threshold``);
    every other token pair is known to have NLD > ``threshold``, so Lemma 10
    yields a strict LD lower bound for it from lengths alone.

    The bound charges every token slot the cheapest partner it could
    possibly be matched with in a perfect matching:

    * a known-similar length pair costs at least the smallest LD observed
      for those lengths;
    * any other real-token pair costs at least
      ``max(|len_a - len_b|, lemma10_bound + 1)``;
    * a pad (empty) token partner costs the token's full length, and is only
      available when the token counts differ.

    Summing the per-slot minima on either side gives a valid lower bound
    (each slot is matched exactly once and true cost >= per-edge bound);
    the final bound is the max over both sides and the aggregate-length
    difference.

    Parameters
    ----------
    histogram_x, histogram_y:
        ``token length -> multiplicity`` maps (see
        :attr:`TokenizedString.length_histogram`).
    similar_pairs:
        ``(len_x_token, len_y_token, ld)`` triples for token pairs between
        ``x`` and ``y`` known to satisfy ``NLD <= threshold``.
    threshold:
        The NSLD join threshold ``T``.
    use_lemma10:
        Apply the Lemma 10 strict bound to token pairs absent from
        ``similar_pairs``.  Requires ``similar_pairs`` to be *complete*
        (every NLD-similar token pair listed) -- which only the fuzzy
        matching mode guarantees.  With ``False`` the bound degrades to
        per-slot length differences, which stays sound under incomplete
        knowledge (the exact-token-matching mode).

    Returns
    -------
    int
        A value ``<= SLD(x, y)``.
    """
    count_x = sum(histogram_x.values())
    count_y = sum(histogram_y.values())
    length_x = sum(size * mult for size, mult in histogram_x.items())
    length_y = sum(size * mult for size, mult in histogram_y.items())

    # Cheapest known LD per (len_x, len_y) pair of lengths.  Histograms lose
    # token identity, so soundness requires the minimum over observed pairs.
    best_similar: dict[tuple[int, int], int] = {}
    for len_a, len_b, distance in similar_pairs:
        key = (len_a, len_b)
        if key not in best_similar or distance < best_similar[key]:
            best_similar[key] = distance

    def pair_bound(len_a: int, len_b: int, a_is_x: bool) -> int:
        key = (len_a, len_b) if a_is_x else (len_b, len_a)
        if key in best_similar:
            return best_similar[key]
        longer, shorter = max(len_a, len_b), min(len_a, len_b)
        if not use_lemma10:
            return longer - shorter  # length difference is always an LD bound
        # Lemma 10: the pair is NLD-dissimilar, so its LD strictly exceeds
        # the floor bound -- hence ">= bound + 1".  LD is symmetric, so both
        # orientations of the lemma apply and we may take the stronger one.
        lemma10 = min_ld_exceeding_for_shorter(threshold, longer) + 1
        if len_a != len_b:
            lemma10 = max(lemma10, min_ld_exceeding_for_longer(threshold, shorter) + 1)
        return max(longer - shorter, lemma10)

    def side_bound(
        hist_a: Mapping[int, int],
        hist_b: Mapping[int, int],
        count_a: int,
        count_b: int,
        a_is_x: bool,
    ) -> int:
        pads_available = count_a > count_b  # side b gets padded with epsilon
        total = 0
        for len_a, mult_a in hist_a.items():
            cheapest = len_a if pads_available else None
            for len_b in hist_b:
                bound = pair_bound(len_a, len_b, a_is_x)
                if cheapest is None or bound < cheapest:
                    cheapest = bound
                if cheapest == 0:
                    break
            total += (cheapest or 0) * mult_a
        return total

    bound_x = side_bound(histogram_x, histogram_y, count_x, count_y, a_is_x=True)
    bound_y = side_bound(histogram_y, histogram_x, count_y, count_x, a_is_x=False)
    return max(bound_x, bound_y, abs(length_x - length_y))


def nsld_lower_bound_from_histograms(
    histogram_x: Mapping[int, int],
    histogram_y: Mapping[int, int],
    similar_pairs: Iterable[SimilarPair],
    threshold: float,
    use_lemma10: bool = True,
) -> float:
    """NSLD lower bound derived from :func:`sld_lower_bound_from_histograms`.

    ``NSLD = 2*SLD / (L(x)+L(y)+SLD)`` is increasing in SLD, so substituting
    an SLD lower bound yields an NSLD lower bound.  TSJ prunes a candidate
    pair when this exceeds the join threshold.
    """
    length_x = sum(size * mult for size, mult in histogram_x.items())
    length_y = sum(size * mult for size, mult in histogram_y.items())
    bound = sld_lower_bound_from_histograms(
        histogram_x, histogram_y, similar_pairs, threshold, use_lemma10
    )
    denominator = length_x + length_y + bound
    if denominator == 0:
        return 0.0
    return 2.0 * bound / denominator
