"""Distance <-> similarity conversion schemes (Sec. II-B).

The paper states the join problem both ways: find pairs with
``d(x, y) <= T`` or, "given a conversion scheme lambda", pairs with
similarity at least ``lambda(T)``, and lists the three common schemes::

    lambda(T) = 1 - T        (complement; for distances in [0, 1])
    lambda(T) = 1 / (1 + T)  (inverse)
    lambda(T) = e^(-T)       (exponential)

All three are strictly decreasing, so thresholding similarity at
``lambda(T)`` is exactly thresholding distance at ``T``.
"""

from __future__ import annotations

import enum
import math


class ConversionScheme(str, enum.Enum):
    """The distance-to-similarity schemes of Sec. II-B."""

    COMPLEMENT = "complement"      # 1 - T
    INVERSE = "inverse"            # 1 / (1 + T)
    EXPONENTIAL = "exponential"    # e^-T


def distance_to_similarity(
    distance: float,
    scheme: ConversionScheme | str = ConversionScheme.COMPLEMENT,
) -> float:
    """Convert a distance to a similarity under the chosen scheme.

    Examples
    --------
    >>> distance_to_similarity(0.25)
    0.75
    >>> distance_to_similarity(1.0, "inverse")
    0.5
    >>> round(distance_to_similarity(0.0, "exponential"), 6)
    1.0
    """
    if distance < 0:
        raise ValueError("distances are non-negative")
    scheme = ConversionScheme(scheme)
    if scheme is ConversionScheme.COMPLEMENT:
        if distance > 1:
            raise ValueError("the complement scheme needs distances in [0, 1]")
        return 1.0 - distance
    if scheme is ConversionScheme.INVERSE:
        return 1.0 / (1.0 + distance)
    return math.exp(-distance)


def similarity_to_distance(
    similarity: float,
    scheme: ConversionScheme | str = ConversionScheme.COMPLEMENT,
) -> float:
    """Invert :func:`distance_to_similarity` (the schemes are bijective).

    Examples
    --------
    >>> similarity_to_distance(0.75)
    0.25
    >>> similarity_to_distance(0.5, "inverse")
    1.0
    """
    scheme = ConversionScheme(scheme)
    if scheme is ConversionScheme.COMPLEMENT:
        if not 0 <= similarity <= 1:
            raise ValueError("complement similarities live in [0, 1]")
        return 1.0 - similarity
    if scheme is ConversionScheme.INVERSE:
        if not 0 < similarity <= 1:
            raise ValueError("inverse similarities live in (0, 1]")
        return 1.0 / similarity - 1.0
    if not 0 < similarity <= 1:
        raise ValueError("exponential similarities live in (0, 1]")
    return -math.log(similarity)
