"""Crisp multiset similarity measures (Sec. II-D's rigid strawmen).

The straightforward way to compare tokenized strings is to apply an existing
multiset similarity -- Jaccard, cosine, Dice, Ruzicka -- to their token
multisets.  The paper rejects these as "too rigid when considering token
edits": a token shared up to a small edit contributes nothing.  They remain
useful as baselines and as the crisp limit of the fuzzy measures.

All functions accept :class:`TokenizedString` (or any iterable of tokens)
and return a similarity in ``[0, 1]``.  Multiplicities are respected.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable


def _as_counter(tokens: Iterable[str]) -> Counter:
    if isinstance(tokens, Counter):
        return tokens
    return Counter(tokens)


def multiset_overlap(x: Iterable[str], y: Iterable[str]) -> int:
    """Multiset intersection size ``|x ∩ y|`` (min multiplicities)."""
    cx, cy = _as_counter(x), _as_counter(y)
    return sum((cx & cy).values())


def multiset_jaccard(x: Iterable[str], y: Iterable[str]) -> float:
    """Multiset Jaccard similarity ``|x ∩ y| / |x ∪ y|``.

    Examples
    --------
    >>> multiset_jaccard(["ann", "lee"], ["ann", "li"])
    0.3333333333333333
    """
    cx, cy = _as_counter(x), _as_counter(y)
    union = sum((cx | cy).values())
    if union == 0:
        return 1.0  # both empty
    return sum((cx & cy).values()) / union


def multiset_dice(x: Iterable[str], y: Iterable[str]) -> float:
    """Multiset Dice similarity ``2|x ∩ y| / (|x| + |y|)``."""
    cx, cy = _as_counter(x), _as_counter(y)
    total = sum(cx.values()) + sum(cy.values())
    if total == 0:
        return 1.0
    return 2.0 * sum((cx & cy).values()) / total


def multiset_cosine(x: Iterable[str], y: Iterable[str]) -> float:
    """Cosine similarity of the token-multiplicity vectors."""
    cx, cy = _as_counter(x), _as_counter(y)
    if not cx and not cy:
        return 1.0
    if not cx or not cy:
        return 0.0
    dot = sum(mult * cy[token] for token, mult in cx.items())
    norm_x = math.sqrt(sum(mult * mult for mult in cx.values()))
    norm_y = math.sqrt(sum(mult * mult for mult in cy.values()))
    return dot / (norm_x * norm_y)


def multiset_ruzicka(x: Iterable[str], y: Iterable[str]) -> float:
    """Ruzicka similarity ``sum(min) / sum(max)`` over multiplicities.

    For 0/1 multiplicities this coincides with Jaccard.
    """
    cx, cy = _as_counter(x), _as_counter(y)
    tokens = set(cx) | set(cy)
    if not tokens:
        return 1.0
    numerator = sum(min(cx[token], cy[token]) for token in tokens)
    denominator = sum(max(cx[token], cy[token]) for token in tokens)
    return numerator / denominator
