"""Levenshtein distance (Def. 1) and thresholded variants.

``LD(x, y)`` is the minimum number of character-level insertions, deletions
and substitutions transforming ``x`` into ``y``.  It is a metric (Lemma 1).

Two implementations are provided:

* :func:`levenshtein` -- the classic two-row dynamic program,
  ``O(|x| * |y|)`` time, ``O(min(|x|, |y|))`` space.
* :func:`levenshtein_within` -- a banded dynamic program that answers
  "is ``LD(x, y) <= limit``?" in ``O(limit * min(|x|, |y|))`` time with early
  exit.  This is the verification workhorse: PassJoin/MassJoin and the TSJ
  verifier always know a threshold, and thresholds are small in practice.

An optional ``ops`` counter hook lets the MapReduce cost model meter the
number of DP cells evaluated (one "work unit" per cell), which is how the
simulated cluster attributes compute cost to workers.
"""

from __future__ import annotations

from typing import Callable

#: Optional callback receiving the number of DP cells evaluated by a call.
#: The MapReduce cost model passes a counter increment here so that compute
#: work can be attributed to the simulated worker that performed it.
OpsHook = Callable[[int], None] | None


def levenshtein(x: str, y: str, ops: OpsHook = None) -> int:
    """Exact Levenshtein distance between ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        The strings to compare.
    ops:
        Optional callable invoked with the number of DP cells evaluated;
        used by the simulated-cluster cost model.

    Examples
    --------
    >>> levenshtein("thomson", "thompson")
    1
    >>> levenshtein("", "abc")
    3
    """
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    # Keep y as the shorter string: the DP rows have |y| + 1 entries.
    if len(x) < len(y):
        x, y = y, x
    if not y:
        if ops is not None:
            ops(len(x))
        return len(x)

    previous = list(range(len(y) + 1))
    current = [0] * (len(y) + 1)
    for i, cx in enumerate(x, start=1):
        current[0] = i
        for j, cy in enumerate(y, start=1):
            cost = 0 if cx == cy else 1
            current[j] = min(
                previous[j] + 1,  # delete from x
                current[j - 1] + 1,  # insert into x
                previous[j - 1] + cost,  # substitute / match
            )
        previous, current = current, previous
    if ops is not None:
        ops(len(x) * len(y))
    return previous[len(y)]


def levenshtein_within(x: str, y: str, limit: int, ops: OpsHook = None) -> int | None:
    """Levenshtein distance if it is at most ``limit``, else ``None``.

    Uses the standard banded (Ukkonen) dynamic program: only cells within
    ``limit`` of the diagonal can contribute to a distance ``<= limit``, so
    each row evaluates at most ``2 * limit + 1`` cells.  Exits early when an
    entire row exceeds ``limit``.

    Parameters
    ----------
    limit:
        Inclusive upper bound.  Negative limits always miss; ``limit == 0``
        degenerates to an equality test.

    Examples
    --------
    >>> levenshtein_within("kalan", "alan", 1)
    1
    >>> levenshtein_within("kalan", "chan", 1) is None
    True
    """
    if limit < 0:
        return None
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    if len(x) < len(y):
        x, y = y, x
    # The length difference is an LD lower bound (deletions are mandatory).
    if len(x) - len(y) > limit:
        if ops is not None:
            ops(1)
        return None
    if not y:
        if ops is not None:
            ops(1)
        return len(x)  # len(x) <= limit, guaranteed by the check above

    n, m = len(x), len(y)
    big = limit + 1  # acts as +infinity; capping keeps values bounded
    previous = [j if j <= limit else big for j in range(m + 1)]
    cells = 0
    for i in range(1, n + 1):
        cx = x[i - 1]
        lo = max(1, i - limit)
        hi = min(m, i + limit)
        current = [big] * (m + 1)
        if lo == 1 and i <= limit:
            current[0] = i
        row_min = big
        for j in range(lo, hi + 1):
            cost = 0 if cx == y[j - 1] else 1
            value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            if value > big:
                value = big
            current[j] = value
            if value < row_min:
                row_min = value
            cells += 1
        if row_min > limit:
            if ops is not None:
                ops(cells)
            return None
        previous = current
    if ops is not None:
        ops(cells)
    distance = previous[m]
    return distance if distance <= limit else None
