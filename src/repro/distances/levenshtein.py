"""Levenshtein distance (Def. 1) and thresholded variants.

``LD(x, y)`` is the minimum number of character-level insertions, deletions
and substitutions transforming ``x`` into ``y``.  It is a metric (Lemma 1).

Two implementations are provided:

* :func:`levenshtein` -- the classic two-row dynamic program,
  ``O(|x| * |y|)`` time, ``O(min(|x|, |y|))`` space.  Early-exits on the
  length-difference lower bound (``abs(|x| - |y|)`` is both a lower bound
  and, when the shorter string is empty, the exact distance) before
  allocating any DP rows.
* :func:`levenshtein_bounded` -- the banded (Ukkonen) dynamic program with
  the capped contract: returns ``min(LD(x, y), limit + 1)``.  A miss is
  reported as *exactly* ``limit + 1``, never an arbitrary overshoot -- the
  band caps every cell at ``limit + 1``, so no larger value can escape.
* :func:`levenshtein_within` -- the thresholded wrapper the joins consume:
  the exact distance when it is ``<= limit``, else ``None``, in
  ``O(limit * min(|x|, |y|))`` time with early exit.  This is the
  verification workhorse: PassJoin/MassJoin and the TSJ verifier always
  know a threshold, and thresholds are small in practice.

These are the **reference oracles**: plain, allocation-light Python that
every accelerated backend (see :mod:`repro.accel`) must agree with
exactly.  An optional ``ops`` counter hook lets the MapReduce cost model
meter the number of DP cells evaluated (one "work unit" per cell), which
is how the simulated cluster attributes compute cost to workers.
"""

from __future__ import annotations

from typing import Callable

#: Optional callback receiving the number of DP cells evaluated by a call.
#: The MapReduce cost model passes a counter increment here so that compute
#: work can be attributed to the simulated worker that performed it.
OpsHook = Callable[[int], None] | None


def levenshtein(x: str, y: str, ops: OpsHook = None) -> int:
    """Exact Levenshtein distance between ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        The strings to compare.
    ops:
        Optional callable invoked with the number of DP cells evaluated;
        used by the simulated-cluster cost model.

    Examples
    --------
    >>> levenshtein("thomson", "thompson")
    1
    >>> levenshtein("", "abc")
    3
    """
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    # Keep y as the shorter string: the DP rows have |y| + 1 entries.
    if len(x) < len(y):
        x, y = y, x
    if not y:
        # Length-difference early exit: with the shorter string empty the
        # abs(|x| - |y|) lower bound is exact, so no DP rows are allocated.
        if ops is not None:
            ops(len(x))
        return len(x)

    previous = list(range(len(y) + 1))
    current = [0] * (len(y) + 1)
    for i, cx in enumerate(x, start=1):
        current[0] = i
        for j, cy in enumerate(y, start=1):
            cost = 0 if cx == cy else 1
            current[j] = min(
                previous[j] + 1,  # delete from x
                current[j - 1] + 1,  # insert into x
                previous[j - 1] + cost,  # substitute / match
            )
        previous, current = current, previous
    if ops is not None:
        ops(len(x) * len(y))
    return previous[len(y)]


def levenshtein_bounded(x: str, y: str, limit: int, ops: OpsHook = None) -> int:
    """``min(LD(x, y), limit + 1)`` via the banded (Ukkonen) DP.

    **Contract.**  The return value is the exact distance whenever it is
    ``<= limit``; any miss is reported as *exactly* ``limit + 1`` -- never
    an arbitrary overshoot.  Every DP cell is capped at ``limit + 1``, so
    the cap also bounds intermediate values (no overflow past the band).
    This makes the result safe to memoize and compare across calls: two
    misses at the same limit are indistinguishable by design.

    Only cells within ``limit`` of the diagonal can contribute to a
    distance ``<= limit``, so each row evaluates at most ``2 * limit + 1``
    cells; the scan exits early when an entire row exceeds ``limit``.

    Parameters
    ----------
    limit:
        Inclusive verification bound; must be non-negative (the
        ``None``-returning wrapper :func:`levenshtein_within` handles
        negative limits).

    Examples
    --------
    >>> levenshtein_bounded("kalan", "alan", 1)
    1
    >>> levenshtein_bounded("kitten", "sitting", 1)  # true distance is 3
    2
    """
    if limit < 0:
        raise ValueError("limit must be non-negative")
    big = limit + 1  # acts as +infinity; capping keeps values bounded
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    if len(x) < len(y):
        x, y = y, x
    # The length difference is an LD lower bound (deletions are mandatory);
    # checked before any DP row is allocated.
    if len(x) - len(y) > limit:
        if ops is not None:
            ops(1)
        return big
    if not y:
        if ops is not None:
            ops(1)
        return len(x)  # len(x) <= limit, guaranteed by the check above

    n, m = len(x), len(y)
    previous = [j if j <= limit else big for j in range(m + 1)]
    cells = 0
    for i in range(1, n + 1):
        cx = x[i - 1]
        lo = max(1, i - limit)
        hi = min(m, i + limit)
        current = [big] * (m + 1)
        if lo == 1 and i <= limit:
            current[0] = i
        row_min = big
        for j in range(lo, hi + 1):
            cost = 0 if cx == y[j - 1] else 1
            value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            if value > big:
                value = big
            current[j] = value
            if value < row_min:
                row_min = value
            cells += 1
        if row_min > limit:
            if ops is not None:
                ops(cells)
            return big
        previous = current
    if ops is not None:
        ops(cells)
    return min(previous[m], big)


def levenshtein_within(x: str, y: str, limit: int, ops: OpsHook = None) -> int | None:
    """Levenshtein distance if it is at most ``limit``, else ``None``.

    Thin wrapper over :func:`levenshtein_bounded` (see its contract); the
    joins' verification paths consume this ``value-or-None`` form.

    Parameters
    ----------
    limit:
        Inclusive upper bound.  Negative limits always miss; ``limit == 0``
        degenerates to an equality test.

    Examples
    --------
    >>> levenshtein_within("kalan", "alan", 1)
    1
    >>> levenshtein_within("kalan", "chan", 1) is None
    True
    """
    if limit < 0:
        return None
    distance = levenshtein_bounded(x, y, limit, ops=ops)
    return None if distance > limit else distance
