"""Fuzzy Matching Similarity (Chaudhuri et al., SIGMOD 2003).

FMS measures how cheaply an input tuple's token sequence can be transformed
into a reference sequence using token-level operations:

* *replacement* of token ``a`` by token ``b``, costing
  ``w(a) * LD(a, b) / |a|`` (edits are charged relative to token length and
  scaled by token weight, typically IDF);
* *insertion* of token ``b``, costing ``c_ins * w(b)``;
* *deletion* of token ``a``, costing ``w(a)``.

``fmd(u, v)`` is the minimum transformation cost normalised by the total
weight of ``u``; ``fms(u, v) = 1 - min(fmd(u, v), 1)``.

The paper (Sec. IV) criticises FMS on two grounds reproduced faithfully
here: it is **order-sensitive** (the minimum-cost script aligns tokens as
*sequences*, so shuffling tokens changes the distance) and **asymmetric**
(costs are normalised by ``u``'s weight only).  AFMS is Chaudhuri et al.'s
position-insensitive approximation: each token of ``u`` simply matches its
closest token of ``v``, possibly many-to-one.

Because order matters, these functions take token *sequences* (lists), not
the order-erasing :class:`TokenizedString`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.distances.levenshtein import levenshtein

TokenWeights = Mapping[str, float] | None


def _weight(token: str, weights: TokenWeights) -> float:
    if weights is None:
        return 1.0
    return weights.get(token, 1.0)


def fmd(
    u: Sequence[str],
    v: Sequence[str],
    weights: TokenWeights = None,
    insertion_cost: float = 1.0,
) -> float:
    """Fuzzy match distance: normalised minimum transformation cost.

    Computed with a sequence-alignment dynamic program over the token
    sequences (replacement / insertion / deletion as defined above), which
    is what makes FMS order-sensitive.

    Returns 0.0 when ``u`` is empty (nothing to transform).
    """
    total_weight = sum(_weight(token, weights) for token in u)
    if total_weight == 0:
        return 0.0

    rows, cols = len(u), len(v)
    # dp[i][j] = min cost of transforming u[:i] into v[:j]
    dp = [[0.0] * (cols + 1) for _ in range(rows + 1)]
    for i in range(1, rows + 1):
        dp[i][0] = dp[i - 1][0] + _weight(u[i - 1], weights)  # delete u token
    for j in range(1, cols + 1):
        dp[0][j] = dp[0][j - 1] + insertion_cost * _weight(v[j - 1], weights)
    for i in range(1, rows + 1):
        token_u = u[i - 1]
        weight_u = _weight(token_u, weights)
        for j in range(1, cols + 1):
            token_v = v[j - 1]
            replace = dp[i - 1][j - 1]
            if token_u != token_v:
                replace += weight_u * levenshtein(token_u, token_v) / max(
                    len(token_u), 1
                )
            delete = dp[i - 1][j] + weight_u
            insert = dp[i][j - 1] + insertion_cost * _weight(token_v, weights)
            dp[i][j] = min(replace, delete, insert)
    return dp[rows][cols] / total_weight


def fms(
    u: Sequence[str],
    v: Sequence[str],
    weights: TokenWeights = None,
    insertion_cost: float = 1.0,
) -> float:
    """Fuzzy Matching Similarity: ``1 - min(fmd(u, v), 1)``.

    Examples
    --------
    >>> fms(["barak", "obama"], ["barak", "obama"])
    1.0
    >>> fms(["barak", "obama"], ["obama", "barak"]) < 1.0  # order-sensitive
    True
    """
    return 1.0 - min(fmd(u, v, weights, insertion_cost), 1.0)


def afms(
    u: Sequence[str],
    v: Sequence[str],
    weights: TokenWeights = None,
) -> float:
    """Approximate FMS: position-insensitive best-token matching.

    Each token of ``u`` is matched to its cheapest replacement in ``v``
    (or deleted if cheaper); several ``u`` tokens may share one ``v`` token.
    Still asymmetric, but no longer order-sensitive.

    Examples
    --------
    >>> afms(["barak", "obama"], ["obama", "barak"])
    1.0
    """
    total_weight = sum(_weight(token, weights) for token in u)
    if total_weight == 0:
        return 1.0
    cost = 0.0
    for token_u in u:
        weight_u = _weight(token_u, weights)
        best = weight_u  # deleting the token
        for token_v in v:
            if token_u == token_v:
                best = 0.0
                break
            candidate = weight_u * levenshtein(token_u, token_v) / max(len(token_u), 1)
            if candidate < best:
                best = candidate
        cost += best
    return 1.0 - min(cost / total_weight, 1.0)
