"""Jaro and Jaro-Winkler similarities (related work, Sec. IV).

These emerged from the record-linkage / statistics communities (Jaro 1995,
Winkler 1999) and treat names as *non-tokenized* strings.  The paper cites
them as the token-matching predicate inside SoftTfIdf, and notes that
Jaro-Winkler violates the triangle inequality (so SoftTfIdf cannot be a
metric).  Both return *similarities* in ``[0, 1]``; use ``1 - sim`` for a
distance-like quantity.
"""

from __future__ import annotations


def jaro(x: str, y: str) -> float:
    """Jaro similarity.

    Counts characters that match within a window of
    ``max(|x|, |y|) // 2 - 1`` positions and the number of transpositions
    among them.

    Examples
    --------
    >>> jaro("martha", "marhta")  # doctest: +ELLIPSIS
    0.944...
    >>> jaro("abc", "abc")
    1.0
    >>> jaro("abc", "xyz")
    0.0
    """
    if x == y:
        return 1.0
    if not x or not y:
        return 0.0

    window = max(len(x), len(y)) // 2 - 1
    if window < 0:
        window = 0

    x_matched = [False] * len(x)
    y_matched = [False] * len(y)
    matches = 0
    for i, cx in enumerate(x):
        lo = max(0, i - window)
        hi = min(len(y), i + window + 1)
        for j in range(lo, hi):
            if not y_matched[j] and y[j] == cx:
                x_matched[i] = True
                y_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions: matched characters out of relative order.
    transpositions = 0
    j = 0
    for i, cx in enumerate(x):
        if not x_matched[i]:
            continue
        while not y_matched[j]:
            j += 1
        if cx != y[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    m = float(matches)
    return (m / len(x) + m / len(y) + (m - transpositions) / m) / 3.0


def jaro_winkler(
    x: str, y: str, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler similarity: Jaro boosted for common prefixes.

    ``JW = J + len(common prefix, capped) * prefix_scale * (1 - J)``.

    Parameters
    ----------
    prefix_scale:
        Winkler's ``p``; must satisfy ``p * max_prefix <= 1`` so the result
        stays in ``[0, 1]``.  Default 0.1.
    max_prefix:
        Longest prefix eligible for the boost (Winkler's ``l`` cap, 4).

    Examples
    --------
    >>> jaro_winkler("martha", "marhta")  # doctest: +ELLIPSIS
    0.961...
    """
    if prefix_scale * max_prefix > 1.0:
        raise ValueError("prefix_scale * max_prefix must not exceed 1")
    base = jaro(x, y)
    prefix = 0
    for cx, cy in zip(x, y):
        if cx != cy or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)
