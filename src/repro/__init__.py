"""Reproduction of *Scalable Similarity Joins of Tokenized Strings*
(Metwally & Huang, ICDE 2019).

Public API highlights
---------------------

Distances (Sec. II):

* :func:`repro.distances.nsld` / :func:`repro.distances.sld` -- the paper's
  Normalized Setwise Levenshtein Distance and its unnormalised form.
* :func:`repro.distances.nld` / :func:`repro.distances.levenshtein` -- the
  underlying string distances.

Joining (Sec. III):

* :class:`repro.tsj.TSJ` -- the Tokenized-String Joiner framework.
* :class:`repro.tsj.TSJConfig` -- thresholds, approximations, dedup
  strategy.

Substrates and baselines:

* :mod:`repro.mapreduce` -- the simulated MapReduce cluster.
* :mod:`repro.runtime` -- the parallel execution engine and the shared
  worker pool (``engine="auto"|"serial"|"parallel"`` everywhere
  user-facing).
* :mod:`repro.joins` -- PassJoin / PassJoinK / MassJoin / prefix-filter /
  Vernica string-join algorithms.
* :mod:`repro.metricspace` -- ClusterJoin / MR-MAPSS / HMJ metric-space
  joins.
* :mod:`repro.data` -- synthetic name corpora and the fraud-ring model.
* :mod:`repro.analysis` -- ROC, recall and similarity-graph clustering.
"""

from repro.core import JoinReport, compare_names, nsld_join
from repro.distances import (
    levenshtein,
    nld,
    nsld,
    nsld_greedy,
    nsld_within,
    sld,
    sld_greedy,
)
from repro.tokenize import TokenizedString, Tokenizer, tokenize
from repro.tsj import TSJ, TSJConfig

__version__ = "1.0.0"

__all__ = [
    "TokenizedString",
    "Tokenizer",
    "tokenize",
    "levenshtein",
    "nld",
    "sld",
    "sld_greedy",
    "nsld",
    "nsld_greedy",
    "nsld_within",
    "TSJ",
    "TSJConfig",
    "nsld_join",
    "compare_names",
    "JoinReport",
    "__version__",
]
