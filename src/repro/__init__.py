"""Reproduction of *Scalable Similarity Joins of Tokenized Strings*
(Metwally & Huang, ICDE 2019).

Public API highlights
---------------------

The front door (see README.md "Public API"):

* :func:`repro.run` / :class:`repro.Session` -- execute declarative,
  JSON-serializable request specs (:class:`repro.JoinSpec`,
  :class:`repro.TopKSpec`, :class:`repro.WithinSpec`,
  :class:`repro.CompareSpec`) against resident corpora; every join
  algorithm and search backend in the repository is one
  ``algorithm=``/``method=`` choice (:mod:`repro.api.registry`).
* :class:`repro.ResultSet` -- the uniform result envelope (pairs or
  matches, clusters, cascade + cache counters, simulated seconds,
  build/query wall-clock split) with a lossless JSON wire form.

Distances (Sec. II):

* :func:`repro.distances.nsld` / :func:`repro.distances.sld` -- the paper's
  Normalized Setwise Levenshtein Distance and its unnormalised form.
* :func:`repro.distances.nld` / :func:`repro.distances.levenshtein` -- the
  underlying string distances.

Joining (Sec. III):

* :class:`repro.tsj.TSJ` -- the Tokenized-String Joiner framework.
* :class:`repro.tsj.TSJConfig` -- thresholds, approximations, dedup
  strategy.

Substrates and baselines:

* :mod:`repro.mapreduce` -- the simulated MapReduce cluster.
* :mod:`repro.runtime` -- the parallel execution engine and the shared
  worker pool (``engine="auto"|"serial"|"parallel"`` everywhere
  user-facing).
* :mod:`repro.joins` -- PassJoin / PassJoinK / MassJoin / prefix-filter /
  Vernica string-join algorithms.
* :mod:`repro.metricspace` -- ClusterJoin / MR-MAPSS / HMJ metric-space
  joins.
* :mod:`repro.data` -- synthetic name corpora and the fraud-ring model.
* :mod:`repro.analysis` -- ROC, recall and similarity-graph clustering.
* :mod:`repro.store` -- durable indexes: crash-safe snapshots
  (:class:`repro.SnapshotStore`), the write-ahead append log, and warm
  restart behind ``Session(store_dir=...)`` / ``serve --store``.
* :mod:`repro.shard` -- sharded serving: :class:`repro.ShardedIndex`
  scatter-gathers N placement-partitioned shards with results and
  counters invariant in the shard count (``Session(shards=N)`` /
  ``serve --shards``), and :class:`repro.ShardedSnapshotStore` persists
  the layout under the unsharded recovery contract.
"""

from repro.api import (
    CompareSpec,
    JoinSpec,
    ResultSet,
    Session,
    TopKSpec,
    WithinSpec,
    run,
    spec_from_json,
)
from repro.api.errors import ApiError, ValidationError
from repro.client import ServiceClient
from repro.core import JoinReport, compare_names, nsld_join
from repro.distances import (
    levenshtein,
    nld,
    nsld,
    nsld_greedy,
    nsld_within,
    sld,
    sld_greedy,
)
from repro.shard import ShardedIndex, ShardedSnapshotStore
from repro.store import SnapshotStore
from repro.tokenize import TokenizedString, Tokenizer, tokenize
from repro.tsj import TSJ, TSJConfig

__version__ = "1.0.0"

__all__ = [
    "ApiError",
    "CompareSpec",
    "JoinReport",
    "JoinSpec",
    "ResultSet",
    "ServiceClient",
    "Session",
    "ShardedIndex",
    "ShardedSnapshotStore",
    "SnapshotStore",
    "ValidationError",
    "TSJ",
    "TSJConfig",
    "TokenizedString",
    "Tokenizer",
    "TopKSpec",
    "WithinSpec",
    "__version__",
    "compare_names",
    "levenshtein",
    "nld",
    "nsld",
    "nsld_greedy",
    "nsld_join",
    "nsld_within",
    "run",
    "sld",
    "sld_greedy",
    "spec_from_json",
    "tokenize",
]
