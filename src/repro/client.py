"""The client SDK: remote similarity requests, in-process semantics.

:class:`ServiceClient` speaks to a :mod:`repro.server` instance (or
anything answering the same wire format) and returns deserialized
:class:`repro.api.ResultSet` objects, so remote and in-process calls
are interchangeable::

    client = ServiceClient("http://127.0.0.1:8765", token="s3cret")
    remote = client.run(spec)          # == Session.run(spec), over HTTP
    local = Session(names).run(spec)   # same pairs/counters/seconds

Stdlib only (:mod:`http.client`).  The client holds one keep-alive
connection per instance, sends the static bearer token on every
request, and retries with full-jitter exponential backoff on connection
errors and 5xx answers -- the classes of failure a retry can fix.  4xx
answers never retry: they are rebuilt into the typed
:class:`repro.api.errors.ApiError` hierarchy from the uniform error
envelope, so a remote validation failure raises the same
``ValidationError`` the in-process facade would.

Retries respect the caller's time, not just an attempt count: a shed
request's ``Retry-After`` hint replaces the computed backoff, a
``max_elapsed`` cap (and any spec ``deadline_ms``) bounds the total
attempts+sleeps window, and a 504 ``deadline_exceeded`` answer is never
retried -- the budget that expired server-side has expired for the
caller too.

Instances are not thread-safe (one connection, one in-flight request);
give each worker thread its own client -- they are cheap.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Callable, Mapping, Sequence
from urllib.parse import urlsplit

from repro.api.errors import (
    ApiError,
    ServiceUnavailableError,
    error_from_envelope,
)
from repro.api.result import ResultSet
from repro.api.specs import JoinSpec, TopKSpec, WithinSpec
from repro.faults import fault_point

__all__ = ["ServiceClient"]

#: Transport failures worth retrying: the connection dropped, timed out,
#: or never came up.  HTTP-level protocol errors count too (a dying
#: server mid-response looks like a BadStatusLine).
_RETRYABLE = (OSError, http.client.HTTPException)


class ServiceClient:
    """A retrying HTTP client for the repro similarity service.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (https works too).  Paths are appended
        verbatim, so a reverse-proxy prefix can ride along.
    token:
        Static bearer token; sent as ``Authorization: Bearer <token>``
        on every request.  ``None`` sends no auth header.
    timeout:
        Per-attempt socket timeout in seconds.
    retries:
        How many *extra* attempts after the first (``retries=3`` means
        up to four requests) on connection errors and 5xx answers.
    backoff:
        Base retry delay in seconds.  The actual delay before attempt
        ``n`` is full-jitter exponential: ``backoff * 2**(n-1) * rng()``
        -- jitter decorrelates a thundering herd of shed clients.  A
        server ``Retry-After`` hint (a 503 shed) replaces the computed
        delay for that attempt.
    max_elapsed:
        Total seconds the request (attempts + sleeps) may take; a retry
        whose delay would overrun the cap is abandoned and the last
        error raised instead.  A spec ``deadline_ms`` tightens the cap
        further -- sleeping past the request's own deadline helps nobody.
        ``None`` (default) bounds by attempt count only.
    sleep / rng / connection_factory:
        Injection points for tests: the backoff sleeper, the jitter
        source (a ``() -> float in [0, 1]``; pass ``lambda: 1.0`` for
        deterministic full-length delays) and the
        ``(host, port, timeout) -> connection`` constructor.
    """

    def __init__(
        self,
        base_url: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        max_elapsed: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
        connection_factory: Callable | None = None,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._prefix = parts.path.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_elapsed = max_elapsed
        self._sleep = sleep
        self._rng = rng
        if connection_factory is None:
            connection_factory = (
                http.client.HTTPSConnection
                if parts.scheme == "https"
                else http.client.HTTPConnection
            )
        self._connection_factory = connection_factory
        self._connection = None

    # -- the public surface -----------------------------------------------------

    def run(self, spec) -> ResultSet:
        """Execute any spec remotely: ``POST /v1/run`` -> ``ResultSet``.

        Accepts a spec object (anything with ``to_dict()``) or an
        already-JSON-shaped mapping.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        return ResultSet.from_dict(self._request("POST", "/v1/run", payload))

    def join(
        self,
        names: Sequence[str] | None = None,
        *,
        algorithm: str = "tsj",
        threshold: float = 0.1,
        backend: str | None = None,
        engine: str | None = None,
        params: Mapping | None = None,
        deadline_ms: float | None = None,
    ) -> ResultSet:
        """Self-join under any registered algorithm (``POST /v1/join``).

        ``names=None`` joins the server session's resident default
        corpus.  The spec is built client-side, so selector typos fail
        locally with the same uniform error the server would answer.
        ``deadline_ms`` rides the spec to the server (a 504 on expiry)
        and caps this client's retry window too.
        """
        spec = JoinSpec(
            algorithm=algorithm,
            threshold=threshold,
            names=names,
            backend=backend,
            engine=engine,
            params=dict(params or {}),
            deadline_ms=deadline_ms,
        )
        return ResultSet.from_dict(
            self._request("POST", "/v1/join", spec.to_dict())
        )

    def search(
        self,
        queries: Sequence[str] | str,
        *,
        k: int = 5,
        radius: float | None = None,
        method: str = "similarity_index",
        names: Sequence[str] | None = None,
        backend: str | None = None,
        processes: int | None = None,
        deadline_ms: float | None = None,
    ) -> ResultSet:
        """Top-k (default) or range queries (``POST /v1/search``).

        ``radius`` switches to range mode, mirroring the CLI ``search``
        subcommand.
        """
        if radius is not None:
            spec: TopKSpec | WithinSpec = WithinSpec(
                queries=queries,
                radius=radius,
                method=method,
                names=names,
                backend=backend,
                processes=processes,
                deadline_ms=deadline_ms,
            )
        else:
            spec = TopKSpec(
                queries=queries,
                k=k,
                method=method,
                names=names,
                backend=backend,
                processes=processes,
                deadline_ms=deadline_ms,
            )
        return ResultSet.from_dict(
            self._request("POST", "/v1/search", spec.to_dict())
        )

    def knn(
        self,
        queries: Sequence[str] | str,
        *,
        k: int = 5,
        names: Sequence[str] | None = None,
        backend: str | None = None,
    ) -> ResultSet:
        """Nearest neighbours via the metric tree (``POST /v1/knn``)."""
        spec = TopKSpec(
            queries=queries, k=k, method="vptree", names=names, backend=backend
        )
        return ResultSet.from_dict(self._request("POST", "/v1/knn", spec.to_dict()))

    def append(self, names: Sequence[str], base: int | None = None) -> dict:
        """Grow the server's durable corpus (``POST /v1/append``).

        Returns ``{"records": <total>, "appended": <count>}``.  On a
        store-backed server a 200 answer means the append was write-ahead
        logged and fsynced -- it survives a server crash and restart.

        Delivery is **at-least-once by default**: a retry after a dropped
        connection may re-apply an append the server already logged.
        Passing ``base`` -- the ``records`` total from the last
        acknowledged call (or a fresh ``health``/``search`` view) -- makes
        the append **idempotent**: the server treats an exact replay of an
        already-applied append as a no-op, and rejects a conflicting one
        with a 400 instead of corrupting the corpus, so retries become
        effectively exactly-once.
        """
        from repro.api.errors import WIRE_VERSION

        payload = {"version": WIRE_VERSION, "names": list(names)}
        if base is not None:
            payload["base"] = base
        return self._request("POST", "/v1/append", payload)

    def health(self) -> dict:
        """Liveness probe (``GET /v1/health``; no auth required)."""
        return self._request("GET", "/v1/health")

    def metrics(self) -> dict:
        """The server's counters and gauges (``GET /v1/metrics``)."""
        return self._request("GET", "/v1/metrics")

    # -- transport --------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        budget = self._time_budget(payload)
        started = time.monotonic()
        last_error: ApiError | None = None
        retry_after: float | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                # A server Retry-After hint beats the computed backoff;
                # otherwise full-jitter exponential.
                delay = (
                    retry_after
                    if retry_after is not None
                    else self.backoff * 2 ** (attempt - 1) * self._rng()
                )
                if (
                    budget is not None
                    and time.monotonic() - started + delay > budget
                ):
                    break  # sleeping past the caller's budget helps nobody
                self._sleep(delay)
            retry_after = None
            try:
                status, data = self._send(method, path, body)
            except _RETRYABLE as exc:
                self._drop_connection()
                last_error = ServiceUnavailableError(
                    f"{method} {path} failed after {attempt + 1} attempt(s): "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            if status >= 500:
                # The server answered but could not serve; its envelope
                # (when well-formed) names the failure.  Retryable --
                # except an expired deadline, which a retry can only
                # expire again (the budget was the request's own).
                error = error_from_envelope(_parse_json(data), status)
                if error.type == "deadline_exceeded":
                    raise error
                retry_after = getattr(error, "retry_after", None)
                last_error = error
                continue
            if status >= 400:
                raise error_from_envelope(_parse_json(data), status)
            return _parse_json(data)
        assert last_error is not None
        raise last_error

    def _time_budget(self, payload: dict | None) -> float | None:
        """Seconds the whole retry loop may take: ``max_elapsed``
        tightened by the spec's own ``deadline_ms`` when present."""
        budget = self.max_elapsed
        deadline_ms = (payload or {}).get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and deadline_ms > 0:
            deadline_seconds = deadline_ms / 1000.0
            budget = (
                deadline_seconds
                if budget is None
                else min(budget, deadline_seconds)
            )
        return budget

    def _send(self, method: str, path: str, body: bytes | None):
        connection = self._connection
        if connection is None:
            connection = self._connection_factory(
                self._host, self._port, timeout=self.timeout
            )
            self._connection = connection
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        try:
            fault_point("client.send")  # chaos tests: sever the connection
            connection.request(method, self._prefix + path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except _RETRYABLE:
            # Drop the (possibly half-dead) keep-alive connection so the
            # retrying caller reconnects fresh -- covers the server
            # closing an idle persistent connection between requests.
            self._drop_connection()
            raise

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def close(self) -> None:
        """Close the keep-alive connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _parse_json(data: bytes):
    """Decode a response body; malformed bodies degrade to a dict the
    envelope rebuilder can still describe."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {"raw": data[:200].decode("utf-8", "replace")}
