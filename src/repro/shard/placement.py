"""Pluggable corpus placement: which shard owns which record.

The :class:`repro.shard.ShardedIndex` partitions a corpus across N
:class:`repro.service.SimilarityIndex` shards; a *placement* decides the
owner of every record, at build time and for every later ``append``:

* :class:`LengthPlacement` (``"length"``) -- contiguous aggregate-token-
  length ranges, cut at the corpus length quantiles.  This is the
  paper's Lemma 6 partition lifted one level: a probe's length window
  ``[lo, hi]`` overlaps only the shards whose length range intersects
  it, so the router can prune whole shards before any postings probe
  runs -- the same reason the per-index length partition exists, at
  machine granularity (the partition-based MapReduce joins the paper
  compares against play the same card).
* :class:`HashPlacement` (``"hash"``) -- a deterministic multiplicative
  hash of the global record id: the uniform, pruning-free baseline
  every balanced-partition system ships.

Placements are value objects: they serialize into the sharded store's
manifest (:meth:`to_manifest` / :func:`placement_from_manifest`) so a
warm restart routes appends exactly as the original build did.
Correctness never depends on the placement -- the router prunes against
each shard's *actual* length range, not the placement's boundaries --
so a skewed placement only costs balance, never results.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.api.errors import ValidationError
from repro.api.registry import validate_choice

__all__ = [
    "PLACEMENTS",
    "HashPlacement",
    "LengthPlacement",
    "build_placement",
    "placement_from_manifest",
]

#: Registered placement kinds (the ``--placement`` choices).
PLACEMENTS = ("length", "hash")

#: Knuth's multiplicative hash constant (2^32 / phi), the classic
#: cheap-but-well-mixed integer scrambler.
_HASH_MULTIPLIER = 2654435761


class LengthPlacement:
    """Contiguous aggregate-length ranges, one per shard.

    ``boundaries`` holds the ``n_shards - 1`` ascending cut points: a
    record with aggregate length ``L`` lands in shard
    ``bisect_left(boundaries, L)``, so shard ``i`` owns lengths in
    ``(boundaries[i-1], boundaries[i]]`` -- records *exactly on* a cut
    point belong to the lower shard, the edge the boundary-append tests
    pin down.
    """

    kind = "length"

    def __init__(self, n_shards: int, boundaries: Sequence[int]) -> None:
        self.n_shards = n_shards
        self.boundaries = tuple(boundaries)
        if len(self.boundaries) != n_shards - 1:
            raise ValidationError(
                f"length placement for {n_shards} shards needs "
                f"{n_shards - 1} boundaries, got {len(self.boundaries)}"
            )
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValidationError(
                f"length boundaries must be ascending, got {self.boundaries}"
            )

    @classmethod
    def from_lengths(cls, n_shards: int, lengths: Sequence[int]) -> "LengthPlacement":
        """Cut the observed aggregate lengths at their quantiles.

        With no corpus to observe (an empty first boot) the cuts fall
        back to an arithmetic ladder; balance is a placement concern,
        never a correctness one.
        """
        if not lengths:
            return cls(n_shards, tuple(range(8, 8 * n_shards, 8)))
        ordered = sorted(lengths)
        boundaries = []
        previous = 0
        for cut in range(1, n_shards):
            position = (cut * len(ordered)) // n_shards
            # Strictly ascending cuts: duplicate quantiles collapse to
            # empty middle shards instead of violating monotonicity.
            value = max(ordered[min(position, len(ordered) - 1)], previous + 1)
            boundaries.append(value)
            previous = value
        return cls(n_shards, tuple(boundaries))

    def shard_of(self, global_id: int, aggregate_length: int) -> int:
        return bisect_left(self.boundaries, aggregate_length)

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "boundaries": list(self.boundaries),
        }


class HashPlacement:
    """Uniform id-hash placement: the pruning-free baseline."""

    kind = "hash"

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards

    def shard_of(self, global_id: int, aggregate_length: int) -> int:
        return ((global_id * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.n_shards

    def to_manifest(self) -> dict:
        return {"kind": self.kind, "n_shards": self.n_shards}


def build_placement(kind: str, n_shards: int, lengths: Sequence[int]):
    """A fresh placement of ``kind`` over a corpus's aggregate lengths."""
    validate_choice("shard placement", kind, PLACEMENTS)
    if n_shards < 1:
        raise ValidationError(f"shards must be positive, got {n_shards}")
    if kind == "length":
        return LengthPlacement.from_lengths(n_shards, lengths)
    return HashPlacement(n_shards)


def placement_from_manifest(entry: dict):
    """Rehydrate a placement from its manifest dict (typed on damage)."""
    kind = entry.get("kind")
    n_shards = entry.get("n_shards")
    if kind not in PLACEMENTS or not isinstance(n_shards, int) or n_shards < 1:
        raise ValidationError(f"malformed placement manifest entry: {entry!r}")
    if kind == "length":
        boundaries = entry.get("boundaries")
        if not isinstance(boundaries, list):
            raise ValidationError(f"malformed placement manifest entry: {entry!r}")
        return LengthPlacement(n_shards, tuple(boundaries))
    return HashPlacement(n_shards)
