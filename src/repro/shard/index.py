"""Sharded serving: one corpus, N :class:`SimilarityIndex` shards.

A :class:`ShardedIndex` partitions a corpus across N independent
:class:`repro.service.SimilarityIndex` shards by a pluggable
:mod:`placement <repro.shard.placement>` and serves the *identical*
public surface -- ``topk`` / ``within`` / ``join`` / ``append`` -- by
scatter-gather: route each request to the shards that can possibly
answer it, run the ordinary per-shard pipeline there (in-process or on
the shared :mod:`runtime.pool <repro.runtime.pool>` workers via
:mod:`repro.service.sharing` snapshot publication), and merge the
partial results under the canonical ``(distance, id)`` tie-break.

The router is where the paper's Lemma 6 earns its second keep.  Under
the ``length`` placement each shard owns a contiguous aggregate-length
range, so a probe's qualifying window ``[floor((1-r)L), ceil(L/(1-r))]``
intersects only some shards -- the others are *pruned before any probe
runs* (counted in :attr:`routing` as ``shards_pruned``), the same move
the per-index length partition makes one level down and the
partition-based MapReduce joins the paper benchmarks make one level up.

**Shard-count invariance** is the correctness contract, property-tested
in ``tests/shard/``: for every serving method and any N, results,
cascade/cache counters and join reports are *equal to the single-index
oracle*.  The design choices that make that exact rather than
approximate:

* the router owns the result cache and all counters.  Shards are built
  with ``cache_size=0`` and are driven through cache-free ``_shard_*``
  entry points, so a probed shard can never mint a cache miss the
  serial index would not have;
* cascade counters are *summed shard deltas*.  The per-shard Lemma 6
  windows partition the serial window (lengths don't overlap between a
  record and itself), so candidates/pruned/verified tallies add up to
  the oracle's exactly -- and a length-pruned shard would have
  contributed an empty window slice, making the skip counter-neutral;
* the top-k search (seeding, radius schedule, expansion memo) is
  re-run *globally* at the router from merged per-shard overlap and
  verification primitives, not approximated by merging per-shard top-k
  answers;
* metric-tree results are canonicalized to ``(distance, id)`` at the
  serving layer (see ``SimilarityIndex._canonical_knn_topk``) because
  the trees' traversal-order tie-break cannot survive a shard merge;
* ``fuzzymatch`` scores depend on corpus-global token weights, so it is
  served from one router-held global index rather than sharded;
* the TSJ ``join`` runs over the global corpus through the existing
  engine (whose ``engine=`` fan-out already scatters the join itself):
  its signature partitioning is orthogonal to record placement, and
  routing it globally keeps reports, counters and simulated seconds
  byte-identical.

Routing observability (``shards_probed`` / ``shards_pruned`` /
``shards_total``) lives in the separate :attr:`routing` dict -- by
construction it must NOT perturb :attr:`counters`, which equal the
oracle's.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.candidates import COUNTER_CANDIDATES, COUNTER_VERIFIED, new_counters
from repro.service.cache import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES, LRUCache
from repro.service.index import _MIN_SEED_CAP, _SEED_FACTOR, SimilarityIndex
from repro.shard.placement import build_placement
from repro.tokenize import Tokenizer

__all__ = ["ShardedIndex"]

_MISS = object()


def _shard_calls(payload):
    """Pool-worker entry point: run a batch of router calls on one shard.

    ``payload`` is ``(publish_token, [(method_name, args), ...])``; the
    worker resolves its local snapshot copy, runs the calls in order and
    returns the results plus the shard's counter delta (the cascade
    tallies the calls produced), mirroring ``sharing._serve_chunk``.
    """
    from repro.service.sharing import resolve_snapshot

    token, batch = payload
    shard = resolve_snapshot(token)
    before = dict(shard.counters)
    results = [getattr(shard, method)(*args) for method, args in batch]
    delta = {
        name: value - before.get(name, 0)
        for name, value in shard.counters.items()
        if value != before.get(name, 0)
    }
    return results, delta


class ShardedIndex:
    """N-shard scatter-gather serving with the single-index surface.

    Parameters
    ----------
    names:
        The corpus; tokenized once at the router for placement/join and
        once more inside each owning shard's build.
    n_shards:
        Number of :class:`SimilarityIndex` partitions.
    placement:
        ``"length"`` (Lemma 6 shard pruning; the default) or ``"hash"``
        (uniform baseline) -- see :mod:`repro.shard.placement`.
        Placement affects balance and pruning only, never results.
    tokenizer / backend / cache_size:
        As :class:`SimilarityIndex`.  ``cache_size`` bounds the
        *router's* LRU; shards run cache-free.

    Examples
    --------
    >>> index = ShardedIndex(
    ...     ["barak obama", "borak obama", "john smith"], n_shards=2
    ... )
    >>> index.topk(["barak obana"], k=2)[0][0]
    ('barak obama', 0.09523809523809523)
    """

    def __init__(
        self,
        names: Sequence[str] = (),
        n_shards: int = 2,
        placement: str = "length",
        tokenizer: Tokenizer | None = None,
        backend: str = "auto",
        cache_size: int = 256,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.backend = backend
        records = [self.tokenizer.tokenize(name) for name in names]
        built = build_placement(
            placement,
            n_shards,
            [record.aggregate_length for record in records],
        )
        shards = [
            SimilarityIndex(tokenizer=self.tokenizer, backend=backend, cache_size=0)
            for _ in range(built.n_shards)
        ]
        self._init_router_state(shards, built, cache_size)
        if names:
            self._place(names, records)

    @classmethod
    def from_shards(
        cls,
        shards: Sequence[SimilarityIndex],
        placement,
        shard_ids: Sequence[Sequence[int]],
        tokenizer: Tokenizer | None = None,
        backend: str = "auto",
        cache_size: int = 256,
    ) -> "ShardedIndex":
        """Assemble a router over already-built shards (the store's path).

        ``shard_ids[i]`` lists shard ``i``'s global record ids in local
        order; the global views are rebuilt from the shards' own
        records, so nothing is re-tokenized.
        """
        index = cls.__new__(cls)
        index.tokenizer = tokenizer or Tokenizer()
        index.backend = backend
        index._init_router_state(list(shards), placement, cache_size)
        total = sum(len(shard) for shard in shards)
        index._names = [None] * total
        index._records = [None] * total
        index._locations = [None] * total
        for shard_index, (shard, globals_) in enumerate(zip(shards, shard_ids)):
            index._shard_ids[shard_index] = list(globals_)
            for local_id, global_id in enumerate(globals_):
                index._names[global_id] = shard.names[local_id]
                index._records[global_id] = shard.records[local_id]
                index._locations[global_id] = (shard_index, local_id)
        return index

    def _init_router_state(self, shards, placement, cache_size: int) -> None:
        self.shards: list[SimilarityIndex] = shards
        self.placement = placement
        self._names: list[str] = []
        self._records: list = []
        #: global id -> ``(shard index, local id)``.
        self._locations: list[tuple[int, int]] = []
        #: shard index -> its global ids in local order (ascending).
        self._shard_ids: list[list[int]] = [[] for _ in shards]
        self._cache = LRUCache(cache_size)
        #: Oracle-equal serving counters (cascade + router cache).
        self.counters: dict[str, int] = new_counters()
        self.counters[COUNTER_CACHE_HITS] = 0
        self.counters[COUNTER_CACHE_MISSES] = 0
        #: Scatter bookkeeping, deliberately *outside* :attr:`counters`:
        #: per cascade ``within`` pass, every shard is tallied probed or
        #: pruned (Lemma 6 window vs. the shard's actual length range).
        self.routing: dict[str, int] = {
            "shards_total": len(shards),
            "shards_probed": 0,
            "shards_pruned": 0,
        }
        #: The corpus-global fuzzymatch index (lazy; see module docs).
        self._global_knn: dict[str, object] = {}

    def _place(self, names: Sequence[str], records: Sequence) -> None:
        """Route new records to their owners, preserving global order."""
        batches: dict[int, list[str]] = {}
        for name, record in zip(names, records):
            global_id = len(self._records)
            shard_index = self.placement.shard_of(
                global_id, record.aggregate_length
            )
            shard_globals = self._shard_ids[shard_index]
            self._locations.append((shard_index, len(shard_globals)))
            shard_globals.append(global_id)
            self._names.append(name)
            self._records.append(record)
            batches.setdefault(shard_index, []).append(name)
        for shard_index, batch in batches.items():
            self.shards[shard_index].append(batch)

    # -- collection surface -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def names(self) -> list[str]:
        """The indexed raw names in global insertion order (do not mutate)."""
        return self._names

    @property
    def records(self) -> list:
        """The tokenized corpus, aligned with :attr:`names`."""
        return self._records

    @property
    def result_cache(self) -> LRUCache:
        """The router's bounded LRU result cache."""
        return self._cache

    def append(self, names: Sequence[str], base: int | None = None) -> None:
        """Append routed to the owning shards; same idempotency contract
        as :meth:`SimilarityIndex.append` (``base`` names the global
        record count the caller saw; exact replays are no-ops)."""
        if base is not None and self._check_append_base(names, base):
            return
        records = [self.tokenizer.tokenize(name) for name in names]
        self._place(list(names), records)
        if names:
            self._cache.clear()
            self._global_knn.clear()

    # Same records/names shape as SimilarityIndex, so the replay check is
    # shared verbatim rather than re-stated.
    _check_append_base = SimilarityIndex._check_append_base

    def stats(self) -> dict[str, int]:
        """Aggregate size snapshot plus router-level cache size."""
        totals = {
            "records": len(self._records),
            "distinct_tokens": 0,
            "token_postings": 0,
            "cached_results": len(self._cache),
        }
        for shard in self.shards:
            shard_stats = shard.stats()
            totals["distinct_tokens"] += shard_stats["distinct_tokens"]
            totals["token_postings"] += shard_stats["token_postings"]
        return totals

    def shard_status(self) -> dict:
        """The health/metrics shard block: layout, sizes, routing tallies."""
        return {
            "shards": len(self.shards),
            "placement": self.placement.to_manifest(),
            "sizes": [len(shard) for shard in self.shards],
            "routing": dict(self.routing),
        }

    def prepare(self, *methods: str) -> "ShardedIndex":
        """Eagerly build serving backends on every shard (and the global
        fuzzymatch index); returns ``self`` for chaining."""
        for method in methods:
            if method == "fuzzymatch":
                self._fuzzy_index()
            elif method != "cascade":
                for shard in self.shards:
                    if len(shard):
                        shard.prepare(method)
        return self

    def unpublish(self) -> None:
        """Withdraw every shard's pool publication (see
        :meth:`SimilarityIndex.unpublish`)."""
        for shard in self.shards:
            shard.unpublish()

    # -- result cache (router-owned; keys identical to the serial index) --------

    def _cache_get(self, key):
        value = self._cache.get(key, _MISS)
        if value is _MISS:
            self.counters[COUNTER_CACHE_MISSES] += 1
            return None
        self.counters[COUNTER_CACHE_HITS] += 1
        return value

    def _cache_put(self, key, value) -> None:
        self._cache.put(key, value)

    # -- scatter-gather core -----------------------------------------------------

    def _scatter(
        self, calls: dict[int, list[tuple[str, tuple]]], processes: int
    ) -> dict[int, list]:
        """Run per-shard call batches, in-process or on the shared pool.

        ``calls`` maps shard index -> ``[(method name, args), ...]``;
        the return maps shard index -> the batch's results, and every
        shard's counter delta is merged into :attr:`counters` (this is
        what makes the summed cascade tallies oracle-equal).  Pooling
        fans *shards* out per request -- the serve loop stays serial
        over queries so router cache semantics match the serial index
        exactly, duplicates and LRU recency included.
        """
        from repro.runtime.pool import in_worker_process, resilient_pool_map

        items = [(index, batch) for index, batch in calls.items() if batch]
        gathered: dict[int, list] = {}
        if processes > 1 and len(items) > 1 and not in_worker_process():
            payloads = [
                (self.shards[index].ensure_published(), batch)
                for index, batch in items
            ]
            outcomes = resilient_pool_map(
                _shard_calls,
                payloads,
                min(processes, len(items)),
                label="shard scatter",
            )
            for (index, _), (results, delta) in zip(items, outcomes):
                gathered[index] = results
                self._merge_delta(delta)
            return gathered
        for index, batch in items:
            shard = self.shards[index]
            before = dict(shard.counters)
            gathered[index] = [
                getattr(shard, method)(*args) for method, args in batch
            ]
            self._merge_delta(
                {
                    name: value - before.get(name, 0)
                    for name, value in shard.counters.items()
                    if value != before.get(name, 0)
                }
            )
        return gathered

    def _merge_delta(self, delta: dict[str, int]) -> None:
        counters = self.counters
        for name, value in delta.items():
            counters[name] = counters.get(name, 0) + value

    def _plan_within(self, aggregate_length: int, radius: float) -> list[int]:
        """Shard indexes whose length range intersects the Lemma 6 window.

        The pruning decision uses each shard's *actual* held range, not
        the placement's nominal boundaries, so correctness is placement-
        independent; a pruned shard's window slice would have been empty,
        making the skip invisible to :attr:`counters`.  Every shard is
        tallied probed or pruned in :attr:`routing` per pass.
        """
        if radius >= 1.0:
            low, high = None, None
        else:
            low = math.floor((1.0 - radius) * aggregate_length)
            high = math.ceil(aggregate_length / (1.0 - radius))
        probed: list[int] = []
        for index, shard in enumerate(self.shards):
            held = shard.length_range()
            if held is not None and (
                low is None or (held[1] >= low and held[0] <= high)
            ):
                probed.append(index)
                self.routing["shards_probed"] += 1
            else:
                self.routing["shards_pruned"] += 1
        return probed

    def _within_global(
        self,
        query: str,
        radius: float,
        known: dict[int, float] | None,
        processes: int,
    ) -> list[tuple[int, float]]:
        """One global ``within`` pass: plan, scatter, merge.

        Returns global ``(record id, distance)`` hits under the oracle's
        ``(distance, id)`` order; when ``known`` is given (the top-k
        expansion memo, global ids) it is sliced per shard on the way
        out and extended with the fresh exact distances on the way back.
        """
        record = self.tokenizer.tokenize(query)
        probed = self._plan_within(record.aggregate_length, radius)
        locations = self._locations
        calls: dict[int, list[tuple[str, tuple]]] = {}
        for index in probed:
            local_known = None
            if known is not None:
                local_known = {}
                for global_id, distance in known.items():
                    shard_index, local_id = locations[global_id]
                    if shard_index == index:
                        local_known[local_id] = distance
            calls[index] = [("_shard_within", (query, radius, local_known))]
        gathered = self._scatter(calls, processes)
        merged: list[tuple[float, int]] = []
        for index in probed:
            hits, fresh = gathered[index][0]
            globals_ = self._shard_ids[index]
            merged.extend((distance, globals_[local]) for local, distance in hits)
            if known is not None:
                for local, distance in fresh.items():
                    known[globals_[local]] = distance
        merged.sort()
        return [(global_id, distance) for distance, global_id in merged]

    def _nonempty(self) -> list[int]:
        return [index for index, shard in enumerate(self.shards) if len(shard)]

    # -- serving ---------------------------------------------------------------

    def topk(
        self,
        queries: Sequence[str] | str,
        k: int = 5,
        method: str = "cascade",
        processes: int | None = None,
    ) -> list[list[tuple[str, float]]]:
        """As :meth:`SimilarityIndex.topk`, scatter-gathered.

        ``processes > 1`` parallelizes each query's scatter *across
        shards* on the shared pool (the serve loop stays serial over
        queries -- see :meth:`_scatter`).
        """
        if k < 1:
            raise ValueError("k must be positive")
        if isinstance(queries, str):
            queries = [queries]
        return [self._topk_one(query, k, method, processes or 0) for query in queries]

    def within(
        self,
        queries: Sequence[str] | str,
        radius: float,
        method: str = "cascade",
        processes: int | None = None,
    ) -> list[list[tuple[str, float]]]:
        """As :meth:`SimilarityIndex.within`, scatter-gathered with
        Lemma 6 shard pruning on the cascade path."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if method == "fuzzymatch":
            raise ValueError("within() is not defined for the fuzzymatch method")
        if isinstance(queries, str):
            queries = [queries]
        return [
            self._within_one(query, radius, method, processes or 0)
            for query in queries
        ]

    def join(
        self,
        threshold: float = 0.1,
        max_token_frequency: int | None = 1000,
        n_machines: int = 10,
        engine: str = "auto",
        **config_overrides,
    ):
        """TSJ self-join of the global corpus, byte-identical to
        :meth:`SimilarityIndex.join` (same cache key, same report, same
        counters and simulated seconds).  The join's signature
        partitioning is orthogonal to record placement, so it runs over
        the global record list and scatters through the existing TSJ
        ``engine`` fan-out rather than per shard.
        """
        key = (
            "join",
            threshold,
            max_token_frequency,
            n_machines,
            tuple(sorted(config_overrides.items())),
        )
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        from repro.core.api import join_records

        report = join_records(
            self._names,
            self._records,
            threshold=threshold,
            max_token_frequency=max_token_frequency,
            n_machines=n_machines,
            engine=engine,
            **config_overrides,
        )
        self._cache_put(key, report)
        return report

    # -- per-query routing ------------------------------------------------------

    def _topk_one(
        self, query: str, k: int, method: str, processes: int
    ) -> list[tuple[str, float]]:
        key = ("topk", method, query, k)
        cached = self._cache_get(key)
        if cached is not None:
            return list(cached)
        if method == "fuzzymatch":
            result = self._fuzzy_topk(query, k)
        elif method != "cascade":
            result = self._knn_topk_global(query, k, method, processes)
        else:
            result = self._cascade_topk(query, k, processes)
        self._cache_put(key, result)
        return list(result)

    def _within_one(
        self, query: str, radius: float, method: str, processes: int
    ) -> list[tuple[str, float]]:
        key = ("within", method, query, radius)
        cached = self._cache_get(key)
        if cached is not None:
            return list(cached)
        if method != "cascade":
            result = self._knn_within_global(query, radius, method, processes)
        else:
            result = [
                (self._names[global_id], distance)
                for global_id, distance in self._within_global(
                    query, radius, None, processes
                )
            ]
        self._cache_put(key, result)
        return list(result)

    def _cascade_topk(
        self, query: str, k: int, processes: int
    ) -> list[tuple[str, float]]:
        """The serial top-k search re-run globally at the router.

        Seeding (global overlap ranking, capped verification), the
        radius schedule and the expansion memo are the serial
        algorithm's, verbatim, over merged per-shard primitives -- which
        is what makes results *and counters* oracle-equal rather than a
        merge approximation.
        """
        k_effective = min(k, len(self._records))
        if k_effective == 0:
            return []
        # Seed: merge the disjoint per-shard overlap tallies, rank by
        # (-overlap, global id), verify the capped prefix where it lives.
        nonempty = self._nonempty()
        gathered = self._scatter(
            {index: [("_shard_overlap", (query,))] for index in nonempty},
            processes,
        )
        overlap: dict[int, int] = {}
        for index in nonempty:
            globals_ = self._shard_ids[index]
            for local, count in gathered[index][0].items():
                overlap[globals_[local]] = count
        cap = max(_MIN_SEED_CAP, _SEED_FACTOR * k_effective)
        ranked = sorted(overlap.items(), key=lambda item: (-item[1], item[0]))[:cap]
        verify_calls: dict[int, list[tuple[str, tuple]]] = {}
        locations = self._locations
        by_shard: dict[int, list[int]] = {}
        for global_id, _ in ranked:
            shard_index, local_id = locations[global_id]
            by_shard.setdefault(shard_index, []).append(local_id)
        for shard_index, local_ids in by_shard.items():
            verify_calls[shard_index] = [("_shard_verify", (query, local_ids))]
        gathered = self._scatter(verify_calls, processes)
        known: dict[int, float] = {}
        for shard_index in by_shard:
            globals_ = self._shard_ids[shard_index]
            for local, distance in gathered[shard_index][0]:
                known[globals_[local]] = distance
        # The serial path charges candidates+verified per seed; the
        # shard primitives are counter-free so the router charges here.
        self.counters[COUNTER_CANDIDATES] += len(ranked)
        self.counters[COUNTER_VERIFIED] += len(ranked)
        if len(known) >= k_effective:
            radius = sorted(known.values())[k_effective - 1]
        else:
            radius = 0.25
        while True:
            hits = self._within_global(query, radius, known, processes)
            if len(hits) >= k_effective or radius >= 1.0:
                break
            radius = min(1.0, radius * 2.0)
        return [
            (self._names[global_id], distance)
            for global_id, distance in hits[:k_effective]
        ]

    def _knn_topk_global(
        self, query: str, k: int, method: str, processes: int
    ) -> list[tuple[str, float]]:
        """Merge per-shard canonical metric-tree top-k lists.

        Each shard's canonical ``(distance, local id)`` top-k restricts
        the global canonical order (local-id order equals global-id
        order within a shard), so the global top-k is contained in the
        union: sort the mapped union by ``(distance, global id)``, keep
        ``k``.
        """
        nonempty = self._nonempty()
        gathered = self._scatter(
            {index: [("_shard_topk_knn", (query, k, method))] for index in nonempty},
            processes,
        )
        merged: list[tuple[float, int]] = []
        for index in nonempty:
            globals_ = self._shard_ids[index]
            merged.extend(
                (distance, globals_[local]) for local, distance in gathered[index][0]
            )
        merged.sort()
        return [
            (self._names[global_id], distance)
            for distance, global_id in merged[:k]
        ]

    def _knn_within_global(
        self, query: str, radius: float, method: str, processes: int
    ) -> list[tuple[str, float]]:
        nonempty = self._nonempty()
        gathered = self._scatter(
            {
                index: [("_shard_within_knn", (query, radius, method))]
                for index in nonempty
            },
            processes,
        )
        merged: list[tuple[float, int]] = []
        for index in nonempty:
            globals_ = self._shard_ids[index]
            merged.extend(
                (distance, globals_[local]) for local, distance in gathered[index][0]
            )
        merged.sort()
        return [
            (self._names[global_id], distance) for distance, global_id in merged
        ]

    def _fuzzy_index(self):
        built = self._global_knn.get("fuzzymatch")
        if built is None:
            from repro.knn import FuzzyMatchIndex

            built = FuzzyMatchIndex(
                [list(record.tokens) for record in self._records]
            )
            self._global_knn["fuzzymatch"] = built
        return built

    def _fuzzy_topk(self, query: str, k: int) -> list[tuple[str, float]]:
        """FMS top-k from the corpus-global index (weights are corpus-
        global, so fuzzymatch cannot shard; identical to the serial
        index's fuzzymatch branch by construction)."""
        built = self._fuzzy_index()
        record = self.tokenizer.tokenize(query)
        return [
            (" ".join(tokens), score)
            for tokens, score in built.query(list(record.tokens), k=k)
        ]
