"""Sharded serving: partition, route, scatter-gather, persist.

* :class:`ShardedIndex` -- N-shard scatter-gather serving with the
  single-index surface and oracle-equal results/counters
  (:mod:`repro.shard.index`);
* placements -- ``length`` (Lemma 6 shard pruning) and ``hash``
  (uniform baseline) (:mod:`repro.shard.placement`);
* :class:`ShardedSnapshotStore` -- per-shard snapshots + one global
  WAL under the unsharded recovery contract (:mod:`repro.shard.store`).
"""

from repro.shard.index import ShardedIndex
from repro.shard.placement import PLACEMENTS, build_placement
from repro.shard.store import ShardedSnapshotStore, is_sharded_store

__all__ = [
    "PLACEMENTS",
    "ShardedIndex",
    "ShardedSnapshotStore",
    "build_placement",
    "is_sharded_store",
]
