""":class:`ShardedSnapshotStore`: one directory, N shard snapshots, one WAL.

The sharded twin of :class:`repro.store.SnapshotStore`, holding a
:class:`repro.shard.ShardedIndex` durable under the same recovery
contract::

    store/
        shards.manifest       layout: placement, shard -> global ids,
                              generation, snapshot record count
        shard-00-g3.snap      one atomic per-shard snapshot each
        shard-01-g3.snap      (the ordinary section codec, reused)
        index.wal             appends acknowledged since the manifest

Two deliberate choices keep the unsharded guarantees intact:

* **One global WAL, global ``base`` offsets.**  Appends log exactly the
  bytes an unsharded store would log (the router owns global record
  ids), so the WAL is byte-identical to :class:`SnapshotStore`'s for
  the same append history, replay reuses the same skip/gap rules -- and
  migrating a directory between sharded and unsharded layouts never
  reinterprets the log.
* **Generation-suffixed shard snapshots, manifest-flip publication.**
  A snapshot of N shards is N files; writing them under the *next*
  generation's names and then atomically publishing the manifest (the
  same temp+fsync+rename container write, one section of JSON) means a
  crash anywhere mid-save leaves the previous generation complete and
  the manifest still pointing at it.  Old-generation files are removed
  only after the flip; orphans from a crashed save are swept on the
  next one.

:meth:`open` adds one sharded-only degradation step before the rebuild
of last resort: a directory holding an *unsharded* ``index.snap`` is
migrated (load through :class:`SnapshotStore` -- same WAL file, same
replay -- then saved sharded), and a manifest whose shard count or
placement kind differs from what the boot requested is resharded from
the loaded records.  Both preserve every acknowledged append; only
actual damage costs records, exactly as unsharded.
"""

from __future__ import annotations

import json
import os

from repro.api.errors import CorruptSnapshotError, WalReplayError
from repro.faults import FaultInjected, fault_point
from repro.shard.index import ShardedIndex
from repro.shard.placement import placement_from_manifest
from repro.store.format import read_snapshot_file, write_snapshot_file
from repro.store.snapshot import index_from_sections, index_to_sections
from repro.store.store import SNAPSHOT_NAME, WAL_NAME
from repro.store.wal import WriteAheadLog

__all__ = ["ShardedSnapshotStore", "is_sharded_store"]

MANIFEST_NAME = "shards.manifest"

#: The manifest layout this build writes (inside the container's own
#: versioned framing); bump on any key change.
MANIFEST_VERSION = 1


def is_sharded_store(directory: str) -> bool:
    """Whether ``directory`` holds a sharded store layout."""
    return os.path.exists(os.path.join(directory, MANIFEST_NAME))


class ShardedSnapshotStore:
    """Durable snapshot + WAL lifecycle for one :class:`ShardedIndex`.

    Same write-path surface as :class:`repro.store.SnapshotStore`
    (``log_append`` / ``maybe_compact`` / ``save`` / ``status``), so the
    session's durability hooks drive either store unchanged.
    """

    def __init__(
        self,
        directory: str,
        *,
        compact_after_records: int = 256,
        compact_after_bytes: int = 1 << 20,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.wal = WriteAheadLog(os.path.join(directory, WAL_NAME))
        self.compact_after_records = compact_after_records
        self.compact_after_bytes = compact_after_bytes
        self.rebuilds = 0
        self.loaded_from_snapshot = False
        #: Whether the last :meth:`open` changed the shard layout (an
        #: unsharded migration or an N/placement reshard) -- data
        #: preserved, so distinct from :attr:`rebuilds`.
        self.resharded = False
        self._wal_records = 0
        self._generation = 0

    def _shard_path(self, shard_index: int, generation: int) -> str:
        return os.path.join(
            self.directory, f"shard-{shard_index:02d}-g{generation}.snap"
        )

    # -- the write path ---------------------------------------------------------

    def save(self, index: ShardedIndex) -> int:
        """Atomically publish a full sharded snapshot; returns bytes written.

        Per-shard snapshots land under the next generation's filenames
        first; the manifest flip is the publication point; the WAL
        empties and the previous generation is swept only after it.
        """
        generation = self._generation + 1
        written = 0
        for shard_index, shard in enumerate(index.shards):
            written += write_snapshot_file(
                self._shard_path(shard_index, generation),
                index_to_sections(shard),
            )
        manifest = {
            "version": MANIFEST_VERSION,
            "generation": generation,
            "snapshot_records": len(index),
            "placement": index.placement.to_manifest(),
            "shard_ids": [list(ids) for ids in index._shard_ids],
            "cache_size": index.result_cache.capacity,
        }
        written += write_snapshot_file(
            self.manifest_path,
            {"manifest": json.dumps(manifest, ensure_ascii=False).encode("utf-8")},
        )
        self.wal.reset()
        self._wal_records = 0
        self._sweep(keep_generation=generation)
        self._generation = generation
        return written

    def _sweep(self, keep_generation: int) -> None:
        """Remove shard snapshots of any other generation (best effort):
        the flipped manifest no longer references them, whether they are
        the superseded set or orphans of a crashed save."""
        for entry in os.listdir(self.directory):
            if not (entry.startswith("shard-") and entry.endswith(".snap")):
                continue
            if f"-g{keep_generation}.snap" in entry:
                continue
            try:
                os.remove(os.path.join(self.directory, entry))
            except OSError:
                pass

    def log_append(self, names, base: int):
        """Durably log one append (global ``base``) before the mutation."""
        record = self.wal.append(names, base)
        self._wal_records += 1
        return record

    def maybe_compact(self, index: ShardedIndex) -> bool:
        """Cut a fresh sharded snapshot when the WAL outgrows its thresholds."""
        if (
            self._wal_records >= self.compact_after_records
            or self.wal.size_bytes() >= self.compact_after_bytes
        ):
            self.save(index)
            return True
        return False

    # -- the read path ----------------------------------------------------------

    def load(self, cache_size: int | None = None) -> ShardedIndex:
        """The strict load: manifest + shard snapshots + WAL replay.

        Raises :class:`FileNotFoundError` when no manifest exists and
        the typed snapshot/WAL errors on damage; a torn WAL tail is
        truncated and the intact prefix served, exactly as unsharded.
        """
        manifest = self._read_manifest()
        placement = placement_from_manifest(manifest["placement"])
        shard_ids = manifest["shard_ids"]
        shards = []
        for shard_index in range(placement.n_shards):
            path = self._shard_path(shard_index, manifest["generation"])
            try:
                sections = read_snapshot_file(path, what=f"shard snapshot {path!r}")
            except FileNotFoundError:
                raise CorruptSnapshotError(
                    f"manifest generation {manifest['generation']} names "
                    f"missing shard snapshot {path!r}"
                ) from None
            shards.append(index_from_sections(sections))
        self._check_layout(manifest, shards, shard_ids)
        index = ShardedIndex.from_shards(
            shards,
            placement,
            shard_ids,
            tokenizer=shards[0].tokenizer,
            backend=shards[0].backend,
            cache_size=(
                manifest["cache_size"] if cache_size is None else cache_size
            ),
        )
        index = self._replay_into(index, manifest["snapshot_records"])
        self._generation = manifest["generation"]
        self.loaded_from_snapshot = True
        return index

    def _replay_into(self, index: ShardedIndex, snapshot_records: int):
        """WAL replay with the unsharded skip/gap rules, batched."""
        records = self.wal.replay()
        pending: list[str] = []
        try:
            for record in records:
                fault_point("store.replay")
                if record.base < snapshot_records:
                    continue  # the snapshot generation already covers it
                if record.base != snapshot_records + len(pending):
                    raise WalReplayError(
                        f"append log {self.wal.path!r} has a gap: record "
                        f"expects {record.base} records, snapshot+replay "
                        f"holds {snapshot_records + len(pending)}"
                    )
                pending.extend(record.names)
        except FaultInjected as exc:
            raise WalReplayError(f"replay failed: {exc}") from exc
        if pending:
            index.append(pending)
        self._wal_records = len(records)
        return index

    def _read_manifest(self) -> dict:
        sections = read_snapshot_file(
            self.manifest_path, what=f"shard manifest {self.manifest_path!r}"
        )

        def fail(reason: str) -> CorruptSnapshotError:
            return CorruptSnapshotError(
                f"corrupt shard manifest {self.manifest_path!r}: {reason}"
            )

        payload = sections.get("manifest")
        if payload is None:
            raise fail("missing its manifest section")
        try:
            manifest = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise fail(f"undecodable: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != MANIFEST_VERSION
            or not isinstance(manifest.get("generation"), int)
            or not isinstance(manifest.get("snapshot_records"), int)
            or manifest["snapshot_records"] < 0
            or not isinstance(manifest.get("placement"), dict)
            or not isinstance(manifest.get("shard_ids"), list)
            or not isinstance(manifest.get("cache_size"), int)
            or manifest["cache_size"] < 0
        ):
            raise fail("holds malformed fields")
        return manifest

    def _check_layout(self, manifest, shards, shard_ids) -> None:
        """Cross-check manifest vs. restored shards: the id lists must be
        a permutation of the global range and match shard sizes."""

        def fail(reason: str) -> CorruptSnapshotError:
            return CorruptSnapshotError(
                f"corrupt sharded store {self.directory!r}: {reason}"
            )

        if len(shard_ids) != len(shards):
            raise fail("manifest shard_ids and shard snapshots disagree on count")
        total = sum(len(shard) for shard in shards)
        if total != manifest["snapshot_records"]:
            raise fail(
                f"manifest claims {manifest['snapshot_records']} records, "
                f"shard snapshots hold {total}"
            )
        seen: set[int] = set()
        for shard, globals_ in zip(shards, shard_ids):
            if not isinstance(globals_, list) or len(globals_) != len(shard):
                raise fail("a shard's id list does not match its snapshot")
            if globals_ != sorted(globals_):
                raise fail("a shard's global ids are not ascending")
            seen.update(globals_)
        if seen != set(range(total)):
            raise fail("shard id lists are not a permutation of the records")

    def open(
        self,
        names=None,
        *,
        n_shards: int = 2,
        placement: str = "length",
        tokenizer=None,
        backend: str = "auto",
        cache_size: int = 256,
    ) -> ShardedIndex:
        """The serving load: use the store, migrate/reshard, or degrade.

        In order of preference: load the sharded layout (resharding when
        ``n_shards``/``placement`` differ from what is on disk); migrate
        a directory still holding an unsharded ``index.snap`` (same WAL,
        same replay -- nothing acknowledged is lost); first-boot build
        from ``names``; and only for actual damage, the counted degraded
        rebuild from the boot corpus.
        """
        self.resharded = False
        try:
            loaded = self.load(cache_size=cache_size)
        except FileNotFoundError:
            migrated = self._migrate_unsharded(
                n_shards, placement, tokenizer, backend, cache_size
            )
            if migrated is not None:
                return migrated
            if self.wal.size_bytes():
                return self._rebuild(
                    names,
                    CorruptSnapshotError(
                        f"shard manifest {self.manifest_path!r} is missing "
                        "but its append log is not"
                    ),
                    n_shards, placement, tokenizer, backend, cache_size,
                )
        except (CorruptSnapshotError, WalReplayError) as exc:
            return self._rebuild(
                names, exc, n_shards, placement, tokenizer, backend, cache_size
            )
        else:
            if (
                len(loaded.shards) != n_shards
                or loaded.placement.kind != placement
            ):
                return self._reshard(
                    loaded, n_shards, placement, tokenizer, backend, cache_size
                )
            return loaded
        # First boot: nothing on disk yet.
        index = ShardedIndex(
            names or (),
            n_shards=n_shards,
            placement=placement,
            tokenizer=tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        return index

    def _migrate_unsharded(
        self, n_shards, placement, tokenizer, backend, cache_size
    ):
        """Adopt a directory written by the unsharded store, losslessly.

        :class:`SnapshotStore` shares this directory's WAL file and
        replay rules, so loading through it applies every acknowledged
        append; saving sharded then retires ``index.snap``.
        """
        from repro.store import SnapshotStore

        snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        if not os.path.exists(snapshot_path):
            return None
        flat = SnapshotStore(self.directory).load()
        index = ShardedIndex(
            flat.names,
            n_shards=n_shards,
            placement=placement,
            tokenizer=tokenizer or flat.tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        try:
            os.remove(snapshot_path)
        except OSError:
            pass
        self.loaded_from_snapshot = True
        self.resharded = True
        return index

    def _reshard(self, loaded, n_shards, placement, tokenizer, backend, cache_size):
        """Re-partition a loaded corpus to the requested layout and save."""
        index = ShardedIndex(
            loaded.names,
            n_shards=n_shards,
            placement=placement,
            tokenizer=tokenizer or loaded.tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        self.resharded = True
        return index

    def _rebuild(
        self, names, cause, n_shards, placement, tokenizer, backend, cache_size
    ):
        """Degrade: full rebuild from the boot corpus, counted."""
        from repro.runtime import pool

        if names is None:
            raise cause
        pool._bump("store_rebuilds")
        self.rebuilds += 1
        self.loaded_from_snapshot = False
        index = ShardedIndex(
            names,
            n_shards=n_shards,
            placement=placement,
            tokenizer=tokenizer,
            backend=backend,
            cache_size=cache_size,
        )
        self.save(index)
        return index

    # -- observability -----------------------------------------------------------

    def status(self) -> dict:
        """The ``store`` block for ``/v1/health`` and ``/v1/metrics`` --
        the unsharded keys plus the shard layout."""
        try:
            last_compaction = os.path.getmtime(self.manifest_path)
        except OSError:
            last_compaction = None
        return {
            "loaded": self.loaded_from_snapshot,
            "wal_records": self._wal_records,
            "last_compaction": last_compaction,
            "torn_tail_truncated": self.wal.torn_tail_truncated,
            "rebuilds": self.rebuilds,
            "sharded": True,
            "generation": self._generation,
            "resharded": self.resharded,
        }
