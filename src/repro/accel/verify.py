"""Batched pair verification with optional multiprocessing fan-out.

The joins' candidate-generation stages produce *batches* of id pairs to
verify against one threshold.  :func:`verify_pairs` is the one API for
that shape of work:

* a bounded memoization cache collapses duplicate string pairs (the
  skewed-token case: hot tokens/records recur across candidate pairs);
* an optional chunked executor spreads large batches over the shared
  runtime worker pool (:mod:`repro.runtime.pool`) -- the same processes
  the parallel MapReduce engine shuffles through, so verification never
  respawns workers per job (chunks amortise pickling; workers run the
  bit-parallel kernel and report their work units back so the ``ops``
  cost-model hook still sees the total).  Calls arriving *inside* a pool
  worker (e.g. a verify job reduced by the parallel engine) run the same
  chunks sequentially instead -- same results, same ``ops`` metering, no
  nested pool.

Results are positionally aligned with the input pairs -- element ``k`` is
the exact distance of ``pairs[k]`` when it is ``<= limit``, else ``None``
-- which makes backend-equivalence checks (and call sites that need to
know *which* candidates survived) trivial.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import repro.accel as _accel
from repro.accel.vector import verify_within_batch
from repro.accel.vocab import BoundedCache
from repro.distances.levenshtein import OpsHook
from repro.faults import fault_point
from repro.runtime.deadline import check_deadline
from repro.runtime.pool import in_worker_process, resilient_pool_map


def _verify_vector(
    string_pairs: Sequence[tuple[str, str]],
    limit: int,
    cache_size: int,
    ops: OpsHook,
) -> list[int | None]:
    """The ``vector`` backend's take on the memoized sequential loop.

    The memo walk is identical to the scalar path -- same keys, same
    first-seen puts, same FIFO evictions -- but instead of a distance,
    each entry records the batch *slot* of the pair's first unanswered
    occurrence.  Hits charge ``ops(1)`` like the scalar memo; only the
    misses reach the batched kernel, which charges the same units the
    scalar kernel would.  Results and total metering are therefore
    byte-identical to the ``bitparallel`` loop, just batched.
    """
    cache: BoundedCache = BoundedCache(cache_size)
    miss = object()
    slots: list[int] = []
    batch: list[tuple[str, str]] = []
    hits = 0
    for x, y in string_pairs:
        key = (x, y) if x <= y else (y, x)
        slot = cache.get(key, miss)
        if slot is miss:
            slot = len(batch)
            batch.append((x, y))
            cache.put(key, slot)
        else:
            hits += 1
        slots.append(slot)  # type: ignore[arg-type]
    values = verify_within_batch(batch, limit, ops=ops)
    if ops is not None and hits:
        ops(hits)
    return [values[slot] for slot in slots]


def _verify_chunk(
    payload: tuple[list[tuple[str, str]], int, str],
) -> tuple[list[int | None], int]:
    """Worker entry point: verify one chunk of string pairs.

    Returns the aligned results plus the total work units the kernels
    metered, so the parent can charge its ``ops`` hook once per chunk.
    """
    string_pairs, limit, backend = payload
    fault_point("verify.chunk")
    units = 0

    def meter(n: int) -> None:
        nonlocal units
        units += n

    if _accel.resolve_backend(backend) == "vector":
        results = _verify_vector(string_pairs, limit, 1 << 14, meter)
        return results, units

    cache: BoundedCache = BoundedCache(1 << 14)
    results: list[int | None] = []
    miss = object()
    for x, y in string_pairs:
        key = (x, y) if x <= y else (y, x)
        cached = cache.get(key, miss)
        if cached is not miss:
            meter(1)
            results.append(cached)  # type: ignore[arg-type]
            continue
        value = _accel.edit_distance_within(x, y, limit, ops=meter, backend=backend)
        cache.put(key, value)
        results.append(value)
    return results, units


def verify_pairs(
    pairs: Sequence[tuple[int, int]],
    strings: Sequence[str] | Mapping[int, str],
    limit: int,
    backend: str = "auto",
    processes: int | None = None,
    chunk_size: int = 4096,
    cache_size: int = 1 << 16,
    ops: OpsHook = None,
) -> list[int | None]:
    """Verify a batch of candidate id pairs against one edit threshold.

    Equivalent to ``[edit_distance_within(strings[i], strings[j], limit)
    for i, j in pairs]`` under every backend, but batched: duplicate
    string pairs are answered from a bounded memo, and with
    ``processes > 1`` the batch is chunked across a ``multiprocessing``
    pool.

    Parameters
    ----------
    pairs:
        Candidate id pairs; ids index into ``strings``.
    strings:
        The string table (a sequence or an id -> string mapping).
    limit:
        Inclusive verification threshold (negative: everything misses).
    backend:
        ``"auto" | "dp" | "bitparallel" | "vector"`` (see
        :mod:`repro.accel`); ``vector`` answers each chunk's memo misses
        through the numpy-batched kernel, same values and metering.
    processes:
        ``None``/``0``/``1`` verifies in-process; larger values fan the
        chunks out over the shared runtime pool
        (:func:`repro.runtime.pool.shared_pool`), which is reused across
        calls and shared with the parallel MapReduce engine.  The pool
        path requires a fork/spawn-safe runtime and charges ``ops`` with
        the workers' aggregated unit counts; calls already inside a pool
        worker run the identical chunked path sequentially (same results,
        same metering, no nested pool).
    chunk_size:
        Pairs per worker task (amortises pickling; tune for batch size).
    cache_size:
        Bound of the in-process memo (ignored on the pool path, where each
        worker keeps its own chunk-local memo).
    ops:
        Cost-model hook; receives kernel work units (and 1 per memo hit).

    Returns
    -------
    list
        Positionally aligned with ``pairs``: the exact distance when it is
        ``<= limit``, else ``None``.

    Examples
    --------
    >>> verify_pairs([(0, 1), (0, 2)], ["ann", "anne", "bob"], 1)
    [1, None]
    """
    resolved = _accel.resolve_backend(backend)  # fail fast on typos, any path
    if limit < 0:
        return [None] * len(pairs)

    if processes is not None and processes > 1 and len(pairs) > 1:
        string_pairs = [(strings[i], strings[j]) for i, j in pairs]
        chunks = [
            (string_pairs[k : k + chunk_size], limit, backend)
            for k in range(0, len(string_pairs), chunk_size)
        ]
        if in_worker_process():
            # Nested call inside a pool worker: no child pools allowed.
            # Running the identical chunks sequentially keeps results AND
            # ops metering byte-identical to the pooled execution, so
            # simulated costs stay engine-invariant.
            outcomes = []
            for chunk in chunks:
                check_deadline("verification chunk")
                outcomes.append(_verify_chunk(chunk))
        else:
            # Never fork more persistent workers than there are chunks;
            # resilient_pool_map rebuilds the pool and retries on worker
            # death, degrading to this process when retries run out --
            # the chunk function is pure, so results stay identical.
            outcomes = resilient_pool_map(
                _verify_chunk,
                chunks,
                min(processes, len(chunks)),
                label="verification chunks",
            )
        results = list(itertools.chain.from_iterable(r for r, _ in outcomes))
        if ops is not None:
            ops(sum(units for _, units in outcomes))
        return results

    if resolved == "vector":
        return _verify_vector(
            [(strings[i], strings[j]) for i, j in pairs], limit, cache_size, ops
        )

    cache: BoundedCache = BoundedCache(cache_size)
    miss = object()
    results = []
    for i, j in pairs:
        x, y = strings[i], strings[j]
        key = (x, y) if x <= y else (y, x)
        cached = cache.get(key, miss)
        if cached is not miss:
            if ops is not None:
                ops(1)
            results.append(cached)
            continue
        value = _accel.edit_distance_within(x, y, limit, ops=ops, backend=backend)
        cache.put(key, value)
        results.append(value)
    return results
