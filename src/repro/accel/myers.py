"""Bit-parallel Levenshtein kernels (Myers 1999, Hyyrö 2003).

Myers' algorithm encodes one column of the classic edit-distance DP as two
bit vectors (the positive/negative vertical deltas) and advances a whole
column per text character with a constant number of word operations --
``O(ceil(m / w) * n)`` for pattern length ``m``, text length ``n`` and
machine word width ``w``.  Python integers are arbitrary precision, so a
single set of bit vectors covers patterns of any length: a pattern longer
than 64 characters simply costs proportionally more big-int words per
column, with no blocked variant needed.  (We still meter work in 64-bit
words -- see *Cost model* below.)

Two entry points mirror :mod:`repro.distances.levenshtein` exactly:

* :func:`myers_distance` -- drop-in equivalent of
  :func:`repro.distances.levenshtein.levenshtein`.
* :func:`myers_within` -- drop-in equivalent of
  :func:`repro.distances.levenshtein.levenshtein_within`: the exact
  distance when it is ``<= limit``, else ``None``.  A banded early-abandon
  applies: after ``j`` text characters the running score can shrink by at
  most one per remaining character, so once
  ``score - (n - j) > limit`` the call bails out.

Both strip any common prefix/suffix first (edit distance is invariant
under removing shared affixes), which is a large constant win on the
near-duplicate pairs verification workloads are full of.

**Cost model.**  The ``ops`` hook of the DP kernels meters DP cells; the
bit-parallel kernels meter *word units* instead: ``ceil(m / 64)`` units
per processed column (one unit per 64-bit word the column step touches).
A DP cell and a word unit are deliberately *not* the same amount of work
-- a word unit covers up to 64 cells -- so switching backends genuinely
lowers the simulated-cluster compute charge, mirroring the real kernel:
a 10-char and a 60-char pattern cost the same single word per column.
"""

from __future__ import annotations

from repro.distances.levenshtein import OpsHook

#: Machine word width assumed by the work-unit meter.  Python's big ints
#: hide the real limb size; 64 is the paper-standard ``w`` of Myers 1999.
WORD_BITS = 64


def build_peq(pattern: str) -> dict[str, int]:
    """The match bit-vector table ``Peq``: character -> positions in
    ``pattern`` (bit ``i`` set iff ``pattern[i] == c``).

    Exposed so callers (e.g. :class:`repro.accel.Vocab`) can precompute and
    reuse the table when the same pattern is verified against many texts.
    """
    peq: dict[str, int] = {}
    bit = 1
    for character in pattern:
        peq[character] = peq.get(character, 0) | bit
        bit <<= 1
    return peq


def word_cost(pattern_length: int, columns: int) -> int:
    """Work units charged for ``columns`` bit-parallel columns over a
    pattern of ``pattern_length`` characters: one unit per 64-bit word per
    column (see *Cost model* above)."""
    words = -(-pattern_length // WORD_BITS)  # ceil division
    return words * columns


def _strip_affixes(x: str, y: str) -> tuple[str, str]:
    """Remove the common prefix and suffix (LD-invariant)."""
    lo = 0
    hi_x, hi_y = len(x), len(y)
    while lo < hi_x and lo < hi_y and x[lo] == y[lo]:
        lo += 1
    while hi_x > lo and hi_y > lo and x[hi_x - 1] == y[hi_y - 1]:
        hi_x -= 1
        hi_y -= 1
    return x[lo:hi_x], y[lo:hi_y]


def _advance_columns(
    peq_get,
    m: int,
    text: str,
    limit: int | None,
) -> tuple[int, int]:
    """Run the Hyyrö column recurrence over ``text``.

    Returns ``(score, columns_processed)``; ``score`` is the edit distance
    (or any value ``> limit`` after an early abandon).
    """
    ones = (1 << m) - 1
    high = 1 << (m - 1)
    vp = ones
    vn = 0
    score = m
    n = len(text)
    processed = 0
    for character in text:
        eq = peq_get(character, 0)
        d0 = ((((eq & vp) + vp) & ones) ^ vp) | eq | vn
        hp = vn | (ones & ~(d0 | vp))
        hn = vp & d0
        if hp & high:
            score += 1
        elif hn & high:
            score -= 1
        shifted = ((hp << 1) | 1) & ones
        vp = ((hn << 1) | (ones & ~(d0 | shifted))) & ones
        vn = shifted & d0
        processed += 1
        if limit is not None and score - (n - processed) > limit:
            break
    return score, processed


def myers_distance(x: str, y: str, ops: OpsHook = None) -> int:
    """Exact Levenshtein distance via the bit-parallel Myers kernel.

    Drop-in equivalent of :func:`repro.distances.levenshtein.levenshtein`
    (same value for every input, including empty and non-ASCII strings);
    the ``ops`` hook meters bit-parallel work units instead of DP cells
    (see the module docstring).

    Examples
    --------
    >>> myers_distance("thomson", "thompson")
    1
    >>> myers_distance("", "abc")
    3
    """
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    x, y = _strip_affixes(x, y)
    # Pattern is the shorter string: fewer words per column.
    if len(x) < len(y):
        x, y = y, x
    if not y:
        if ops is not None:
            ops(len(x))
        return len(x)
    peq = build_peq(y)
    score, processed = _advance_columns(peq.get, len(y), x, None)
    if ops is not None:
        ops(word_cost(len(y), processed))
    return score


def myers_within(x: str, y: str, limit: int, ops: OpsHook = None) -> int | None:
    """Levenshtein distance if it is at most ``limit``, else ``None``.

    Drop-in equivalent of
    :func:`repro.distances.levenshtein.levenshtein_within`: same
    value-or-``None`` for every input, with the same cheap pre-checks
    (equality, the ``abs(|x| - |y|)`` lower bound) and an early abandon
    once the running score cannot return to ``limit``.

    Examples
    --------
    >>> myers_within("kalan", "alan", 1)
    1
    >>> myers_within("kalan", "chan", 1) is None
    True
    """
    if limit < 0:
        return None
    if x == y:
        if ops is not None:
            ops(1)
        return 0
    if abs(len(x) - len(y)) > limit:
        if ops is not None:
            ops(1)
        return None
    x, y = _strip_affixes(x, y)
    if len(x) < len(y):
        x, y = y, x
    if not y:
        if ops is not None:
            ops(1)
        return len(x)  # == abs length difference <= limit, checked above
    peq = build_peq(y)
    score, processed = _advance_columns(peq.get, len(y), x, limit)
    if ops is not None:
        ops(word_cost(len(y), processed))
    return score if score <= limit else None


def myers_within_masks(
    peq: dict[str, int],
    pattern_length: int,
    text: str,
    limit: int,
    ops: OpsHook = None,
) -> int | None:
    """:func:`myers_within` against a precomputed ``Peq`` table.

    The caller owns the pattern/text role split and affix stripping:
    ``peq`` must describe the (non-empty) pattern via :func:`build_peq`.
    Used by :class:`repro.accel.Vocab`-backed verification, where the same
    token's table is reused across thousands of pairs.
    """
    if limit < 0:
        return None
    if abs(len(text) - pattern_length) > limit:
        if ops is not None:
            ops(1)
        return None
    score, processed = _advance_columns(peq.get, pattern_length, text, limit)
    if ops is not None:
        ops(word_cost(pattern_length, processed))
    return score if score <= limit else None
