"""Token interning: map tokens to dense ints and precompute Myers masks.

Token distributions in the paper's workloads are heavily skewed (the whole
point of the popular-token cut-off ``M``): the same tokens recur across
millions of records, so any per-token work -- hashing the string, building
the Myers ``Peq`` match table, even computing a distance to another token
-- is worth doing exactly once per run.  :class:`Vocab` provides that
layer:

* :meth:`Vocab.intern` maps a token to a dense integer id (stable for the
  lifetime of the vocab);
* :meth:`Vocab.masks` returns the token's precomputed ``(Peq, length)``
  Myers table, built lazily on first use;
* :meth:`Vocab.distance` / :meth:`Vocab.distance_within` compute token
  LDs on interned ids through a bounded memoization cache, so the skewed
  head of the distribution hits the cache instead of the kernel.  The
  memo stores the kernel's metered work units next to each distance and
  re-charges them on every hit, so the ``ops`` cost model sees the same
  simulated work no matter how warm the cache is -- simulated costs are
  byte-identical across repeated runs and across the serial/parallel
  execution engines (the memo only saves *wall-clock*).

:class:`BoundedCache` is a minimal FIFO-bounded map (insertion-ordered
dict, evict-oldest) -- enough to bound memory on adversarial streams
without the bookkeeping cost of a true LRU.  :class:`LRUCache` is its
true-LRU sibling for *result* caches (the serving layer's query/join
results, :class:`repro.knn.FuzzyMatchIndex`'s query cache), where a
``move_to_end`` per hit is noise next to the work a miss would redo and
recency actually tracks the skewed query stream.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.accel.myers import build_peq, myers_distance, myers_within_masks
from repro.distances.levenshtein import OpsHook


class BoundedCache:
    """A FIFO-bounded key/value cache (oldest entry evicted at capacity).

    Python dicts preserve insertion order, so eviction is ``O(1)`` via the
    first key.  FIFO (rather than LRU) keeps ``get`` allocation-free; for
    the skewed-token workload the hot head is re-inserted rarely enough
    that the difference is noise, and boundedness is what matters.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    _MISSING = object()

    def __init__(self, maxsize: int = 1 << 16) -> None:
        if maxsize < 1:
            raise ValueError("cache size must be positive")
        self.maxsize = maxsize
        self._data: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default=None):
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        data = self._data
        if key not in data and len(data) >= self.maxsize:
            del data[next(iter(data))]
        data[key] = value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


#: Canonical counter names for result-cache effectiveness, reported
#: alongside the :data:`repro.candidates.CASCADE_COUNTERS` set.
COUNTER_CACHE_HITS = "result_cache_hits"
COUNTER_CACHE_MISSES = "result_cache_misses"


class LRUCache:
    """A least-recently-used key/value cache with a hard capacity bound.

    Python dicts iterate in insertion order, so moving a key to the back
    on every hit makes the front the least-recently-used entry and
    eviction ``O(1)``.  ``capacity == 0`` disables the cache entirely
    (every ``get`` misses, ``put`` is a no-op) -- callers need no special
    casing to turn caching off.

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)  # evicts "b" (least recently used), not "a"
    >>> cache.get("b") is None
    True
    >>> cache.get("a"), cache.hits, cache.misses
    (1, 2, 1)
    """

    __slots__ = ("capacity", "_data", "hits", "misses")

    _MISSING = object()

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._data: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default=None):
        """The cached value, refreshing its recency; counts the outcome."""
        data = self._data
        value = data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # Re-insert to mark as most recently used.
        del data[key]
        data[key] = value
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU at capacity."""
        if self.capacity == 0:
            return
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            del data[next(iter(data))]
        data[key] = value

    def clear(self) -> None:
        """Drop all entries; the hit/miss counters keep accumulating."""
        self._data.clear()

    def items(self) -> list[tuple[Hashable, object]]:
        """Snapshot of the resident entries, LRU first (recency untouched)."""
        return list(self._data.items())

    def stats(self) -> dict[str, int]:
        """The canonical counter view (see module docstring)."""
        return {
            COUNTER_CACHE_HITS: self.hits,
            COUNTER_CACHE_MISSES: self.misses,
        }


class Vocab:
    """Dense-int interning of tokens with cached Myers match tables.

    Examples
    --------
    >>> vocab = Vocab()
    >>> a, b = vocab.intern("chan"), vocab.intern("chank")
    >>> vocab.intern("chan") == a  # stable ids
    True
    >>> vocab.distance(a, b)
    1
    >>> vocab.distance_within(a, b, 0) is None
    True
    """

    __slots__ = ("_ids", "_tokens", "_masks", "_pair_cache")

    def __init__(
        self, tokens: Iterable[str] = (), cache_size: int = 1 << 16
    ) -> None:
        self._ids: dict[str, int] = {}
        self._tokens: list[str] = []
        self._masks: list[tuple[dict[str, int], int] | None] = []
        self._pair_cache = BoundedCache(cache_size)
        for token in tokens:
            self.intern(token)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def intern(self, token: str) -> int:
        """The dense id of ``token``, allocating one on first sight."""
        token_id = self._ids.get(token)
        if token_id is None:
            token_id = len(self._tokens)
            self._ids[token] = token_id
            self._tokens.append(token)
            self._masks.append(None)
        return token_id

    def intern_all(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """Intern a whole token sequence (e.g. a tokenized string) at once."""
        intern = self.intern
        return tuple(intern(token) for token in tokens)

    def token(self, token_id: int) -> str:
        """The token string for a dense id."""
        return self._tokens[token_id]

    def masks(self, token_id: int) -> tuple[dict[str, int], int]:
        """The ``(Peq, length)`` Myers table of the token, built lazily."""
        cached = self._masks[token_id]
        if cached is None:
            token = self._tokens[token_id]
            cached = (build_peq(token), len(token))
            self._masks[token_id] = cached
        return cached

    # -- interned distances ---------------------------------------------------

    @property
    def cache(self) -> BoundedCache:
        """The bounded pair-distance memo (exposed for instrumentation)."""
        return self._pair_cache

    def distance(self, id_a: int, id_b: int, ops: OpsHook = None) -> int:
        """Exact LD between two interned tokens, memoized.

        A cache hit re-charges the work units the kernel metered when the
        pair was first computed, so the simulated cost of a verification
        is independent of cache warmth (hits only save wall-clock).
        """
        if id_a == id_b:
            if ops is not None:
                ops(1)
            return 0
        key = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        cached = self._pair_cache.get(key)
        if cached is not None:
            distance, units = cached
            if ops is not None:
                ops(units)
            return distance
        units = 0

        def meter(n: int) -> None:
            nonlocal units
            units += n

        distance = myers_distance(self._tokens[id_a], self._tokens[id_b], ops=meter)
        if ops is not None:
            ops(units)
        self._pair_cache.put(key, (distance, units))
        return distance

    def distance_within(
        self, id_a: int, id_b: int, limit: int, ops: OpsHook = None
    ) -> int | None:
        """Thresholded LD between interned tokens, memoized.

        The memo stores the *bounded* value ``min(LD, limit + 1)`` keyed by
        ``(ids, limit)`` so different limits never alias, together with the
        kernel's metered work units (re-charged on every hit, see
        :meth:`distance`); the precomputed ``Peq`` table of the shorter
        token feeds the kernel directly.
        """
        if limit < 0:
            return None
        if id_a == id_b:
            if ops is not None:
                ops(1)
            return 0
        key = (id_a, id_b, limit) if id_a < id_b else (id_b, id_a, limit)
        cached = self._pair_cache.get(key)
        if cached is not None:
            bounded, units = cached
            if ops is not None:
                ops(units)
            return None if bounded > limit else bounded
        units = 0

        def meter(n: int) -> None:
            nonlocal units
            units += n

        text_a, text_b = self._tokens[id_a], self._tokens[id_b]
        # Pattern is the shorter token so its cached masks serve the kernel.
        if len(text_a) < len(text_b):
            pattern_id, text = id_a, text_b
        else:
            pattern_id, text = id_b, text_a
        peq, pattern_length = self.masks(pattern_id)
        if pattern_length == 0:
            distance = len(text) if len(text) <= limit else None
            meter(1)
        else:
            distance = myers_within_masks(peq, pattern_length, text, limit, ops=meter)
        if ops is not None:
            ops(units)
        self._pair_cache.put(key, (limit + 1 if distance is None else distance, units))
        return distance
