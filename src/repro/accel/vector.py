"""Numpy-batched Myers verification: the ``vector`` backend.

:func:`verify_within_batch` answers a whole batch of thresholded
edit-distance queries at once.  Instead of one Python-level
:func:`repro.accel.myers.myers_within` call per pair, it packs every
pair's ``Peq`` match masks into uint64 ndarrays (the batched counterpart
of :class:`repro.accel.Vocab`'s prebuilt per-token tables) and advances
*all* pairs' DP columns in lockstep with vectorized bitwise ops -- the
same interpreter-out-of-the-hot-loop move the interned posting arrays
made for candidate generation.  A lane that finishes its text or trips
the banded early abandon retires from the ``alive`` mask; the column
loop stops as soon as every lane has retired, so a batch costs its
slowest lane, not ``max_len`` columns for everyone.

Equivalence contract
--------------------

``verify_within_batch(pairs, limit)`` returns exactly
``[myers_within(x, y, limit) for x, y in pairs]`` -- the same
value-or-``None`` results *and* the same total ``ops`` work units
(equality / length-gap pre-checks charge 1, kernel lanes charge
``word_cost`` for the columns they processed before retiring) -- so
simulated cluster seconds stay backend-invariant.  Lanes the vector
layout cannot host (stripped patterns wider than one 64-bit word, or
strings past ``_SCALAR_CUTOFF`` where padded code matrices would
balloon) fall back to the scalar kernel per pair, which preserves both
results and metering by construction.

When numpy is not installed the batch degrades to the scalar loop --
same contract, no speedup.  ``resolve_backend`` never hands out
``"vector"`` in that situation (``auto`` falls back to
``"bitparallel"``; an explicit ``backend="vector"`` raises with an
install hint), so the degraded path only runs when callers invoke this
module directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.accel.myers import WORD_BITS, myers_within
from repro.distances.levenshtein import OpsHook

#: Pairs with a string longer than this verify via the scalar kernel:
#: the padded (pairs x max_len) code matrices scale with the longest
#: string in the batch, and one pathological megabyte string must not
#: blow up memory for thousands of short neighbours.
_SCALAR_CUTOFF = 512

#: "No result" sentinel inside the int64 result array (distances are
#: non-negative); swapped for ``None`` in the final list conversion.
_MISS = -1

_UNSET = object()
_NUMPY: object = _UNSET


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it is not importable.

    Probed once per process.  Tests monkeypatch the module-level
    ``_NUMPY`` slot (to ``None``, or back to ``_UNSET`` to re-probe) to
    simulate a missing numpy without uninstalling it.
    """
    global _NUMPY
    if _NUMPY is _UNSET:
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    """Whether the ``vector`` backend can actually vectorize here."""
    return numpy_or_none() is not None


def _code_matrix(np, strings: list[str], width: int):
    """Strings as a zero-padded (batch, max_len) uint32 code matrix.

    ``numpy``'s fixed-width unicode dtype *is* that matrix -- UTF-32
    code units, NUL-padded to the row width -- so a single ``np.array``
    call builds the whole batch at C speed.

    NUL pads compare equal across rows, so a pad column does not flag a
    length mismatch on its own; every consumer caps its scan with a
    true-length bound (``min(len)`` at most), below which both rows are
    guaranteed real characters.  Pad collisions -- including against
    embedded *real* NULs -- can therefore only occur at or past the
    cap, where they are clipped away.
    """
    matrix = np.array(strings, dtype=f"U{width}")
    return matrix.view(np.uint32).reshape(len(strings), width)


def _prefix_lengths(np, left, right, caps):
    """Per-pair common-prefix lengths from two padded code matrices.

    The first differing column per row, capped to ``caps``; rows with
    no difference anywhere report the cap itself.
    """
    difference = left != right
    any_difference = difference.any(axis=1)
    first = np.where(any_difference, np.argmax(difference, axis=1), 0)
    return np.where(any_difference, np.minimum(first, caps), caps)


def _suffix_lengths(np, left, right, rows, len_left, len_right, caps, window=12):
    """Common-suffix lengths for the given rows, via right-justified gathers.

    Shifting row ``r`` right by ``width - len`` aligns every string's
    last character at the matrix edge, so a single elementwise compare
    lines ``x[len_x - 1 - j]`` up with ``y[len_y - 1 - j]`` at column
    ``width - 1 - j``.  The shifted gather reads garbage (clipped
    neighbours) where a row has no character; those columns correspond
    to offsets ``j >= min(len)``, which the caps clip away -- whether
    the garbage happened to compare equal or not.

    The scan is two-phase: a narrow trailing ``window`` settles every
    row that differs inside it (or whose cap fits), and only the rest
    -- genuinely long common suffixes -- rescan at full cap width.
    """
    width = np.int32(left.shape[1])
    # Suffixes are capped at ``caps`` per row, so only the trailing
    # ``max(caps)`` aligned columns can ever matter: a row with no
    # difference inside that span already has suffix >= its own cap.
    scan = min(max(int(caps.max()), 1), window)
    cols = np.arange(int(width) - scan, int(width), dtype=np.int32)[None, :]
    base = (rows.astype(np.int32) * width - width)[:, None] + cols
    aligned_left = left.reshape(-1).take(
        base + len_left.astype(np.int32)[:, None], mode="clip"
    )
    aligned_right = right.reshape(-1).take(
        base + len_right.astype(np.int32)[:, None], mode="clip"
    )
    difference = aligned_left != aligned_right
    any_difference = difference.any(axis=1)
    first = np.where(
        any_difference, np.argmax(difference[:, ::-1], axis=1), 0
    )
    result = np.where(
        any_difference, np.minimum(first, caps), np.minimum(caps, scan)
    )
    deep = np.nonzero(~any_difference & (caps > scan))[0]
    if deep.size:
        result[deep] = _suffix_lengths(
            np, left, right, rows[deep],
            len_left[deep], len_right[deep], caps[deep],
            window=int(caps[deep].max()),
        )
    return result




def verify_within_batch(
    pairs: Sequence[tuple[str, str]],
    limit: int,
    ops: OpsHook = None,
) -> list[int | None]:
    """Batched :func:`repro.accel.myers.myers_within` over string pairs.

    Returns ``[myers_within(x, y, limit) for x, y in pairs]`` -- same
    values, same total ``ops`` charge -- computed with all pairs'
    bit-parallel columns advancing in lockstep (see module docstring).

    Examples
    --------
    >>> verify_within_batch([("kalan", "alan"), ("kalan", "chan")], 1)
    [1, None]
    """
    np = numpy_or_none()
    if np is None:
        return [myers_within(x, y, limit, ops=ops) for x, y in pairs]
    count = len(pairs)
    if count == 0:
        return []
    if limit < 0:
        return [None] * count

    xs = [x for x, _ in pairs]
    ys = [y for _, y in pairs]
    len_x = np.fromiter(map(len, xs), dtype=np.int64, count=count)
    len_y = np.fromiter(map(len, ys), dtype=np.int64, count=count)

    oversized = np.maximum(len_x, len_y) > _SCALAR_CUTOFF
    if oversized.any():
        results: list[int | None] = [None] * count
        small = np.nonzero(~oversized)[0].tolist()
        for k, value in zip(
            small, verify_within_batch([pairs[k] for k in small], limit, ops=ops)
        ):
            results[k] = value
        for k in np.nonzero(oversized)[0].tolist():
            results[k] = myers_within(xs[k], ys[k], limit, ops=ops)
        return results

    min_lengths = np.minimum(len_x, len_y)
    # One build for both sides: the suffix scan's flipped-row alignment
    # needs x and y padded to a common width.
    codes = _code_matrix(np, xs + ys, max(int(len_x.max()), int(len_y.max()), 1))
    codes_x = codes[:count]
    codes_y = codes[count:]
    prefix = _prefix_lengths(np, codes_x, codes_y, min_lengths)

    # Same shape as the scalar pre-checks: equality, then the
    # abs-length-gap lower bound, then the empty-stripped-pattern case.
    # Both need only lengths and prefixes, so the (pricier) suffix scan
    # runs on the surviving rows alone; dead rows keep suffix 0, which
    # nothing below consults.
    equal = (len_x == len_y) & (prefix == len_x)
    gap = ~equal & (np.abs(len_x - len_y) > limit)
    live = ~equal & ~gap
    live_rows = np.nonzero(live)[0]
    suffix = np.zeros(count, dtype=np.int64)
    if live_rows.size:
        suffix[live_rows] = _suffix_lengths(
            np, codes_x, codes_y, live_rows,
            len_x[live_rows], len_y[live_rows],
            (min_lengths - prefix)[live_rows],
        )
    stripped_x = len_x - prefix - suffix
    stripped_y = len_y - prefix - suffix
    pattern_len = np.minimum(stripped_x, stripped_y)
    text_len = np.maximum(stripped_x, stripped_y)
    empty = live & (pattern_len == 0)
    wide = live & (pattern_len > WORD_BITS)
    lanes = np.nonzero(live & ~empty & ~wide)[0]

    out = np.full(count, _MISS, dtype=np.int64)
    out[equal] = 0
    out[empty] = text_len[empty]  # == |len_x - len_y| <= limit, checked above
    precheck_units = int(equal.sum() + gap.sum() + empty.sum())
    wide_rows = np.nonzero(wide)[0].tolist()

    if lanes.size:
        precheck_units += _advance_lanes(
            np, out, codes, count, lanes,
            prefix[lanes], pattern_len[lanes], text_len[lanes],
            stripped_x[lanes] < stripped_y[lanes], limit,
        )
    if ops is not None and precheck_units:
        ops(precheck_units)
    results = [value if value >= 0 else None for value in out.tolist()]
    for k in wide_rows:
        results[k] = myers_within(xs[k], ys[k], limit, ops=ops)
    return results


def _advance_lanes(
    np, out, codes, count, lanes, offsets, m, n, pattern_is_x, limit
) -> int:
    """Run the lockstep Hyyrö recurrence over the kernel lanes.

    Writes each lane's score-or-``_MISS`` into ``out`` and returns the
    total work units (patterns here fit one 64-bit word, so units ==
    columns each lane processed before retiring).
    """
    # Longest text first: each per-column op below then touches only
    # the contiguous prefix of lanes still inside their own text, so
    # element work tracks sum(n), not lanes * max(n).
    order = np.argsort(-n, kind="stable")
    lanes = lanes[order]
    offsets = offsets[order]
    m = m[order]
    n = n[order]
    pattern_is_x = pattern_is_x[order]
    lane_count = lanes.size
    max_m = int(m.max())
    max_n = int(n[0])
    rows = np.arange(lane_count)
    #: lanes [0, active[j]) are the ones with n > j
    active = np.searchsorted(-n, -np.arange(max_n, dtype=np.int64), side="left")

    # Patterns all fit one machine word (wider ones were routed to the
    # scalar kernel), so pick the narrowest word that still holds
    # max_m bits: every DP op below then moves half (or a quarter) the
    # bytes.  Wraparound at the word width plays the role of the scalar
    # kernel's ``& ones`` masking -- see the Peq comment.
    if max_m <= 16:
        word = np.uint16
    elif max_m <= 32:
        word = np.uint32
    else:
        word = np.uint64

    # Gather each lane's stripped pattern/text code windows straight
    # from the shared code matrix (x rows sit at ``lane``, y rows at
    # ``lane + count``), resolving the shorter-is-pattern rule in the
    # per-lane flat *start index* so each window is one fused take --
    # no full-width elementwise selects or index clamps.  Indexes past
    # a lane's span read the next row's codes; that garbage never
    # matters (pattern positions past ``m`` are remapped below, text
    # columns past ``n`` are never consulted) and only the final row
    # can run off the buffer itself, which ``mode="clip"`` absorbs.
    row_width = np.int32(codes.shape[1])
    flat = codes.reshape(-1)
    steps = np.arange(max_n, dtype=np.int32)[None, :]
    start_x = lanes.astype(np.int32) * row_width + offsets.astype(np.int32)
    shift = np.int32(count) * row_width
    pattern_start = np.where(pattern_is_x, start_x, start_x + shift)
    text_start = np.where(pattern_is_x, start_x + shift, start_x)
    pattern = flat.take(pattern_start[:, None] + steps[:, :max_m], mode="clip")
    text = flat.take(text_start[:, None] + steps, mode="clip")
    pattern_valid = np.arange(max_m)[None, :] < m[:, None]

    # Per-lane Peq over the batch's distinct pattern code points: the
    # ndarray analogue of Vocab's prebuilt per-token match tables.  The
    # lut maps a code point to 1 + its alphabet rank (a presence
    # bincount + cumsum -- O(n), where np.unique would sort); slot 0 is
    # a deliberate all-zeros column, so any character outside a lane's
    # pattern -- or outside the lut range entirely -- reads eq == 0
    # with no matched-mask bookkeeping.  Positions at or past a lane's
    # own pattern length are remapped to the lane's first character:
    # they contribute only bits at or above bit m, which are harmless,
    # because every operation in the recurrence propagates information
    # upward only (bitwise ops stay per-bit, addition carries go up,
    # overflow truncates at the word width), so bits below m are never
    # contaminated.  The same argument lets the loop below skip the
    # scalar kernel's per-pattern ``& ones`` masking entirely.
    pattern = np.where(pattern_valid, pattern, pattern[:, :1])
    low = np.uint32(pattern.min())
    present = (
        np.bincount(
            (pattern - low).ravel(), minlength=int(pattern.max() - low) + 1
        )
        > 0
    )
    ranks = np.cumsum(present)
    alphabet_size = int(ranks[-1])
    lut = np.where(present, ranks, 0).astype(np.uint32)
    # One trailing guaranteed-miss entry: unsigned wraparound sends
    # below-``low`` codes far above the table, so ``take``'s clip mode
    # routes every out-of-range code straight to it.
    lut = np.append(lut, np.uint32(0))

    def slots_for(codes):
        return lut.take(codes - low, mode="clip")

    pattern_slots = slots_for(pattern)
    text_slots = slots_for(text)
    width = alphabet_size + 1
    if word is np.uint64:
        peq = np.zeros((lane_count, width), dtype=word)
        for i in range(max_m):
            peq[rows, pattern_slots[:, i]] |= word(1 << i)
    else:
        # Bit ORs as float64 sums: each (lane, position) adds a distinct
        # power of two (exact below 2**53, and max_m <= 32 here), so one
        # weighted bincount assembles every Peq word at once.
        flat_slots = (rows * width)[:, None] + pattern_slots
        weights = np.broadcast_to(
            np.exp2(np.arange(max_m)), pattern_slots.shape
        )
        peq = (
            np.bincount(
                flat_slots.ravel(),
                weights=weights.ravel(),
                minlength=lane_count * width,
            )
            .astype(word)
            .reshape(lane_count, width)
        )
    peq[:, 0] = 0
    # eq per (column, lane), contiguous per column: a flat ``take``
    # through lane-major Peq beats a 2-d fancy gather + transpose.
    eq_rows = peq.reshape(-1).take(text_slots.T + (rows * width)[None, :])

    one = word(1)
    high = one << (m.astype(word) - one)
    vp = np.full(lane_count, np.iinfo(word).max, dtype=word)
    vn = np.zeros(lane_count, dtype=word)
    # Score tracking is deferred: the loop only records each column's
    # high-order hp/hn bits, and the running scores are recovered below
    # with two cumulative sums -- five fewer ufunc dispatches per
    # column than carrying the +1/-1 updates inline.
    hp_high = np.zeros((max_n, lane_count), dtype=word)
    hn_high = np.zeros((max_n, lane_count), dtype=word)
    d0 = np.empty(lane_count, dtype=word)
    horizontal = np.empty(lane_count, dtype=word)
    carry = np.empty(lane_count, dtype=word)
    scratch = np.empty(lane_count, dtype=word)
    last = 0
    for column in range(max_n):
        k = int(active[column])
        eq = eq_rows[column, :k]
        d = d0[:k]
        h = horizontal[:k]
        c = carry[:k]
        g = scratch[:k]
        v_pos = vp[:k]
        v_neg = vn[:k]
        # d0 = (((eq & vp) + vp) ^ vp) | eq | vn
        np.bitwise_and(eq, v_pos, out=d)
        np.add(d, v_pos, out=d)
        np.bitwise_xor(d, v_pos, out=d)
        np.bitwise_or(d, eq, out=d)
        np.bitwise_or(d, v_neg, out=d)
        # hp = vn | ~(d0 | vp); hn = vp & d0
        np.bitwise_or(d, v_pos, out=h)
        np.invert(h, out=h)
        np.bitwise_or(h, v_neg, out=h)
        np.bitwise_and(h, high[:k], out=hp_high[column, :k])
        np.bitwise_and(v_pos, d, out=c)
        np.bitwise_and(c, high[:k], out=hn_high[column, :k])
        # shifted = (hp << 1) | 1  (reusing the hp buffer)
        np.left_shift(h, one, out=h)
        np.bitwise_or(h, one, out=h)
        # vp = (hn << 1) | ~(d0 | shifted); vn = shifted & d0
        np.bitwise_or(d, h, out=g)
        np.invert(g, out=g)
        np.left_shift(c, one, out=c)
        np.bitwise_or(c, g, out=v_pos)
        np.bitwise_and(h, d, out=v_neg)
        last = column + 1
        # Periodic all-lanes-hopeless probe (lanes with n > last whose
        # banded lower bound still fits the limit): a break may only be
        # delayed by the probe stride, never premature.
        if (column & 7) == 7 and last < max_n:
            k = int(active[last])
            score = (
                m[:k]
                + (hp_high[:last, :k] != 0).sum(axis=0)
                - (hn_high[:last, :k] != 0).sum(axis=0)
            )
            if not (score - (n[:k] - last) <= limit).any():
                break

    # A lane retires at its first column j (1-based) with j == n (text
    # consumed) or score_j - (n - j) > limit (the banded abandon) --
    # exactly the scalar kernel's exit -- and is charged j units.
    # score_j + j never decreases (the score moves by at most -1 per
    # column while j moves +1), so the abandon condition
    # ``score_j + j - n > limit`` is monotone in j and its first
    # violation is simply 1 + the count of non-violating columns; no
    # argmax over a retirement matrix needed.  Columns a lane never ran
    # keep their zero-initialized history, so its trace plateaus there
    # and the ``min(n, ...)`` clamp supplies the j == n retirement.
    # int16 is plenty (scores stay below the _SCALAR_CUTOFF) and keeps
    # these full-trace temporaries a quarter the size.
    j = np.arange(1, last + 1, dtype=np.int16)[:, None]
    narrow = n.astype(np.int16)[None, :]
    sign = (hp_high[:last] != 0).view(np.int8)
    sign -= (hn_high[:last] != 0).view(np.int8)
    trace = m.astype(np.int16)[None, :] + np.cumsum(
        sign, axis=0, dtype=np.int16
    )
    surviving = ((trace + j) - narrow <= limit).sum(axis=0)
    retired_at = np.minimum(n, surviving + 1)
    final = trace[retired_at - 1, rows]
    out[lanes] = np.where(final <= limit, final, _MISS)
    return int(retired_at.sum())
