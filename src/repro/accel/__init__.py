"""Acceleration layer: bit-parallel kernels, token interning, batched verify.

Every join in this reproduction -- PassJoin/PassJoinK(MR), MassJoin, the
TSJ pipeline's verify job, and the metric-space/kNN indexes -- bottoms out
in per-pair edit-distance verification.  This package makes that hot path
fast while keeping the classic DP as the reference oracle:

* :mod:`repro.accel.myers` -- bit-parallel Myers/Hyyrö kernels
  (:func:`myers_distance`, :func:`myers_within`), drop-in equivalent to
  ``levenshtein`` / ``levenshtein_within`` including the ``ops`` hook.
* :mod:`repro.accel.vocab` -- :class:`Vocab` token interning with
  precomputed Myers match tables and a :class:`BoundedCache` memo for the
  skewed-token case.
* :mod:`repro.accel.verify` -- :func:`verify_pairs`, the batched
  verification API with an optional ``multiprocessing`` chunked executor.

Backend selection
-----------------

All verification entry points accept ``backend``:

* ``"dp"`` -- the reference banded dynamic program (the oracle);
* ``"bitparallel"`` -- the Myers kernel;
* ``"vector"`` -- the numpy-batched Myers kernel
  (:mod:`repro.accel.vector`): batched calls (``verify_pairs`` and the
  probe paths built on it) advance every pair's DP columns in lockstep;
  single-pair calls share the scalar Myers kernel, so ``vector`` and
  ``bitparallel`` are value- and metering-identical everywhere and differ
  only in batched wall-clock.  Requires numpy: an explicit
  ``backend="vector"`` without it raises with an install hint
  (``pip install numpy`` / ``pip install 'repro[vector]'``);
* ``"auto"`` -- the fast path: ``"vector"`` when numpy imports, silently
  falling back to ``"bitparallel"`` when it does not.  ``"auto"`` is the
  default everywhere user-facing; future native/SIMD backends slot in
  behind the same selector.

Backends agree *exactly* on every value-or-``None`` result (property-tested
in ``tests/test_accel_equivalence.py``); only ``ops`` metering differs (DP
cells vs bit-parallel word units -- see :mod:`repro.accel.myers`; the
``vector`` batch charges the same totals as the scalar Myers kernel).
"""

from __future__ import annotations

from repro.accel.myers import (
    WORD_BITS,
    build_peq,
    myers_distance,
    myers_within,
    myers_within_masks,
)
from repro.accel.vector import (
    numpy_available,
    verify_within_batch,
)
from repro.accel.vocab import BoundedCache, LRUCache, Vocab
from repro.distances.levenshtein import (
    OpsHook,
    levenshtein,
    levenshtein_bounded,
    levenshtein_within,
)

#: The accepted backend selectors, in documentation order.
BACKENDS = ("auto", "dp", "bitparallel", "vector")

#: What ``"auto"`` resolved to, probed once per process (numpy import is
#: not free; tests monkeypatch this back to ``None`` to re-probe).
_AUTO_RESOLVED: str | None = None


def resolve_backend(backend: str) -> str:
    """Normalise a backend selector to a concrete kernel name.

    ``"auto"`` resolves to the fast path (``"vector"`` when numpy is
    importable, else ``"bitparallel"``); an explicit ``"vector"``
    without numpy raises with an install hint; unknown names raise the
    uniform selector error.
    """
    global _AUTO_RESOLVED
    if backend == "auto":
        if _AUTO_RESOLVED is None:
            _AUTO_RESOLVED = "vector" if numpy_available() else "bitparallel"
        return _AUTO_RESOLVED
    if backend in ("dp", "bitparallel"):
        return backend
    if backend == "vector":
        if not numpy_available():
            raise ValueError(
                "verification backend 'vector' requires numpy, which is "
                "not installed; `pip install numpy` (or the packaged "
                "extra, `pip install 'repro[vector]'`), or use "
                "backend='auto' to fall back to 'bitparallel'"
            )
        return "vector"
    from repro.api.registry import validate_choice

    validate_choice("verification backend", backend, BACKENDS)
    # A name in BACKENDS without a branch above is a newly added
    # concrete kernel: it resolves to itself.
    return backend


def available_backends() -> tuple[str, ...]:
    """The selectors usable in this process (``vector`` needs numpy)."""
    if numpy_available():
        return BACKENDS
    return tuple(name for name in BACKENDS if name != "vector")


def edit_distance(x: str, y: str, ops: OpsHook = None, backend: str = "auto") -> int:
    """Exact Levenshtein distance under the selected backend."""
    if resolve_backend(backend) == "dp":
        return levenshtein(x, y, ops=ops)
    return myers_distance(x, y, ops=ops)


def edit_distance_within(
    x: str, y: str, limit: int, ops: OpsHook = None, backend: str = "auto"
) -> int | None:
    """Thresholded Levenshtein distance under the selected backend.

    Same contract as :func:`repro.distances.levenshtein.levenshtein_within`:
    the exact distance when ``<= limit``, else ``None``.
    """
    if resolve_backend(backend) == "dp":
        return levenshtein_within(x, y, limit, ops=ops)
    return myers_within(x, y, limit, ops=ops)


def edit_distance_bounded(
    x: str, y: str, limit: int, ops: OpsHook = None, backend: str = "auto"
) -> int:
    """``min(LD(x, y), limit + 1)`` under the selected backend (see
    :func:`repro.distances.levenshtein.levenshtein_bounded` for the capped
    contract).  Like the oracle, rejects negative limits on every backend."""
    if limit < 0:
        raise ValueError("limit must be non-negative")
    if resolve_backend(backend) == "dp":
        return levenshtein_bounded(x, y, limit, ops=ops)
    distance = myers_within(x, y, limit, ops=ops)
    return limit + 1 if distance is None else distance


# ---------------------------------------------------------------------------
# Process-wide token interning.
#
# Token-level distances (the SLD cost matrix, fuzzy set measures, the
# MassJoin token join) hit the same skewed token population over and over;
# a single process-wide Vocab lets every layer share the interning, the
# precomputed Myers tables and the bounded pair memo.
#
# Only the pair memo is bounded: the interning tables themselves grow
# with the number of *distinct* tokens seen, by design ("once per run").
# A long-lived service streaming unbounded vocabularies should call
# reset_token_vocab() at run boundaries to reclaim the tables.
# ---------------------------------------------------------------------------

_DEFAULT_VOCAB = Vocab()


def token_vocab() -> Vocab:
    """The process-wide :class:`Vocab` shared by all interned fast paths."""
    return _DEFAULT_VOCAB


def reset_token_vocab(cache_size: int = 1 << 16) -> Vocab:
    """Replace the process-wide vocab (tests / long-lived services)."""
    global _DEFAULT_VOCAB
    _DEFAULT_VOCAB = Vocab(cache_size=cache_size)
    return _DEFAULT_VOCAB


def token_distance(x: str, y: str, ops: OpsHook = None, backend: str = "auto") -> int:
    """Exact LD between two *tokens*, interned and memoized on the fast path.

    Under ``backend="dp"`` this is a plain oracle call (no interning, no
    memo) so the reference path stays allocation-for-allocation identical
    to the seed implementation.
    """
    if resolve_backend(backend) == "dp":
        return levenshtein(x, y, ops=ops)
    vocab = _DEFAULT_VOCAB
    return vocab.distance(vocab.intern(x), vocab.intern(y), ops=ops)


def token_distance_within(
    x: str, y: str, limit: int, ops: OpsHook = None, backend: str = "auto"
) -> int | None:
    """Thresholded LD between two *tokens* through the interned memo."""
    if resolve_backend(backend) == "dp":
        return levenshtein_within(x, y, limit, ops=ops)
    vocab = _DEFAULT_VOCAB
    return vocab.distance_within(vocab.intern(x), vocab.intern(y), limit, ops=ops)


def token_nld(x: str, y: str, backend: str = "auto") -> float:
    """Normalized LD between two tokens via the interned fast path.

    ``NLD = 2 * LD / (|x| + |y| + LD)`` (Def. 2); used by the fuzzy set
    measures' default token-similarity predicate.
    """
    if x == y:
        return 0.0
    distance = token_distance(x, y, backend=backend)
    return 2.0 * distance / (len(x) + len(y) + distance)


from repro.accel.verify import verify_pairs  # noqa: E402  (needs the above)

__all__ = [
    "BACKENDS",
    "WORD_BITS",
    "BoundedCache",
    "LRUCache",
    "Vocab",
    "available_backends",
    "build_peq",
    "edit_distance",
    "edit_distance_bounded",
    "edit_distance_within",
    "myers_distance",
    "myers_within",
    "myers_within_masks",
    "numpy_available",
    "resolve_backend",
    "reset_token_vocab",
    "verify_within_batch",
    "token_distance",
    "token_distance_within",
    "token_nld",
    "token_vocab",
    "verify_pairs",
]
