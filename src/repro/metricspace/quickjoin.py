"""QuickJoin (Jacox & Samet, TODS 2008): serial metric-space join.

The foundational algorithm Sec. IV credits the distributed metric-space
joins with "rediscovering or borrowing ideas from".  Quicksort-style ball
partitioning: pick a pivot, split records into the *inside* ball
(``d(r, p) < radius``) and the *outside*, recurse on each half, and
additionally recurse on the two *window* strips within ``threshold`` of
the boundary (records there may join across the split).  Small
sub-problems fall back to nested-loop comparison.

Serial by design (the paper's point is that serial algorithms cannot scale
to 44M records); included as the baseline ancestor of ClusterJoin /
MR-MAPSS / HMJ and cross-checked against them in tests.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.metricspace.clusterjoin import (
    Metric,
    MetricWithin,
    nsld_metric,
    nsld_metric_within,
)


class QuickJoin:
    """Serial metric-space self-join by recursive ball partitioning.

    Parameters
    ----------
    threshold:
        Join threshold ``T`` on the metric.
    small_limit:
        Sub-problems at or below this size use nested loops (default 32).
    metric / metric_within:
        The metric (default NSLD over tokenized strings).
    seed:
        Pivot selection seed.
    """

    def __init__(
        self,
        threshold: float = 0.1,
        small_limit: int = 32,
        metric: Metric = nsld_metric,
        metric_within: MetricWithin = nsld_metric_within,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if small_limit < 2:
            raise ValueError("small_limit must be at least 2")
        self.threshold = threshold
        self.small_limit = small_limit
        self.metric = metric
        self.metric_within = metric_within
        self.seed = seed
        #: Metric evaluations performed by the last join (for the tests
        #: demonstrating sub-quadratic behaviour).
        self.last_join_evaluations = 0

    # -- internals ---------------------------------------------------------------

    def _nested_loop(
        self, items: list[tuple[int, object]], results: set, distances: dict
    ) -> None:
        for a in range(len(items)):
            id_a, value_a = items[a]
            for b in range(a + 1, len(items)):
                id_b, value_b = items[b]
                pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                if pair in distances:
                    continue
                self.last_join_evaluations += 1
                distance = self.metric_within(value_a, value_b, self.threshold, None)
                if distance is not None:
                    results.add(pair)
                    distances[pair] = distance

    def _nested_loop_cross(
        self,
        left: list[tuple[int, object]],
        right: list[tuple[int, object]],
        results: set,
        distances: dict,
    ) -> None:
        for id_a, value_a in left:
            for id_b, value_b in right:
                if id_a == id_b:
                    continue
                pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                if pair in distances:
                    continue
                self.last_join_evaluations += 1
                distance = self.metric_within(value_a, value_b, self.threshold, None)
                if distance is not None:
                    results.add(pair)
                    distances[pair] = distance

    def _join(
        self,
        items: list[tuple[int, object]],
        rng: random.Random,
        results: set,
        distances: dict,
        depth: int,
    ) -> None:
        if len(items) <= self.small_limit or depth > 48:
            self._nested_loop(items, results, distances)
            return
        pivot = items[rng.randrange(len(items))][1]
        annotated = []
        for identifier, value in items:
            self.last_join_evaluations += 1
            annotated.append((identifier, value, self.metric(value, pivot)))
        radii = sorted(d for _, _, d in annotated)
        radius = radii[len(radii) // 2]
        inside = [(i, v) for i, v, d in annotated if d < radius]
        outside = [(i, v) for i, v, d in annotated if d >= radius]
        if not inside or not outside:
            # Degenerate split (many records equidistant from the pivot).
            self._nested_loop(items, results, distances)
            return
        # Window strips: records within T of the boundary on either side.
        window_in = [
            (i, v) for i, v, d in annotated
            if radius - self.threshold <= d < radius
        ]
        window_out = [
            (i, v) for i, v, d in annotated
            if radius <= d <= radius + self.threshold
        ]
        self._join(inside, rng, results, distances, depth + 1)
        self._join(outside, rng, results, distances, depth + 1)
        self._join_windows(window_in, window_out, rng, results, distances, depth)

    def _join_windows(
        self, left, right, rng, results, distances, depth
    ) -> None:
        """Join across the boundary: every pair takes one record from each
        window strip (QuickJoinWin).  Recurses with the same ball-split
        idea when both strips are large."""
        if not left or not right:
            return
        if (
            len(left) <= self.small_limit
            or len(right) <= self.small_limit
            or depth > 48
        ):
            self._nested_loop_cross(left, right, results, distances)
            return
        pivot = left[rng.randrange(len(left))][1]

        def annotate(strip):
            annotated = []
            for identifier, value in strip:
                self.last_join_evaluations += 1
                annotated.append((identifier, value, self.metric(value, pivot)))
            return annotated

        left_a, right_a = annotate(left), annotate(right)
        radii = sorted(d for _, _, d in left_a + right_a)
        radius = radii[len(radii) // 2]

        def split(annotated):
            inside = [(i, v) for i, v, d in annotated if d < radius]
            outside = [(i, v) for i, v, d in annotated if d >= radius]
            window_in = [
                (i, v) for i, v, d in annotated
                if radius - self.threshold <= d < radius
            ]
            window_out = [
                (i, v) for i, v, d in annotated
                if radius <= d <= radius + self.threshold
            ]
            return inside, outside, window_in, window_out

        l_in, l_out, l_win_in, l_win_out = split(left_a)
        r_in, r_out, r_win_in, r_win_out = split(right_a)
        if (not l_in and not r_in) or (not l_out and not r_out):
            self._nested_loop_cross(left, right, results, distances)
            return
        self._join_windows(l_in, r_in, rng, results, distances, depth + 1)
        self._join_windows(l_out, r_out, rng, results, distances, depth + 1)
        self._join_windows(l_win_in, r_win_out, rng, results, distances, depth + 1)
        self._join_windows(l_win_out, r_win_in, rng, results, distances, depth + 1)

    # -- public API -----------------------------------------------------------------

    def self_join(self, records: Sequence) -> set[tuple[int, int]]:
        """All pairs ``(i, j)``, ``i < j``, within the metric threshold."""
        self.last_join_evaluations = 0
        rng = random.Random(self.seed)
        results: set[tuple[int, int]] = set()
        distances: dict[tuple[int, int], float] = {}
        self._join(list(enumerate(records)), rng, results, distances, 0)
        return results
