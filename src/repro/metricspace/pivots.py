"""Pivot (centroid) selection for metric-space partitioning.

Both strategies are deterministic given a seed, as everything in this
repository must be for reproducible simulated runtimes.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, TypeVar

Record = TypeVar("Record")
Metric = Callable[[Record, Record], float]


def sample_pivots(records: Sequence[Record], k: int, seed: int = 0) -> list[Record]:
    """Uniformly sample ``k`` distinct-position pivots (ClusterJoin's
    strategy: random centroids approximate a space dissection well when
    the sample is large enough).

    Returns fewer than ``k`` pivots when there are fewer records.
    """
    if k < 1:
        raise ValueError("need at least one pivot")
    rng = random.Random(seed)
    indices = list(range(len(records)))
    rng.shuffle(indices)
    return [records[i] for i in indices[:k]]


def farthest_point_pivots(
    records: Sequence[Record],
    k: int,
    metric: Metric,
    seed: int = 0,
) -> list[Record]:
    """Greedy max-min (Gonzalez) pivot selection.

    Starts from a random record, then repeatedly adds the record farthest
    from the pivots chosen so far.  Produces well-spread pivots at
    ``O(n * k)`` metric evaluations -- the quality option for the ablation
    benchmarks.
    """
    if k < 1:
        raise ValueError("need at least one pivot")
    if not records:
        return []
    rng = random.Random(seed)
    first = rng.randrange(len(records))
    pivots = [records[first]]
    min_distance = [metric(record, records[first]) for record in records]
    while len(pivots) < min(k, len(records)):
        index = max(range(len(records)), key=lambda i: (min_distance[i], -i))
        if min_distance[index] == 0.0:
            break  # remaining records coincide with existing pivots
        pivots.append(records[index])
        for i, record in enumerate(records):
            distance = metric(record, records[index])
            if distance < min_distance[i]:
                min_distance[i] = distance
    return pivots
