"""ClusterJoin-style Voronoi partitioning join (Das Sarma et al., VLDB 2014).

The space is dissected among ``k`` sampled centroids; every record lands in
its nearest centroid's *home* partition and is replicated to neighbouring
partitions via the **general filter**: a record ``r`` with home ``c_h``
must also visit partition ``c_j`` whenever ``(d(r, c_j) - d(r, c_h)) / 2
<= T`` -- in a metric space the distance from ``r`` to the Voronoi
hyperplane between the two centroids is at least that half-difference, so
no T-neighbour of ``r`` can hide in ``c_j`` otherwise.

Partitions are compared in a reducer apiece: plain ClusterJoin compares
every pair with at least one *home* member, which double-counts pairs
across partitions and therefore needs a dedup job -- the inefficiency
MR-MAPSS's symmetry rule removes (see :mod:`repro.metricspace.mrmapss`).

A cheap triangle-inequality filter (pivot pruning on the distance to
centroid 0) runs before each exact verification.

The metric defaults to NSLD (Theorem 2 licenses this), making the class
directly comparable with TSJ, but any metric can be supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.distances.setwise import nsld, nsld_within
from repro.mapreduce import (
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)
from repro.metricspace.pivots import sample_pivots

#: Full metric: ``metric(a, b, ops_hook) -> distance``.
Metric = Callable[..., float]
#: Thresholded metric: ``metric_within(a, b, t, ops_hook) -> distance | None``.
MetricWithin = Callable[..., float | None]


def nsld_metric(a, b, ops=None) -> float:
    """Default metric: NSLD over tokenized strings (fast-path backend;
    byte-identical to the DP oracle -- see :mod:`repro.accel`)."""
    return nsld(a, b, ops=ops, backend="auto")


def nsld_metric_within(a, b, threshold, ops=None):
    """Default thresholded metric: NSLD with the Lemma 6 shortcut
    (fast-path backend; byte-identical to the DP oracle)."""
    return nsld_within(a, b, threshold, ops=ops, backend="auto")


@dataclass
class MetricJoinResult:
    """Similar pairs plus the pipeline work ledger."""

    pairs: set[tuple[int, int]]
    distances: dict[tuple[int, int], float]
    pipeline: PipelineResult

    def simulated_seconds(self, cost=None) -> float:
        return self.pipeline.simulated_seconds(cost)


class _PartitionJob(MapReduceJob):
    """Assign each record to its home partition and its general-filter
    replicas.  Emits ``(partition, (id, record, partitions, is_home, d0))``.
    """

    name = "clusterjoin-partition"

    def __init__(self, pivots, threshold: float, metric: Metric) -> None:
        self.pivots = pivots
        self.threshold = threshold
        self.metric = metric

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        identifier, value = record
        distances = [self.metric(value, pivot, ctx.charge) for pivot in self.pivots]
        home = min(range(len(distances)), key=lambda i: (distances[i], i))
        partitions = tuple(
            sorted(
                j
                for j in range(len(distances))
                if j == home
                or (distances[j] - distances[home]) / 2.0 <= self.threshold
            )
        )
        for partition in partitions:
            yield partition, (
                identifier,
                value,
                partitions,
                partition == home,
                distances[0],
            )

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        # Pass-through: comparison happens in the compare job so partition
        # sizes are observable between the phases.
        for value in values:
            yield key, value


class _CompareJob(MapReduceJob):
    """Compare all pairs within a partition (at-least-one-home rule)."""

    name = "clusterjoin-compare"

    def __init__(
        self, threshold: float, metric_within: MetricWithin
    ) -> None:
        self.threshold = threshold
        self.metric_within = metric_within

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        members = sorted(values, key=lambda item: item[0])
        for a in range(len(members)):
            id_a, value_a, _, home_a, d0_a = members[a]
            for b in range(a + 1, len(members)):
                id_b, value_b, _, home_b, d0_b = members[b]
                if id_a == id_b:
                    continue
                if not (home_a or home_b):
                    continue  # both replicas: their homes cover this pair
                ctx.count("metric-comparisons")
                # Triangle-inequality pivot pruning on centroid 0.
                ctx.charge(1)
                if abs(d0_a - d0_b) > self.threshold:
                    ctx.count("pruned-pivot")
                    continue
                distance = self.metric_within(
                    value_a, value_b, self.threshold, ctx.charge
                )
                if distance is not None:
                    yield (id_a, id_b), distance


class _DedupPairsJob(MapReduceJob):
    """Collapse the duplicate pairs the at-least-one-home rule produces."""

    name = "clusterjoin-dedup"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield key, values[0]


class ClusterJoin:
    """Single-level Voronoi metric-space self-join.

    Parameters
    ----------
    engine:
        Simulated cluster.
    threshold:
        Join threshold ``T`` on the metric.
    n_pivots:
        Number of sampled centroids; default ``max(2, ~sqrt(n))``.
    metric / metric_within:
        The metric (default NSLD) and its thresholded form.
    seed:
        Pivot-sampling seed.
    """

    def __init__(
        self,
        engine: MapReduceEngine | None = None,
        threshold: float = 0.1,
        n_pivots: int | None = None,
        metric: Metric = nsld_metric,
        metric_within: MetricWithin = nsld_metric_within,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.engine = engine or MapReduceEngine()
        self.threshold = threshold
        self.n_pivots = n_pivots
        self.metric = metric
        self.metric_within = metric_within
        self.seed = seed

    def _pivot_count(self, n_records: int) -> int:
        if self.n_pivots is not None:
            return self.n_pivots
        return max(2, int(round(n_records**0.5)))

    def self_join(self, records: Sequence) -> MetricJoinResult:
        """All pairs ``(i, j)``, ``i < j``, within the metric threshold."""
        engine = self.engine
        tagged = list(enumerate(records))
        if len(tagged) < 2:
            return MetricJoinResult(set(), {}, PipelineResult([], []))
        pivots = sample_pivots(records, self._pivot_count(len(records)), self.seed)

        partitioned = engine.run(
            _PartitionJob(pivots, self.threshold, self.metric), tagged
        )
        compared = engine.run(
            _CompareJob(self.threshold, self.metric_within), partitioned.outputs
        )
        dedup = engine.run(_DedupPairsJob(), compared.outputs)

        pairs = {pair for pair, _ in dedup.outputs}
        distances = dict(dedup.outputs)
        pipeline = PipelineResult(
            outputs=sorted(pairs),
            stages=[partitioned.metrics, compared.metrics, dedup.metrics],
        )
        return MetricJoinResult(pairs=pairs, distances=distances, pipeline=pipeline)
