"""HMJ -- the Hybrid Metric Joiner of Sec. V-E.

The paper's in-house baseline combines the most scalable published ideas:
ClusterJoin's Voronoi dissection and general filter [53], MR-MAPSS's
symmetry exploitation and recursive repartitioning [68], and -- the hybrid
part -- a per-partition choice between **sub-centroid** splitting (when the
partition's records are scattered) and a **2-dimensional pivot-distance
grid** (when they are concentrated), "depending on how the tokenized
strings are scattered within the partition".

Grid splitting maps each record to the cell
``(floor(d(r, p1) / T), floor(d(r, p2) / T))`` of its distances to two
pivots.  By the triangle inequality a within-``T`` pair differs by at most
one cell per axis, so replicating each record to its home cell and the
three lower neighbours ``{c_i - 1, c_i} x {c_j - 1, c_j}`` guarantees every
qualifying pair co-occurs in the componentwise-minimum cell, which serves
as its unique comparison site.

The class inherits the driver, the symmetry rule and the leaf comparison
from :class:`repro.metricspace.mrmapss.MRMAPSS` and overrides only the
per-round splitting strategy.
"""

from __future__ import annotations

from typing import Iterator

from repro.mapreduce import MapReduceContext, MapReduceJob
from repro.metricspace.mrmapss import MRMAPSS, Payload
from repro.metricspace.pivots import sample_pivots


class _HybridAssignJob(MapReduceJob):
    """One HMJ splitting round with a per-group strategy.

    ``plans`` maps each oversized group path to either
    ``("voronoi", pivots)`` or ``("grid", (pivot_1, pivot_2))``.
    """

    name = "hmj-assign"

    def __init__(self, plans: dict, threshold: float, metric) -> None:
        self.plans = plans
        self.threshold = threshold
        self.metric = metric

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        path, (identifier, value, levels, d0) = record
        kind, pivots = self.plans[path]
        if kind == "voronoi":
            distances = [self.metric(value, pivot, ctx.charge) for pivot in pivots]
            home = min(range(len(distances)), key=lambda i: (distances[i], i))
            partitions = tuple(
                sorted(
                    j
                    for j in range(len(distances))
                    if j == home
                    or (distances[j] - distances[home]) / 2.0 <= self.threshold
                )
            )
            new_levels = levels + (("voronoi", partitions),)
            for partition in partitions:
                yield path + (partition,), (identifier, value, new_levels, d0)
        else:
            pivot_1, pivot_2 = pivots
            cell = (
                int(self.metric(value, pivot_1, ctx.charge) // self.threshold),
                int(self.metric(value, pivot_2, ctx.charge) // self.threshold),
            )
            new_levels = levels + (("grid", cell),)
            for di in (0, 1):
                for dj in (0, 1):
                    replica = (cell[0] - di, cell[1] - dj)
                    yield path + (replica,), (identifier, value, new_levels, d0)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        for value in values:
            yield key, value


class HMJ(MRMAPSS):
    """The hybrid metric joiner TSJ is compared against in Fig. 7.

    Additional parameters
    ---------------------
    scatter_factor:
        A group is considered *scattered* -- and split with sub-centroids
        -- when the mean distance from a small member sample to an anchor
        member exceeds ``scatter_factor * threshold``; otherwise the
        2-d grid is used.  Default 4.0.
    """

    def __init__(self, *args, scatter_factor: float = 4.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.threshold <= 0:
            raise ValueError("HMJ's grid strategy requires a positive threshold")
        self.scatter_factor = scatter_factor

    def _estimate_scatter(self, members: list[Payload]) -> float:
        """Mean distance of up to 16 sampled members to the first member.

        Driver-side planning estimate (like ClusterJoin's sampling phase);
        its cost is negligible next to the assignment round it steers.
        """
        anchor = members[0][1]
        sample = members[1 : min(len(members), 17)]
        if not sample:
            return 0.0
        total = sum(self.metric(value, anchor) for _, value, _, _ in sample)
        return total / len(sample)

    def _split_round(self, oversized: dict[tuple, list[Payload]], depth: int):
        plans: dict[tuple, tuple] = {}
        for path, members in oversized.items():
            values = [value for _, value, _, _ in members]
            if self._estimate_scatter(members) > self.scatter_factor * self.threshold:
                plans[path] = (
                    "voronoi",
                    sample_pivots(
                        values, min(self.branching, len(values)), self.seed + depth
                    ),
                )
            else:
                pivots = sample_pivots(values, 2, self.seed + depth)
                if len(pivots) < 2:
                    pivots = pivots * 2
                plans[path] = ("grid", tuple(pivots))
        return _HybridAssignJob(plans, self.threshold, self.metric)
