"""Distributed metric-space similarity joins (Sec. V-E baselines).

NSLD is a metric (Theorem 2), so generic metric-space join algorithms
apply to tokenized strings.  The paper compares TSJ against an in-house
*Hybrid Metric Joiner* (HMJ) combining the strongest published ideas:

* **ClusterJoin** (Das Sarma, He & Chaudhuri, VLDB 2014): dissect the
  space among sampled centroids with Voronoi hyperplanes; replicate each
  record to neighbouring partitions using the *general filter*; compare
  within partitions -- :class:`repro.metricspace.ClusterJoin`.
* **MR-MAPSS** (Wang, Metwally & Parthasarathy, KDD 2013): exploit the
  symmetry of the metric to avoid duplicate cross-partition comparisons
  and recursively repartition oversized partitions with sub-centroids --
  :class:`repro.metricspace.MRMAPSS`.
* **HMJ** (Sec. V-E): recursive repartitioning that chooses, per oversized
  partition, between sub-centroids (scattered data) and a 2-dimensional
  pivot-distance grid (concentrated data) -- :class:`repro.metricspace.HMJ`.

All three run on the simulated MapReduce engine and work for any metric;
the default is NSLD over tokenized strings.

The whole family (plus the serial :class:`QuickJoin`) is registered
behind the declarative front door: ``repro.run(repro.JoinSpec(
algorithm="clusterjoin" | "mrmapss" | "hmj" | "quickjoin", ...))``
normalises their signatures and result shapes (see
:mod:`repro.api.registry`).
"""

from repro.metricspace.clusterjoin import ClusterJoin, MetricJoinResult
from repro.metricspace.hmj import HMJ
from repro.metricspace.mrmapss import MRMAPSS
from repro.metricspace.pivots import farthest_point_pivots, sample_pivots
from repro.metricspace.quickjoin import QuickJoin

__all__ = [
    "ClusterJoin",
    "MRMAPSS",
    "HMJ",
    "QuickJoin",
    "MetricJoinResult",
    "sample_pivots",
    "farthest_point_pivots",
]
