"""MR-MAPSS-style recursive metric-space join (Wang et al., KDD 2013).

Improves on single-level Voronoi partitioning in the two ways Sec. V-E
describes:

* **Symmetry exploitation**: a pair co-located in several partitions is
  compared exactly once -- in the *minimum* common partition -- instead of
  once per partition plus a dedup job.
* **Recursive repartitioning**: partitions larger than ``partition_limit``
  are re-dissected with sub-centroids sampled from their own members, until
  they fit or ``max_depth`` is reached.

Each record carries the partition lists of every level it has descended
through; two records meeting in a leaf group are compared only if, at
*every* level, the group's path component is the minimum of their common
partitions at that level.  This makes each qualifying pair's comparison
site unique (no duplicates) while the general filter keeps every
within-threshold pair co-located somewhere (no misses).

Subclassed by :class:`repro.metricspace.hmj.HMJ`, which adds the
grid-splitting alternative.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.mapreduce import (
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)
from repro.metricspace.clusterjoin import (
    Metric,
    MetricJoinResult,
    MetricWithin,
    nsld_metric,
    nsld_metric_within,
)
from repro.metricspace.pivots import sample_pivots

# A record's descent history: one entry per level.
#   ("voronoi", partitions_tuple)  -- Voronoi level, general-filter replicas
#   ("grid", (cell_i, cell_j))     -- grid level (HMJ only), home cell
Levels = tuple[tuple, ...]
Payload = tuple[int, object, Levels, float]  # (id, record, levels, d0)


def _compare_allowed(path: tuple, levels_a: Levels, levels_b: Levels) -> bool:
    """Whether this leaf group is the unique comparison site of the pair."""
    for depth, component in enumerate(path):
        kind_a, data_a = levels_a[depth]
        kind_b, data_b = levels_b[depth]
        if kind_a == "voronoi":
            common = set(data_a) & set(data_b)
            if component != min(common):
                return False
        else:  # grid: the unique site is the componentwise-minimum cell
            cell_a, cell_b = data_a, data_b
            owner = (min(cell_a[0], cell_b[0]), min(cell_a[1], cell_b[1]))
            if component != owner:
                return False
    return True


class _AssignJob(MapReduceJob):
    """One repartitioning round: assign records of oversized groups to
    sub-partitions with the general filter.

    ``pivot_map`` maps a group path to the pivots sampled (driver-side)
    from that group's members.  Emits ``(path + (sub,), payload)``.
    """

    name = "mrmapss-assign"

    def __init__(self, pivot_map: dict, threshold: float, metric: Metric) -> None:
        self.pivot_map = pivot_map
        self.threshold = threshold
        self.metric = metric

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        path, (identifier, value, levels, d0) = record
        pivots = self.pivot_map[path]
        distances = [self.metric(value, pivot, ctx.charge) for pivot in pivots]
        home = min(range(len(distances)), key=lambda i: (distances[i], i))
        partitions = tuple(
            sorted(
                j
                for j in range(len(distances))
                if j == home
                or (distances[j] - distances[home]) / 2.0 <= self.threshold
            )
        )
        new_levels = levels + (("voronoi", partitions),)
        for partition in partitions:
            yield path + (partition,), (identifier, value, new_levels, d0)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        for value in values:
            yield key, value


class _LeafCompareJob(MapReduceJob):
    """Compare all admissible pairs within each leaf group."""

    name = "mrmapss-compare"

    def __init__(self, threshold: float, metric_within: MetricWithin) -> None:
        self.threshold = threshold
        self.metric_within = metric_within

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        members = sorted(values, key=lambda item: item[0])
        for a in range(len(members)):
            id_a, value_a, levels_a, d0_a = members[a]
            for b in range(a + 1, len(members)):
                id_b, value_b, levels_b, d0_b = members[b]
                if id_a == id_b:
                    continue
                if not _compare_allowed(key, levels_a, levels_b):
                    continue
                ctx.count("metric-comparisons")
                ctx.charge(1)
                if abs(d0_a - d0_b) > self.threshold:
                    ctx.count("pruned-pivot")
                    continue
                distance = self.metric_within(
                    value_a, value_b, self.threshold, ctx.charge
                )
                if distance is not None:
                    yield (id_a, id_b), distance


class MRMAPSS:
    """Recursive Voronoi metric-space self-join with symmetry dedup.

    Parameters
    ----------
    partition_limit:
        Groups larger than this are recursively split (default 64).
    max_depth:
        Maximum number of splitting rounds (default 3); groups still over
        the limit at the bottom are compared quadratically.
    branching:
        Sub-centroids sampled per split (default 8).
    """

    def __init__(
        self,
        engine: MapReduceEngine | None = None,
        threshold: float = 0.1,
        n_pivots: int | None = None,
        partition_limit: int = 64,
        max_depth: int = 3,
        branching: int = 8,
        metric: Metric = nsld_metric,
        metric_within: MetricWithin = nsld_metric_within,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if partition_limit < 2:
            raise ValueError("partition_limit must be at least 2")
        self.engine = engine or MapReduceEngine()
        self.threshold = threshold
        self.n_pivots = n_pivots
        self.partition_limit = partition_limit
        self.max_depth = max_depth
        self.branching = branching
        self.metric = metric
        self.metric_within = metric_within
        self.seed = seed

    # -- hooks overridden by HMJ ---------------------------------------------

    def _split_round(
        self, oversized: dict[tuple, list[Payload]], depth: int
    ):
        """Build the assignment job for one round of splitting."""
        pivot_map = {
            path: sample_pivots(
                [value for _, value, _, _ in members],
                min(self.branching, len(members)),
                seed=self.seed + depth,
            )
            for path, members in oversized.items()
        }
        return _AssignJob(pivot_map, self.threshold, self.metric)

    # -- driver ----------------------------------------------------------------

    def self_join(self, records: Sequence) -> MetricJoinResult:
        """All pairs ``(i, j)``, ``i < j``, within the metric threshold."""
        engine = self.engine
        tagged = list(enumerate(records))
        if len(tagged) < 2:
            return MetricJoinResult(set(), {}, PipelineResult([], []))
        stages = []

        # Level 0: a single split round over the whole dataset.
        initial: dict[tuple, list[Payload]] = {
            (): [
                (identifier, value, (), 0.0) for identifier, value in tagged
            ]
        }
        # Seed d0 (triangle pruning anchor) from the very first pivot.
        anchor = sample_pivots(records, 1, self.seed)[0]
        seeded: dict[tuple, list[Payload]] = {
            (): [
                (
                    identifier,
                    value,
                    (),
                    self.metric(value, anchor),
                )
                for identifier, value, _, _ in initial[()]
            ]
        }

        pending = seeded
        leaves: list[tuple[tuple, Payload]] = []
        depth = 0
        while pending:
            oversized = {
                path: members
                for path, members in pending.items()
                if len(members) > self.partition_limit and depth < self.max_depth
            }
            for path, members in pending.items():
                if path not in oversized:
                    leaves.extend((path, payload) for payload in members)
            if not oversized:
                break
            job = self._split_round(oversized, depth)
            flat = [
                (path, payload)
                for path, members in oversized.items()
                for payload in members
            ]
            result = engine.run(job, flat)
            stages.append(result.metrics)
            regrouped: dict[tuple, list[Payload]] = {}
            for path, payload in result.outputs:
                regrouped.setdefault(path, []).append(payload)
            # Guard against non-separating splits (e.g. identical records):
            # a child as large as its parent will never shrink; emit as leaf.
            next_pending: dict[tuple, list[Payload]] = {}
            for path, members in regrouped.items():
                parent_size = len(oversized[path[:-1]])
                if len(members) >= parent_size:
                    leaves.extend((path, payload) for payload in members)
                else:
                    next_pending[path] = members
            pending = next_pending
            depth += 1

        compare = engine.run(
            _LeafCompareJob(self.threshold, self.metric_within), leaves
        )
        stages.append(compare.metrics)

        pairs: set[tuple[int, int]] = set()
        distances: dict[tuple[int, int], float] = {}
        for pair, distance in compare.outputs:
            pairs.add(pair)
            distances[pair] = distance
        pipeline = PipelineResult(outputs=sorted(pairs), stages=stages)
        return MetricJoinResult(pairs=pairs, distances=distances, pipeline=pipeline)
