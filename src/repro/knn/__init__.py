"""Metric-space K-nearest-neighbour indexes over NSLD.

Sec. II of the paper stresses that proving NSLD a metric (Theorem 2)
"can be leveraged in all flavors of K-nearest-neighbor queries on metric
spaces, e.g., [12], [48], [61]".  This package delivers that payoff with
two classic metric indexes, both working for any metric and defaulting to
NSLD over tokenized strings:

* :class:`BKTree` -- Burkhard-Keller tree for *discrete* metrics; best
  with the integer-valued SLD (provided as a ready-made default) where
  children are bucketed by exact distance.
* :class:`VPTree` -- vantage-point tree for continuous metrics such as
  NSLD; median-radius splits with triangle-inequality pruning.

Both support range queries (``within``) and k-NN queries (``nearest``),
and report the number of distance evaluations so tests and benches can
verify they beat linear scan.

All three indexes are registered search backends of the declarative
front door (``method="vptree" | "bktree" | "fuzzymatch"`` in
:class:`repro.TopKSpec` / :class:`repro.WithinSpec`, served from the
resident :class:`repro.service.SimilarityIndex`; see
:mod:`repro.api.registry`).
"""

from repro.knn.bktree import BKTree
from repro.knn.fuzzymatch import FuzzyMatchIndex
from repro.knn.vptree import VPTree

__all__ = ["BKTree", "VPTree", "FuzzyMatchIndex"]
