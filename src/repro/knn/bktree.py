"""Burkhard-Keller tree: a metric index for discrete distances.

A BK-tree stores one item per node; each child subtree hangs off an edge
labelled with the (integer) distance between the child's item and the
node's item.  The triangle inequality confines a range query with radius
``r`` around ``q`` to edges labelled within ``d(node, q) +- r``.

The natural companion of **SLD** (Def. 3): SLD is an integer metric
(Lemma 4), so the edge labels stay discrete and the fan-out bounded.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generic, Iterable, TypeVar

from repro.distances.setwise import sld
from repro.tokenize import TokenizedString

Item = TypeVar("Item")
Metric = Callable[[Item, Item], float]


def _default_metric(backend: str = "auto") -> Metric:
    def metric(a: TokenizedString, b: TokenizedString) -> int:
        return sld(a, b, backend=backend)

    return metric


class _Node(Generic[Item]):
    __slots__ = ("item", "children")

    def __init__(self, item: Item) -> None:
        self.item = item
        self.children: dict[float, _Node] = {}


class BKTree(Generic[Item]):
    """A Burkhard-Keller tree over an integer-valued metric (default SLD).

    Examples
    --------
    >>> from repro.tokenize import tokenize
    >>> tree = BKTree()
    >>> for name in ["barak obama", "borak obama", "john smith"]:
    ...     tree.add(tokenize(name))
    >>> [str(m) for m, d in tree.within(tokenize("barak obana"), 2)]
    ['barak obama', 'borak obama']

    Parameters
    ----------
    metric:
        Any integer-valued metric; defaults to SLD over tokenized strings.
    backend:
        Verification kernel for the default SLD metric (``"auto" | "dp" |
        "bitparallel"``, see :mod:`repro.accel`); ignored when a custom
        ``metric`` is supplied.
    """

    def __init__(self, metric: Metric | None = None, backend: str = "auto") -> None:
        self.metric: Metric = metric or _default_metric(backend)
        self._root: _Node | None = None
        self._size = 0
        #: Distance evaluations performed by the last query.
        self.last_query_evaluations = 0

    def __len__(self) -> int:
        return self._size

    # -- construction ----------------------------------------------------------

    def add(self, item: Item) -> None:
        """Insert one item (duplicates are stored as distance-0 chains)."""
        self._size += 1
        if self._root is None:
            self._root = _Node(item)
            return
        node = self._root
        while True:
            distance = self.metric(item, node.item)
            child = node.children.get(distance)
            if child is None:
                node.children[distance] = _Node(item)
                return
            node = child

    def extend(self, items: Iterable[Item]) -> None:
        for item in items:
            self.add(item)

    # -- queries -----------------------------------------------------------------

    def within(self, query: Item, radius: float) -> list[tuple[Item, float]]:
        """All items with ``metric(item, query) <= radius``, ascending.

        The triangle inequality restricts descent to child edges labelled
        in ``[d - radius, d + radius]``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.last_query_evaluations = 0
        if self._root is None:
            return []
        results: list[tuple[float, int, Item]] = []
        stack = [self._root]
        tie = 0
        while stack:
            node = stack.pop()
            distance = self.metric(query, node.item)
            self.last_query_evaluations += 1
            if distance <= radius:
                results.append((distance, tie, node.item))
                tie += 1
            lo, hi = distance - radius, distance + radius
            for label, child in node.children.items():
                if lo <= label <= hi:
                    stack.append(child)
        return [(item, distance) for distance, _, item in sorted(results)]

    def nearest(self, query: Item, k: int = 1) -> list[tuple[Item, float]]:
        """The ``k`` nearest items to ``query`` (ascending distance).

        Best-first search with a shrinking radius: once ``k`` results are
        held, subtrees whose edge window cannot beat the current k-th
        distance are pruned.
        """
        if k < 1:
            raise ValueError("k must be positive")
        self.last_query_evaluations = 0
        if self._root is None:
            return []
        # Max-heap of the best k (negated distances).
        best: list[tuple[float, int, Item]] = []
        tie = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            distance = self.metric(query, node.item)
            self.last_query_evaluations += 1
            if len(best) < k:
                heapq.heappush(best, (-distance, tie, node.item))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, tie, node.item))
            tie += 1
            radius = -best[0][0] if len(best) == k else float("inf")
            for label, child in node.children.items():
                if distance - radius <= label <= distance + radius:
                    stack.append(child)
        ordered = sorted((-negated, tie, item) for negated, tie, item in best)
        return [(item, distance) for distance, _, item in ordered]
