"""Vantage-point tree: a metric index for continuous distances.

Each node picks a *vantage point* and splits the remaining items by the
median distance to it: the inside half within the median radius, the
outside half beyond.  The triangle inequality prunes whole halves during
search: with query distance ``d`` and search radius ``r``, the inside
half is reachable only if ``d - r <= mu`` and the outside half only if
``d + r >= mu``.

The natural companion of **NSLD** (Def. 4), whose values are continuous
in ``[0, 1]`` (Lemma 5).
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Generic, Sequence, TypeVar

from repro.distances.setwise import nsld
from repro.tokenize import TokenizedString

Item = TypeVar("Item")
Metric = Callable[[Item, Item], float]


def _default_metric(backend: str = "auto") -> Metric:
    def metric(a: TokenizedString, b: TokenizedString) -> float:
        return nsld(a, b, backend=backend)

    return metric


class _Node(Generic[Item]):
    __slots__ = ("vantage", "radius", "inside", "outside")

    def __init__(self, vantage: Item) -> None:
        self.vantage = vantage
        self.radius: float = 0.0
        self.inside: "_Node | None" = None
        self.outside: "_Node | None" = None


class VPTree(Generic[Item]):
    """A vantage-point tree (built once over a fixed dataset).

    Parameters
    ----------
    items:
        The dataset to index.
    metric:
        Any metric; defaults to NSLD over tokenized strings.
    seed:
        Vantage points are chosen randomly (a classic robust choice);
        the seed makes trees reproducible.
    backend:
        Verification kernel for the default NSLD metric (``"auto" | "dp"
        | "bitparallel"``, see :mod:`repro.accel`); ignored when a custom
        ``metric`` is supplied.

    Examples
    --------
    >>> from repro.tokenize import tokenize
    >>> tree = VPTree([tokenize(n) for n in
    ...                ["barak obama", "borak obama", "john smith"]])
    >>> [str(m) for m, d in tree.within(tokenize("barak obama"), 0.1)]
    ['barak obama', 'borak obama']
    """

    def __init__(
        self,
        items: Sequence[Item],
        metric: Metric | None = None,
        seed: int = 0,
        backend: str = "auto",
    ) -> None:
        self.metric: Metric = metric or _default_metric(backend)
        self._rng = random.Random(seed)
        self._size = len(items)
        self._root = self._build(list(items))
        #: Distance evaluations performed by the last query.
        self.last_query_evaluations = 0

    def __len__(self) -> int:
        return self._size

    def _build(self, items: list[Item]) -> _Node | None:
        if not items:
            return None
        index = self._rng.randrange(len(items))
        items[index], items[-1] = items[-1], items[index]
        vantage = items.pop()
        node = _Node(vantage)
        if not items:
            return node
        distances = [(self.metric(item, vantage), i) for i, item in enumerate(items)]
        distances.sort(key=lambda pair: pair[0])
        median = len(distances) // 2
        node.radius = distances[median][0]
        inside = [items[i] for d, i in distances if d < node.radius]
        outside = [items[i] for d, i in distances if d >= node.radius]
        # Degenerate split (all distances equal): keep the tree finite by
        # sending everything outside only when inside is empty anyway.
        node.inside = self._build(inside)
        node.outside = self._build(outside)
        return node

    # -- queries -----------------------------------------------------------------

    def within(self, query: Item, radius: float) -> list[tuple[Item, float]]:
        """All items with ``metric(item, query) <= radius``, ascending."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.last_query_evaluations = 0
        results: list[tuple[float, int, Item]] = []
        tie = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            distance = self.metric(query, node.vantage)
            self.last_query_evaluations += 1
            if distance <= radius:
                results.append((distance, tie, node.vantage))
                tie += 1
            if distance - radius < node.radius:
                stack.append(node.inside)
            if distance + radius >= node.radius:
                stack.append(node.outside)
        return [(item, distance) for distance, _, item in sorted(results)]

    def nearest(self, query: Item, k: int = 1) -> list[tuple[Item, float]]:
        """The ``k`` nearest items to ``query`` (ascending distance)."""
        if k < 1:
            raise ValueError("k must be positive")
        self.last_query_evaluations = 0
        best: list[tuple[float, int, Item]] = []  # max-heap via negation
        tie = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            distance = self.metric(query, node.vantage)
            self.last_query_evaluations += 1
            if len(best) < k:
                heapq.heappush(best, (-distance, tie, node.vantage))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, tie, node.vantage))
            tie += 1
            radius = -best[0][0] if len(best) == k else float("inf")
            if distance - radius < node.radius:
                stack.append(node.inside)
            if distance + radius >= node.radius:
                stack.append(node.outside)
        ordered = sorted((-negated, tie, item) for negated, tie, item in best)
        return [(item, distance) for distance, _, item in ordered]
