"""FuzzyMatch: FMS-based top-K retrieval (Chaudhuri et al., SIGMOD 2003).

Sec. IV: "Chaudhuri et al. proposed a serial FMS-based query algorithm,
FuzzyMatch, to identify the closest K tokenized strings given a query, and
devised enhancements for indexing, and caching."  This module reproduces
that related-work system:

* an **inverted index** over tokens *and* token q-grams, so candidates are
  found even when every query token is edited;
* IDF token weighting (rare tokens dominate the FMS cost, as in the
  original);
* candidate scoring by FMS with **optimistic short-circuiting**:
  candidates are scored in decreasing index-overlap order and scoring
  stops once the remaining candidates' best-possible overlap cannot beat
  the current K-th score;
* a bounded LRU query **cache** (the paper's caching enhancement) with
  hit/miss counters (:attr:`FuzzyMatchIndex.cache_hits` /
  :attr:`FuzzyMatchIndex.cache_misses`).

FuzzyMatch retrieves with the *asymmetric, order-sensitive* FMS -- exactly
the drawbacks that motivated NSLD -- making it the natural related-work
baseline next to :class:`repro.knn.VPTree`.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Sequence

from repro.accel.vocab import LRUCache
from repro.distances.fms import fms


_CACHE_MISS = object()


def _qgrams(token: str, q: int) -> set[str]:
    if len(token) < q:
        return {token}
    return {token[i : i + q] for i in range(len(token) - q + 1)}


class FuzzyMatchIndex:
    """Top-K FMS retrieval over a fixed collection of token sequences.

    Parameters
    ----------
    records:
        Token sequences (order matters to FMS).
    q:
        Q-gram size for the fuzzy token index (default 3, as in the
        original's gram-based signatures).
    cache_size:
        Capacity of the LRU query-result cache (0 disables caching).
        The cache is bounded -- a long query stream can never grow it
        past ``cache_size`` entries -- and its effectiveness is
        observable through :attr:`cache_hits` / :attr:`cache_misses`.

    Examples
    --------
    >>> index = FuzzyMatchIndex([["barak", "obama"], ["john", "smith"]])
    >>> [records for records, score in index.query(["borak", "obama"], k=1)]
    [['barak', 'obama']]
    """

    def __init__(
        self,
        records: Sequence[Sequence[str]],
        q: int = 3,
        cache_size: int = 128,
    ) -> None:
        if q < 1:
            raise ValueError("q must be positive")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.records = [list(record) for record in records]
        self.q = q
        self.cache_size = cache_size
        self._cache = LRUCache(cache_size)

        # IDF weights over the collection.
        document_frequency = Counter(
            token for record in self.records for token in set(record)
        )
        n_documents = max(len(self.records), 1)
        self.weights = {
            token: math.log(1.0 + n_documents / count)
            for token, count in document_frequency.items()
        }

        # Inverted index: token -> record ids, and q-gram -> record ids.
        self._token_index: dict[str, list[int]] = defaultdict(list)
        self._gram_index: dict[str, list[int]] = defaultdict(list)
        for identifier, record in enumerate(self.records):
            for token in set(record):
                self._token_index[token].append(identifier)
            grams = set()
            for token in set(record):
                grams |= _qgrams(token, q)
            for gram in grams:
                self._gram_index[gram].append(identifier)

        #: FMS evaluations performed by the last (uncached) query.
        self.last_query_evaluations = 0

    def __len__(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        """Queries answered from the LRU cache since construction."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Queries that had to be scored since construction."""
        return self._cache.misses

    def query(
        self, tokens: Sequence[str], k: int = 3
    ) -> list[tuple[list[str], float]]:
        """The ``k`` records with highest ``FMS(query -> record)``.

        Returns ``(record, similarity)`` pairs, best first.  Ties break on
        record id for determinism.
        """
        if k < 1:
            raise ValueError("k must be positive")
        key = (tuple(tokens), k)
        cached = self._cache.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            self.last_query_evaluations = 0
            # Callers own their copy (records included) -- mutating a
            # returned result must never corrupt the cached one.
            return [(list(record), score) for record, score in cached]

        # ---- candidate generation: token hits count double, gram hits once.
        overlap: Counter = Counter()
        for token in set(tokens):
            for identifier in self._token_index.get(token, ()):
                overlap[identifier] += 2
            for gram in _qgrams(token, self.q):
                for identifier in self._gram_index.get(gram, ()):
                    overlap[identifier] += 1
        if not overlap:
            result: list[tuple[list[str], float]] = []
            self._remember(key, result)
            return []

        # ---- optimistic short-circuiting: score by decreasing overlap; a
        # candidate whose overlap is a small fraction of the best cannot
        # realistically beat the current K-th score, so scoring stops once
        # K results are held and overlap has dropped below half the best.
        ranked = sorted(overlap.items(), key=lambda item: (-item[1], item[0]))
        best_overlap = ranked[0][1]
        self.last_query_evaluations = 0
        scored: list[tuple[float, int]] = []
        for identifier, hits in ranked:
            if len(scored) >= k and hits < best_overlap / 2:
                break
            self.last_query_evaluations += 1
            # Chaudhuri et al. transform the *input* (query) into the
            # reference record: fms(query -> record).
            similarity = fms(list(tokens), self.records[identifier], self.weights)
            scored.append((similarity, identifier))
        scored.sort(key=lambda item: (-item[0], item[1]))
        result = [
            (list(self.records[identifier]), similarity)
            for similarity, identifier in scored[:k]
        ]
        self._remember(key, result)
        return [(list(record), score) for record, score in result]

    def _remember(self, key, result) -> None:
        self._cache.put(key, result)
