"""Tokenized-String Joiner (TSJ) -- the paper's core contribution (Sec. III).

TSJ performs NSLD self-joins of tokenized strings with a distributed
generate-filter-verify pipeline:

1. **Generate** candidate pairs that share a token (Sec. III-C) or have a
   pair of NLD-similar tokens (Sec. III-D, via MassJoin on the token
   space -- sound by Theorem 3).
2. **Filter** candidates with the Lemma 6 length filter (Sec. III-E.1) and
   the token-length-histogram SLD lower bound built on Lemma 10
   (Sec. III-E.2), after de-duplication by either grouping strategy
   (Sec. III-G.3).
3. **Verify** survivors by exact SLD (Hungarian matching on the token
   bigraph, Sec. III-F) or the greedy-token-aligning approximation
   (Sec. III-G.5).

Usage::

    from repro.tsj import TSJ, TSJConfig
    from repro.tokenize import tokenize

    records = [tokenize(name) for name in names]
    result = TSJ(TSJConfig(threshold=0.1, max_token_frequency=1000)).self_join(records)
    result.pairs            # {(i, j), ...}
    result.simulated_seconds()   # runtime on the simulated cluster
"""

from repro.tsj.config import (
    AligningMode,
    DedupStrategy,
    FrequencyMode,
    MatchingMode,
    TSJConfig,
)
from repro.tsj.framework import TSJ, TSJResult

__all__ = [
    "TSJ",
    "TSJConfig",
    "TSJResult",
    "MatchingMode",
    "AligningMode",
    "DedupStrategy",
    "FrequencyMode",
]
