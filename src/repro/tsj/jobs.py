"""The MapReduce jobs composing the TSJ pipeline.

Candidate pairs flow through the pipeline as::

    ((id_a, id_b), (length_a, hist_a, length_b, hist_b, similar_pairs))

with ``id_a < id_b``; ``hist_*`` are token-length histograms encoded as
sorted ``(length, multiplicity)`` tuples, and ``similar_pairs`` is a tuple
of ``(token_len_in_a, token_len_in_b, ld)`` triples -- one per known
NLD-similar token pair between the two records.  Shipping lengths and
histograms with the ids (instead of the tokenized strings themselves) is
the paper's Sec. III-E efficiency device: both filters run on this compact
metadata, and full strings are resolved only for final verification.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_LENGTH,
    COUNTER_VERIFIED,
    HistogramBoundFilter,
)
from repro.distances.setwise import nsld_within
from repro.mapreduce import MapReduceContext, MapReduceJob, stable_hash
from repro.tokenize import TokenizedString

Histogram = tuple[tuple[int, int], ...]
SimilarPairs = tuple[tuple[int, int, int], ...]
CandidateMeta = tuple[int, Histogram, int, Histogram, SimilarPairs]


def encode_histogram(histogram: Mapping[int, int]) -> Histogram:
    """Canonical, hashable encoding of a token-length histogram."""
    return tuple(sorted(histogram.items()))


def decode_histogram(encoded: Histogram) -> dict[int, int]:
    return dict(encoded)


def _length_filter_passes(
    length_a: int, length_b: int, threshold: float
) -> bool:
    """Lemma 6 length filter (Sec. III-E.1): keep iff the aggregate-length
    lower bound does not already exceed the threshold.

    Decision-identical to ``nsld_length_lower_bound(a, b) <= threshold``,
    inlined (no tuple sort, no call) for the per-candidate hot path --
    including that function's oracle-shaped float evaluation
    ``2*d / (a+b+d)``, so a pair whose exact NSLD sits on the threshold
    is never length-pruned.
    """
    if length_a <= length_b:
        shorter, longer = length_a, length_b
    else:
        shorter, longer = length_b, length_a
    if longer == 0:
        return True  # bound 0.0; thresholds are non-negative
    difference = longer - shorter
    return 2.0 * difference / (shorter + longer + difference) <= threshold


class TokenFrequencyJob(MapReduceJob):
    """Counts, per distinct token, how many tokenized strings contain it.

    Feeds both the high-frequency-token cut-off ``M`` (Sec. III-G.2) and
    the token space for the similar-token NLD-join (Sec. III-D).
    """

    name = "tsj-token-frequency"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        _, tokenized = record
        for token in tokenized.distinct_tokens():
            yield token, 1

    def combine(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield sum(values)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield key, sum(values)


class SharedTokenCandidatesJob(MapReduceJob):
    """Generates candidate pairs sharing at least one token (Sec. III-C).

    Mappers key every record by each of its distinct tokens (skipping
    tokens more popular than ``M``); reducers emit all pairs in a token's
    group.  The shared token contributes the similar-pair triple
    ``(len, len, 0)`` used by the histogram filter downstream.
    """

    name = "tsj-shared-token-candidates"

    def __init__(
        self,
        threshold: float,
        frequent_tokens: frozenset[str],
        use_length_filter: bool = True,
        bipartite_boundary: int | None = None,
    ) -> None:
        self.threshold = threshold
        self.frequent_tokens = frequent_tokens
        self.use_length_filter = use_length_filter
        # For R x P joins (Sec. II-B's general problem): ids below the
        # boundary belong to R, ids at or above to P; only cross-side
        # pairs are candidates.  None means self-join.
        self.bipartite_boundary = bipartite_boundary

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        identifier, tokenized = record
        payload = (
            identifier,
            tokenized.aggregate_length,
            encode_histogram(tokenized.length_histogram),
        )
        for token in tokenized.distinct_tokens():
            if token in self.frequent_tokens:
                ctx.count("tokens-dropped-frequent")
                continue
            yield token, payload

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        token_length = len(key)
        members = sorted(values)
        ctx.charge(len(members) * max(len(members) - 1, 0) // 2)
        boundary = self.bipartite_boundary
        threshold = self.threshold
        use_length_filter = self.use_length_filter
        generated = pruned = emitted = 0
        similar = ((token_length, token_length, 0),)
        for a in range(len(members)):
            id_a, length_a, hist_a = members[a]
            for b in range(a + 1, len(members)):
                id_b, length_b, hist_b = members[b]
                if id_a == id_b:
                    continue
                if boundary is not None and (id_a < boundary) == (
                    id_b < boundary
                ):
                    continue  # same side of an R x P join
                generated += 1
                if use_length_filter and not _length_filter_passes(
                    length_a, length_b, threshold
                ):
                    pruned += 1
                    continue
                emitted += 1
                yield (id_a, id_b), (
                    length_a,
                    hist_a,
                    length_b,
                    hist_b,
                    similar,
                )
        if generated:
            ctx.count(COUNTER_CANDIDATES, generated)
        if pruned:
            ctx.count("pruned-length-shared", pruned)
            ctx.count(COUNTER_PRUNED_LENGTH, pruned)
        if emitted:
            ctx.count("candidates-shared", emitted)


class TokenPairFanoutJob(MapReduceJob):
    """First half of similar-token candidate generation (Sec. III-D).

    Joins records with the NLD-similar token pairs found by MassJoin:
    reducers keyed by token see the records containing that token plus its
    similar partner tokens, and re-key each record by the unordered token
    pair so :class:`TokenPairJoinJob` can cross the two sides.

    Inputs: ``("rec", (id, tokenized))`` and ``("sim", (t1, t2, ld))``.
    """

    name = "tsj-similar-token-fanout"

    def __init__(self, frequent_tokens: frozenset[str]) -> None:
        self.frequent_tokens = frequent_tokens

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "rec":
            identifier, tokenized = payload
            meta = (
                identifier,
                tokenized.aggregate_length,
                encode_histogram(tokenized.length_histogram),
            )
            for token in tokenized.distinct_tokens():
                if token not in self.frequent_tokens:
                    yield token, ("R", meta)
        else:
            t1, t2, ld = payload
            yield t1, ("S", (t2, ld))
            yield t2, ("S", (t1, ld))

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        records = [payload for tag, payload in values if tag == "R"]
        partners = [payload for tag, payload in values if tag == "S"]
        ctx.charge(len(records) * len(partners))
        for partner_token, ld in partners:
            pair_key = (key, partner_token) if key < partner_token else (
                partner_token,
                key,
            )
            side = 0 if key == pair_key[0] else 1
            for meta in records:
                yield pair_key, (side, meta, ld)


class TokenPairJoinJob(MapReduceJob):
    """Second half of similar-token candidate generation.

    Reducers keyed by an unordered similar-token pair ``(z1, z2)`` cross
    the records containing ``z1`` with those containing ``z2``.
    """

    name = "tsj-similar-token-join"

    def __init__(
        self,
        threshold: float,
        use_length_filter: bool = True,
        bipartite_boundary: int | None = None,
    ) -> None:
        self.threshold = threshold
        self.use_length_filter = use_length_filter
        self.bipartite_boundary = bipartite_boundary

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        token_1, token_2 = key
        side_0 = sorted(meta for side, meta, _ in values if side == 0)
        side_1 = sorted(meta for side, meta, _ in values if side == 1)
        ld = next(ld for _, _, ld in values)
        boundary = self.bipartite_boundary
        ctx.charge(len(side_0) * len(side_1))
        generated = pruned = emitted = 0
        for id_a, length_a, hist_a in side_0:
            for id_b, length_b, hist_b in side_1:
                if id_a == id_b:
                    continue
                if boundary is not None and (id_a < boundary) == (
                    id_b < boundary
                ):
                    continue  # same side of an R x P join
                generated += 1
                if self.use_length_filter and not _length_filter_passes(
                    length_a, length_b, self.threshold
                ):
                    pruned += 1
                    continue
                emitted += 1
                if id_a < id_b:
                    pair = (id_a, id_b)
                    meta = (
                        length_a,
                        hist_a,
                        length_b,
                        hist_b,
                        ((len(token_1), len(token_2), ld),),
                    )
                else:
                    pair = (id_b, id_a)
                    meta = (
                        length_b,
                        hist_b,
                        length_a,
                        hist_a,
                        ((len(token_2), len(token_1), ld),),
                    )
                yield pair, meta
        if generated:
            ctx.count(COUNTER_CANDIDATES, generated)
        if pruned:
            ctx.count("pruned-length-similar", pruned)
            ctx.count(COUNTER_PRUNED_LENGTH, pruned)
        if emitted:
            ctx.count("candidates-similar", emitted)


class DedupFilterJob(MapReduceJob):
    """Candidate de-duplication plus both low-cost filters (Sec. III-E/G.3).

    ``GROUP_ON_BOTH``: the shuffle key is the id pair, one reduce group --
    and hence one simulated task -- per distinct candidate pair.

    ``GROUP_ON_ONE``: the key is a single record id chosen by the paper's
    hash-parity rule, so one group per *record*; the reducer de-duplicates
    its partner list with a hash map.  Fewer (but heavier) tasks: the
    grouping trade-off of Fig. 1.

    Duplicate candidates merge their similar-pair lists before the
    histogram filter runs, giving the filter the complete picture of the
    NLD-similar token pairs between the two records.
    """

    name = "tsj-dedup-filter"

    def __init__(
        self,
        threshold: float,
        group_on_one: bool,
        use_length_filter: bool = True,
        use_histogram_filter: bool = True,
        complete_similar_pairs: bool = True,
    ) -> None:
        self.threshold = threshold
        self.group_on_one = group_on_one
        self.use_length_filter = use_length_filter
        self.use_histogram_filter = use_histogram_filter
        # Lemma 10 reasoning in the histogram bound needs the complete set
        # of NLD-similar token pairs, which only fuzzy matching provides;
        # with exact matching the bound falls back to length differences.
        self.complete_similar_pairs = complete_similar_pairs
        # The shared-cascade form of the Sec. III-E.2 filter: identical
        # decisions to the setwise oracle, Lemma 10 arithmetic memoized
        # per length pair across the whole job.
        self._histogram_filter = HistogramBoundFilter(
            threshold, use_lemma10=complete_similar_pairs
        )
        #: record id -> Sec. III-G.3 fingerprint (ids recur once per
        #: candidate pair they appear in; hash each exactly once).
        self._fingerprints: dict[int, int] = {}

    def _fingerprint(self, identifier: int) -> int:
        fingerprint = self._fingerprints.get(identifier)
        if fingerprint is None:
            fingerprint = stable_hash(("dedup", identifier))
            self._fingerprints[identifier] = fingerprint
        return fingerprint

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        pair, meta = record
        if not self.group_on_one:
            yield pair, meta
            return
        id_a, id_b = pair
        hash_a, hash_b = self._fingerprint(id_a), self._fingerprint(id_b)
        # Sec. III-G.3 load-balancing fingerprint rule.
        holder_is_a = int(hash_a < hash_b) == (hash_a + hash_b) % 2
        yield (id_a if holder_is_a else id_b), (pair, meta)

    #: _filter outcomes.
    _EMIT, _PRUNED_LENGTH, _PRUNED_HISTOGRAM = 0, 1, 2

    def _filter(
        self,
        length_a: int,
        hist_a: Histogram,
        length_b: int,
        hist_b: Histogram,
        similar_pairs: set[tuple[int, int, int]],
        ctx: MapReduceContext,
    ) -> int:
        if self.use_length_filter and not _length_filter_passes(
            length_a, length_b, self.threshold
        ):
            return self._PRUNED_LENGTH
        if self.use_histogram_filter:
            # The filter work is charged unconditionally (like the Vocab
            # memo, cache hits re-cost the same simulated ops); only the
            # wall-clock is saved by the bound memo.
            ctx.charge(len(hist_a) * len(hist_b))
            bound = self._histogram_filter.nsld_bound_encoded(
                hist_a, hist_b, tuple(sorted(similar_pairs))
            )
            if bound > self.threshold:
                return self._PRUNED_HISTOGRAM
        return self._EMIT

    def _count_outcomes(
        self, ctx: MapReduceContext, emitted: int, by_length: int, by_histogram: int
    ) -> None:
        if by_length:
            ctx.count("pruned-length-dedup", by_length)
            ctx.count(COUNTER_PRUNED_LENGTH, by_length)
        if by_histogram:
            ctx.count("pruned-histogram", by_histogram)
            ctx.count(COUNTER_PRUNED_COUNT, by_histogram)
        if emitted:
            ctx.count("candidates-verified", emitted)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        if not self.group_on_one:
            # key is the id pair; merge metadata across duplicates.
            length_a, hist_a, length_b, hist_b, _ = values[0]
            similar_pairs = {
                triple for _, _, _, _, triples in values for triple in triples
            }
            ctx.charge(len(values))
            outcome = self._filter(
                length_a, hist_a, length_b, hist_b, similar_pairs, ctx
            )
            self._count_outcomes(
                ctx,
                emitted=outcome == self._EMIT,
                by_length=outcome == self._PRUNED_LENGTH,
                by_histogram=outcome == self._PRUNED_HISTOGRAM,
            )
            if outcome == self._EMIT:
                yield key
            return
        # key is a single record id; de-duplicate partners with a hash map
        # (the paper's hash-set strategy), merging similar pairs per pair.
        merged: dict[tuple[int, int], list] = {}
        ctx.charge(len(values))
        for pair, (length_a, hist_a, length_b, hist_b, triples) in values:
            entry = merged.get(pair)
            if entry is None:
                merged[pair] = [length_a, hist_a, length_b, hist_b, set(triples)]
            else:
                entry[4].update(triples)
        emitted = by_length = by_histogram = 0
        for pair, (length_a, hist_a, length_b, hist_b, similar_pairs) in sorted(
            merged.items()
        ):
            outcome = self._filter(
                length_a, hist_a, length_b, hist_b, similar_pairs, ctx
            )
            if outcome == self._EMIT:
                emitted += 1
                yield pair
            elif outcome == self._PRUNED_LENGTH:
                by_length += 1
            else:
                by_histogram += 1
        self._count_outcomes(ctx, emitted, by_length, by_histogram)


class ResolveLeftJob(MapReduceJob):
    """Attach the left tokenized string to each surviving candidate pair.

    Inputs: ``("pair", (a, b))`` and ``("rec", (id, tokenized))``.
    """

    name = "tsj-resolve"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "pair":
            left, right = payload
            yield left, ("PAIR", right)
        else:
            identifier, tokenized = payload
            yield identifier, ("STR", tokenized)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        left_record = None
        rights = []
        for tag, payload in values:
            if tag == "STR":
                left_record = payload
            else:
                rights.append(payload)
        if left_record is None:
            return
        for right in rights:
            yield right, (key, left_record)


class VerifyJob(MapReduceJob):
    """Final verification (Sec. III-F): attach the right record, compute
    NSLD exactly (Hungarian) or greedily, keep pairs within the threshold.

    Inputs: ``("half", (right_id, (left_id, left_record)))`` and
    ``("rec", (id, tokenized))``.
    """

    name = "tsj-verify"

    def __init__(
        self, threshold: float, greedy: bool, backend: str = "auto"
    ) -> None:
        self.threshold = threshold
        self.greedy = greedy
        self.backend = backend

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "half":
            right, left_info = payload
            yield right, ("PAIR", left_info)
        else:
            identifier, tokenized = payload
            yield identifier, ("STR", tokenized)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        right_record: TokenizedString | None = None
        lefts = []
        for tag, payload in values:
            if tag == "STR":
                right_record = payload
            else:
                lefts.append(payload)
        if right_record is None:
            return
        if lefts:
            ctx.count("verifications", len(lefts))
            ctx.count(COUNTER_VERIFIED, len(lefts))
        similar = 0
        for left_id, left_record in lefts:
            # Charge the alignment solve on top of the LD matrix cells the
            # ops hook meters: Hungarian runs O(k^3) augmenting-path scans
            # with a significant constant; greedy heap-selects k of k^2
            # edges.  Constants from profiling the two solvers.
            k = max(left_record.token_count, right_record.token_count, 1)
            if self.greedy:
                ctx.charge(int(2 * k * k * max(math.log2(k * k), 1.0)))
            else:
                ctx.charge(8 * k**3)
            distance = nsld_within(
                left_record,
                right_record,
                self.threshold,
                greedy=self.greedy,
                ops=ctx.charge,
                backend=self.backend,
            )
            if distance is not None:
                similar += 1
                yield (left_id, key, distance)
        if similar:
            ctx.count("similar-pairs", similar)
