"""Configuration for the Tokenized-String Joiner.

All the knobs the paper's evaluation sweeps live here:

* ``threshold`` -- the NSLD join threshold ``T`` (default 0.1, the paper's
  default; Figs. 2/4 sweep 0.025-0.225).
* ``max_token_frequency`` -- ``M``, the popular-token cut-off (default
  1,000; Figs. 3/5 sweep 100-1,000).  ``None`` disables dropping, which is
  the lossless configuration used to prove exactness.
* ``matching`` -- ``FUZZY`` runs the similar-token NLD-join; ``EXACT`` is
  the exact-token-matching approximation (Sec. III-G.4) that skips it.
* ``aligning`` -- ``HUNGARIAN`` verifies with the optimal token alignment;
  ``GREEDY`` is the greedy-token-aligning approximation (Sec. III-G.5).
* ``dedup`` -- ``GROUP_ON_ONE`` vs ``GROUP_ON_BOTH`` (Sec. III-G.3).
* ``verify_backend`` -- the edit-distance kernel behind verification:
  ``"auto"`` (the default fast path: ``vector`` when numpy imports, else
  ``bitparallel``), ``"dp"`` (the reference banded DP), ``"bitparallel"``
  (the scalar Myers kernel) or ``"vector"`` (the numpy-batched Myers
  kernel; see :mod:`repro.accel`).  All backends return identical pair
  sets; only the cost-model ops accounting differs (and ``vector``
  matches ``bitparallel`` exactly there too).
* ``engine`` -- the execution engine running the pipeline's MapReduce
  jobs: ``"auto"`` (parallel when multiple CPUs are usable), ``"serial"``
  (the deterministic oracle) or ``"parallel"`` (see
  :mod:`repro.runtime`).  Engines return identical results and identical
  simulated costs; the selector only changes wall-clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.accel import BACKENDS
from repro.api.registry import validate_choice
from repro.runtime import ENGINES


class MatchingMode(str, enum.Enum):
    """How similar-token candidates are generated (Sec. III-D / III-G.4)."""

    FUZZY = "fuzzy"
    EXACT = "exact"


class AligningMode(str, enum.Enum):
    """How the verification aligns tokens (Sec. III-F / III-G.5)."""

    HUNGARIAN = "hungarian"
    GREEDY = "greedy"


class DedupStrategy(str, enum.Enum):
    """Candidate de-duplication strategy (Sec. III-G.3)."""

    GROUP_ON_ONE = "one"
    GROUP_ON_BOTH = "both"


class FrequencyMode(str, enum.Enum):
    """How popular tokens (> ``M``) are detected (Sec. III-G.2).

    ``EXACT`` counts every token with a MapReduce job; ``SKETCH`` uses
    mapper-local Space-Saving summaries merged at the driver -- the
    "scalable way" the paper defers to its extended version.  The sketch
    never misses a truly frequent token (it may drop a few borderline
    ones, the same recall trade ``M`` itself makes).
    """

    EXACT = "exact"
    SKETCH = "sketch"


@dataclass(frozen=True)
class TSJConfig:
    """Parameters of a TSJ run.

    The default values are the paper's defaults (Sec. V): ``T = 0.1``,
    ``M = 1000``, fuzzy matching, exact (Hungarian) aligning,
    grouping-on-one-string dedup, both filters enabled.
    """

    threshold: float = 0.1
    max_token_frequency: int | None = 1000
    matching: MatchingMode = MatchingMode.FUZZY
    aligning: AligningMode = AligningMode.HUNGARIAN
    dedup: DedupStrategy = DedupStrategy.GROUP_ON_ONE
    frequency_mode: FrequencyMode = FrequencyMode.EXACT
    use_length_filter: bool = True
    use_histogram_filter: bool = True
    verify_backend: str = "auto"
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not 0 <= self.threshold < 1:
            raise ValueError("NSLD threshold must be in [0, 1)")
        if self.max_token_frequency is not None and self.max_token_frequency < 1:
            raise ValueError("max_token_frequency must be positive (or None)")
        validate_choice("verification backend", self.verify_backend, BACKENDS)
        validate_choice("execution engine", self.engine, ENGINES)
        # Accept plain strings for ergonomics; unknown names get the
        # uniform selector error instead of the bare enum ValueError.
        for attribute, kind, enum_type in (
            ("matching", "matching mode", MatchingMode),
            ("aligning", "aligning mode", AligningMode),
            ("dedup", "dedup strategy", DedupStrategy),
            ("frequency_mode", "frequency mode", FrequencyMode),
        ):
            value = getattr(self, attribute)
            if not isinstance(value, enum_type):
                validate_choice(
                    kind, value, tuple(member.value for member in enum_type)
                )
            object.__setattr__(self, attribute, enum_type(value))

    @property
    def is_lossless(self) -> bool:
        """Whether this configuration is guaranteed to return the exact
        NSLD-join result (no recall-trading approximation is active)."""
        return (
            self.matching is MatchingMode.FUZZY
            and self.aligning is AligningMode.HUNGARIAN
            and self.max_token_frequency is None
        )
