"""The TSJ orchestrator: wires the pipeline jobs into a full NSLD self-join.

Pipeline (Sec. III), in MapReduce jobs on the simulated cluster:

1. ``tsj-token-frequency``        -- token popularity (for ``M`` and the
   token space).  Skipped when neither is needed.
2. ``tsj-shared-token-candidates``-- Sec. III-C generation.
3. MassJoin (4 jobs)              -- the token NLD-join (Sec. III-D);
   skipped by the exact-token-matching approximation.
4. ``tsj-similar-token-fanout`` / ``tsj-similar-token-join`` -- map the
   similar token pairs back to candidate record pairs.
5. ``tsj-dedup-filter``           -- de-duplication (either grouping
   strategy) + the Lemma 6 and histogram filters.
6. ``tsj-resolve`` / ``tsj-verify`` -- id resolution and final NSLD
   verification (Hungarian or greedy).

Approximation semantics (Sec. V-B): every approximation only *loses*
pairs -- precision is always 1.0; the lossless configuration
(``TSJConfig(max_token_frequency=None)`` with fuzzy matching and Hungarian
aligning) returns exactly the brute-force NSLD-join result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.joins.massjoin import MassJoin
from repro.mapreduce import (
    ClusterConfig,
    CostModel,
    MapReduceEngine,
    PipelineResult,
)
from repro.mapreduce.sketches import approximate_frequent_tokens
from repro.runtime import create_engine
from repro.tokenize import TokenizedString
from repro.tsj.config import (
    AligningMode,
    DedupStrategy,
    FrequencyMode,
    MatchingMode,
    TSJConfig,
)
from repro.tsj.jobs import (
    DedupFilterJob,
    ResolveLeftJob,
    SharedTokenCandidatesJob,
    TokenFrequencyJob,
    TokenPairFanoutJob,
    TokenPairJoinJob,
    VerifyJob,
)


@dataclass
class TSJResult:
    """Output of a TSJ self-join run."""

    pairs: set[tuple[int, int]]
    distances: dict[tuple[int, int], float]
    pipeline: PipelineResult
    config: TSJConfig

    def simulated_seconds(self, cost: CostModel | None = None) -> float:
        """End-to-end simulated runtime of the whole pipeline."""
        return self.pipeline.simulated_seconds(cost)

    def counters(self) -> dict[str, int]:
        return self.pipeline.counters()

    @property
    def pair_count(self) -> int:
        return len(self.pairs)


class TSJ:
    """Tokenized-String Joiner: scalable NSLD self-joins (Sec. III).

    Parameters
    ----------
    config:
        Thresholds, approximations and strategies; see :class:`TSJConfig`.
    engine:
        Simulated cluster; defaults to a 10-machine cluster executed by
        the engine ``config.engine`` selects (``"auto"`` runs the
        pipeline's jobs over the shared worker pool when the machine has
        more than one CPU; results are identical either way).  An
        explicitly passed engine instance always wins -- ``config.engine``
        is only consulted when ``engine`` is ``None``.

    Examples
    --------
    >>> from repro.tokenize import tokenize
    >>> records = [tokenize(n) for n in
    ...            ["barak obama", "borak obama", "john smith"]]
    >>> result = TSJ(TSJConfig(threshold=0.15,
    ...                        max_token_frequency=None)).self_join(records)
    >>> sorted(result.pairs)
    [(0, 1)]
    """

    def __init__(
        self,
        config: TSJConfig | None = None,
        engine: MapReduceEngine | None = None,
    ) -> None:
        self.config = config or TSJConfig()
        self.engine = engine or create_engine(
            self.config.engine, ClusterConfig(n_machines=10)
        )

    # -- pipeline ------------------------------------------------------------

    def self_join(self, records: Sequence[TokenizedString]) -> TSJResult:
        """All pairs ``(i, j)``, ``i < j``, with ``NSLD <= T``."""
        return self._join(list(records), bipartite_boundary=None)

    def join(
        self,
        r: Sequence[TokenizedString],
        p: Sequence[TokenizedString],
    ) -> TSJResult:
        """The general R x P join of Sec. II-B: all ``(i, j)`` with
        ``NSLD(r[i], p[j]) <= T``.

        Implemented by running the pipeline over the concatenation of both
        datasets in *bipartite* mode: candidate generators pair records
        only across the R/P boundary.  The popular-token cut-off ``M``
        counts occurrences over the union, and result pairs are reported
        as ``(index_in_r, index_in_p)``.
        """
        boundary = len(r)
        result = self._join(list(r) + list(p), bipartite_boundary=boundary)
        pairs = {(a, b - boundary) for a, b in result.pairs}
        distances = {
            (a, b - boundary): distance
            for (a, b), distance in result.distances.items()
        }
        return TSJResult(
            pairs=pairs,
            distances=distances,
            pipeline=result.pipeline,
            config=result.config,
        )

    def _join(
        self,
        records: list[TokenizedString],
        bipartite_boundary: int | None,
    ) -> TSJResult:
        config = self.config
        engine = self.engine
        tagged = list(enumerate(records))
        stages = []

        def cross_side(a: int, b: int) -> bool:
            if bipartite_boundary is None:
                return True
            return (a < bipartite_boundary) != (b < bipartite_boundary)

        # Empty tokenized strings share no tokens and are invisible to the
        # candidate generators, yet NSLD(empty, empty) = 0: pair them
        # directly (the paper's name corpus has no empty records).
        empty_ids = [i for i, record in tagged if record.token_count == 0]
        extra_pairs = {
            (empty_ids[i], empty_ids[j])
            for i in range(len(empty_ids))
            for j in range(i + 1, len(empty_ids))
            if cross_side(empty_ids[i], empty_ids[j])
        }

        # ---- token frequencies / token space --------------------------------
        # The token space (for the similar-token join) always needs the
        # frequency job; the popular-token cut-off can alternatively use
        # mapper-local Space-Saving sketches (Sec. III-G.2's deferred
        # "scalable way"), which skips the counting shuffle entirely when
        # exact matching is active.
        need_token_space = config.matching is MatchingMode.FUZZY
        use_sketch = (
            config.frequency_mode is FrequencyMode.SKETCH
            and config.max_token_frequency is not None
        )
        need_frequencies = need_token_space or (
            config.max_token_frequency is not None and not use_sketch
        )
        frequent_tokens: frozenset[str] = frozenset()
        token_counts: list[tuple[str, int]] = []
        if need_frequencies:
            frequency_result = engine.run(TokenFrequencyJob(), tagged)
            stages.append(frequency_result.metrics)
            token_counts = frequency_result.outputs
        if use_sketch:
            frequent_tokens = approximate_frequent_tokens(
                records, config.max_token_frequency
            )
        elif config.max_token_frequency is not None:
            frequent_tokens = frozenset(
                token
                for token, count in token_counts
                if count > config.max_token_frequency
            )

        # ---- shared-token candidates (Sec. III-C) ----------------------------
        shared = engine.run(
            SharedTokenCandidatesJob(
                config.threshold,
                frequent_tokens,
                config.use_length_filter,
                bipartite_boundary=bipartite_boundary,
            ),
            tagged,
        )
        stages.append(shared.metrics)
        candidates = list(shared.outputs)

        # ---- similar-token candidates (Sec. III-D) ---------------------------
        if config.matching is MatchingMode.FUZZY:
            token_space = sorted(
                token
                for token, _ in token_counts
                if token not in frequent_tokens
            )
            mass = MassJoin(
                engine,
                config.threshold,
                mode="nld",
                backend=config.verify_backend,
            )
            token_join = mass.self_join(token_space)
            stages.extend(token_join.pipeline.stages)

            similar_token_pairs = []
            for (a, b), distance in token_join.distances.items():
                token_a, token_b = token_space[a], token_space[b]
                # Recover the integer LD from the NLD value:
                # NLD = 2*LD / (|x|+|y|+LD)  =>  LD = NLD*(|x|+|y|)/(2-NLD).
                ld = round(distance * (len(token_a) + len(token_b)) / (2.0 - distance))
                similar_token_pairs.append((token_a, token_b, ld))

            if similar_token_pairs:
                fanout_input = [("rec", item) for item in tagged]
                fanout_input += [("sim", pair) for pair in similar_token_pairs]
                fanout = engine.run(TokenPairFanoutJob(frequent_tokens), fanout_input)
                stages.append(fanout.metrics)
                joined = engine.run(
                    TokenPairJoinJob(
                        config.threshold,
                        config.use_length_filter,
                        bipartite_boundary=bipartite_boundary,
                    ),
                    fanout.outputs,
                )
                stages.append(joined.metrics)
                candidates.extend(joined.outputs)

        # ---- dedup + filters (Sec. III-E, III-G.3) ----------------------------
        # The histogram filter's Lemma 10 reasoning needs the complete set
        # of similar token pairs.  Exact matching never has it, and fuzzy
        # matching loses it as soon as the popular-token cut-off actually
        # drops tokens (a dropped shared token is a similar pair the
        # filter never hears about).  In both cases the filter falls back
        # to its unconditional length-difference bounds.
        complete_pairs = (config.matching is MatchingMode.FUZZY and not frequent_tokens)
        dedup = engine.run(
            DedupFilterJob(
                config.threshold,
                group_on_one=config.dedup is DedupStrategy.GROUP_ON_ONE,
                use_length_filter=config.use_length_filter,
                use_histogram_filter=config.use_histogram_filter,
                complete_similar_pairs=complete_pairs,
            ),
            candidates,
        )
        stages.append(dedup.metrics)

        # ---- resolve + verify (Sec. III-F) ------------------------------------
        resolve_input = [("pair", pair) for pair in dedup.outputs]
        resolve_input += [("rec", item) for item in tagged]
        resolved = engine.run(ResolveLeftJob(), resolve_input)
        stages.append(resolved.metrics)

        verify_input = [("half", half) for half in resolved.outputs]
        verify_input += [("rec", item) for item in tagged]
        verified = engine.run(
            VerifyJob(
                config.threshold,
                greedy=config.aligning is AligningMode.GREEDY,
                backend=config.verify_backend,
            ),
            verify_input,
        )
        stages.append(verified.metrics)

        pairs: set[tuple[int, int]] = set(extra_pairs)
        distances: dict[tuple[int, int], float] = {pair: 0.0 for pair in extra_pairs}
        for left, right, distance in verified.outputs:
            pair = (left, right) if left < right else (right, left)
            pairs.add(pair)
            distances[pair] = distance

        pipeline = PipelineResult(outputs=sorted(pairs), stages=stages)
        return TSJResult(
            pairs=pairs, distances=distances, pipeline=pipeline, config=config
        )
