"""Brute-force joins: the ground-truth oracles.

Quadratic pairwise comparison with the exact distance.  Unusable at scale
(the paper's motivating dataset implies ~2x10^15 comparisons) but essential
as the correctness reference for every filtered/distributed algorithm in
this repository: tests assert that PassJoin, MassJoin, TSJ (unapproximated)
and the metric-space joins return exactly these pairs.

All self-join functions return pairs of *indices* ``(i, j)`` with
``i < j``; two-set joins return ``(index_in_r, index_in_p)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.distances import levenshtein_within, nld_within, nsld_within
from repro.tokenize import TokenizedString


def naive_ld_self_join(
    strings: Sequence[str], threshold: int
) -> set[tuple[int, int]]:
    """All index pairs with ``LD <= threshold`` (exact, quadratic)."""
    pairs: set[tuple[int, int]] = set()
    for i in range(len(strings)):
        for j in range(i + 1, len(strings)):
            if levenshtein_within(strings[i], strings[j], threshold) is not None:
                pairs.add((i, j))
    return pairs


def naive_ld_join(
    r: Sequence[str], p: Sequence[str], threshold: int
) -> set[tuple[int, int]]:
    """All ``(i, j)`` with ``LD(r[i], p[j]) <= threshold``."""
    pairs: set[tuple[int, int]] = set()
    for i, x in enumerate(r):
        for j, y in enumerate(p):
            if levenshtein_within(x, y, threshold) is not None:
                pairs.add((i, j))
    return pairs


def naive_nld_self_join(
    strings: Sequence[str], threshold: float
) -> set[tuple[int, int]]:
    """All index pairs with ``NLD <= threshold`` (exact, quadratic)."""
    pairs: set[tuple[int, int]] = set()
    for i in range(len(strings)):
        for j in range(i + 1, len(strings)):
            if nld_within(strings[i], strings[j], threshold) is not None:
                pairs.add((i, j))
    return pairs


def naive_nld_join(
    r: Sequence[str], p: Sequence[str], threshold: float
) -> set[tuple[int, int]]:
    """All ``(i, j)`` with ``NLD(r[i], p[j]) <= threshold``."""
    pairs: set[tuple[int, int]] = set()
    for i, x in enumerate(r):
        for j, y in enumerate(p):
            if nld_within(x, y, threshold) is not None:
                pairs.add((i, j))
    return pairs


def naive_nsld_self_join(
    records: Sequence[TokenizedString], threshold: float
) -> set[tuple[int, int]]:
    """All index pairs of tokenized strings with ``NSLD <= threshold``.

    This is the problem statement of Sec. II-B specialised to self-joins
    (the paper's motivating application), answered exactly.
    """
    pairs: set[tuple[int, int]] = set()
    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            if nsld_within(records[i], records[j], threshold) is not None:
                pairs.add((i, j))
    return pairs


def naive_nsld_join(
    r: Sequence[TokenizedString],
    p: Sequence[TokenizedString],
    threshold: float,
) -> set[tuple[int, int]]:
    """All ``(i, j)`` with ``NSLD(r[i], p[j]) <= threshold`` -- the general
    R x P problem statement of Sec. II-B, answered exactly."""
    pairs: set[tuple[int, int]] = set()
    for i, x in enumerate(r):
        for j, y in enumerate(p):
            if nsld_within(x, y, threshold) is not None:
                pairs.add((i, j))
    return pairs
