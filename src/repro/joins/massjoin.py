"""MassJoin (Deng, Li, Hao, Wang & Feng, ICDE 2014) on the simulated
MapReduce engine.

MassJoin distributes Pass-Join: mappers emit string *chunks* (segments of
the indexed role, substrings of the probe role) keyed by chunk content and
metadata; the shuffle groups tokens sharing a chunk; reducers form
candidate id pairs; follow-up jobs de-duplicate candidates, resolve ids
back to strings, and verify.  The pipeline mirrors the paper's
frugal-candidate design: ids (not strings) flow through candidate
generation, and strings are attached only for final verification
(Sec. III-D: "whenever possible, uses unique ids of chunks and tokens").

TSJ employs MassJoin in NLD mode for the similar-token candidate phase:
Lemma 8 turns the NLD threshold into per-length edit caps and Lemma 9 into
a candidate length window, after which the LD machinery applies unchanged.

Pipeline (4 jobs):

1. ``massjoin-candidates`` -- segment/substring generation + chunk join.
2. ``massjoin-dedup``      -- candidate pair de-duplication.
3. ``massjoin-resolve``    -- attach the left string to each pair.
4. ``massjoin-verify``     -- attach the right string, verify the distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.accel import edit_distance_within
from repro.candidates import COUNTER_CANDIDATES, COUNTER_VERIFIED
from repro.distances import nld_within
from repro.distances.normalized import (
    max_ld_for_longer,
    max_ld_for_shorter,
    min_length_for_nld,
)
from repro.joins.passjoin import _segment_bounds, even_partition
from repro.mapreduce import (
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)


class _NldScheme:
    """Threshold arithmetic for NLD-joins (Lemmas 8 and 9)."""

    def __init__(self, threshold: float, backend: str = "auto") -> None:
        if not 0 <= threshold < 1:
            raise ValueError("NLD threshold must be in [0, 1)")
        self.threshold = threshold
        self.backend = backend

    def min_partner_length(self, length: int) -> int:
        return min_length_for_nld(self.threshold, length)

    def u_index(self, length: int) -> int:
        # Largest LD cap against partners at least as long (self-join
        # probes run shortest-first): Lemma 8 with |x| > |y|.
        return max_ld_for_longer(self.threshold, length)

    def u_pair(self, probe_length: int, indexed_length: int) -> int:
        return min(
            max_ld_for_shorter(self.threshold, probe_length),
            max_ld_for_longer(self.threshold, indexed_length),
        )

    def verify(self, x: str, y: str, ops) -> float | None:
        return nld_within(x, y, self.threshold, ops=ops, backend=self.backend)


class _LdScheme:
    """Threshold arithmetic for classic LD-joins (fixed ``U``)."""

    def __init__(self, threshold: int, backend: str = "auto") -> None:
        if threshold < 0:
            raise ValueError("edit-distance threshold must be non-negative")
        self.threshold = threshold
        self.backend = backend

    def min_partner_length(self, length: int) -> int:
        return max(0, length - self.threshold)

    def u_index(self, length: int) -> int:
        return self.threshold

    def u_pair(self, probe_length: int, indexed_length: int) -> int:
        return self.threshold

    def verify(self, x: str, y: str, ops) -> float | None:
        distance = edit_distance_within(
            x, y, self.threshold, ops=ops, backend=self.backend
        )
        return None if distance is None else float(distance)


class _CandidateJob(MapReduceJob):
    """Job 1: emit chunks for both roles, join them on chunk identity.

    Input records are ``(id, string)``.  Each string plays the *indexed*
    role (its segments) for partners at least as long, and the *probe*
    role (its substrings) against indexed lengths no longer than itself --
    the self-join symmetry optimisation of Sec. III-G.1.
    """

    name = "massjoin-candidates"

    def __init__(self, scheme) -> None:
        self.scheme = scheme

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        identifier, s = record
        length = len(s)
        scheme = self.scheme
        # ---- indexed role ---------------------------------------------------
        u_index = scheme.u_index(length)
        if length <= u_index:
            yield ("short", length), ("I", identifier)
        else:
            for i, (_, segment) in enumerate(even_partition(s, u_index + 1)):
                yield (i, length, segment), ("I", identifier)
        # ---- probe role -----------------------------------------------------
        for indexed_length in range(scheme.min_partner_length(length), length + 1):
            if indexed_length < 0:
                continue
            u_idx = scheme.u_index(indexed_length)
            if indexed_length <= u_idx:
                yield ("short", indexed_length), ("P", identifier)
                continue
            u_pair = scheme.u_pair(length, indexed_length)
            k = u_idx + 1
            for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                lo = max(0, p_i - u_pair)
                hi = min(length - size, p_i + u_pair)
                for start in range(lo, hi + 1):
                    ctx.charge(size)  # substring extraction work
                    yield (i, indexed_length, s[start : start + size]), (
                        "P",
                        identifier,
                    )

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        indexed = [identifier for role, identifier in values if role == "I"]
        probes = [identifier for role, identifier in values if role == "P"]
        ctx.charge(len(indexed) * len(probes))
        emitted = 0
        for left in indexed:
            for right in probes:
                if left == right:
                    continue
                pair = (left, right) if left < right else (right, left)
                emitted += 1
                yield pair
        if emitted:
            ctx.count("candidates-raw", emitted)
            ctx.count(COUNTER_CANDIDATES, emitted)


class _DedupJob(MapReduceJob):
    """Job 2: collapse duplicate candidate pairs (grouping on both ids)."""

    name = "massjoin-dedup"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record, None

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        ctx.count("candidates-distinct")
        yield key


class _ResolveLeftJob(MapReduceJob):
    """Job 3: join the left id of each pair with its string.

    Input is the union of candidate pairs tagged ``('pair', (a, b))`` and
    the dataset tagged ``('string', (id, s))``; the reducer on the left id
    re-emits pairs carrying the left string.
    """

    name = "massjoin-resolve"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "pair":
            left, right = payload
            yield left, ("PAIR", right)
        else:
            identifier, s = payload
            yield identifier, ("STR", s)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        left_string = None
        rights = []
        for tag, payload in values:
            if tag == "STR":
                left_string = payload
            else:
                rights.append(payload)
        if left_string is None:
            return
        for right in rights:
            yield right, (key, left_string)


class _VerifyJob(MapReduceJob):
    """Job 4: join the right string and verify the candidate pair."""

    name = "massjoin-verify"

    def __init__(self, scheme) -> None:
        self.scheme = scheme

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "half":
            right, left_info = payload
            yield right, ("PAIR", left_info)
        else:
            identifier, s = payload
            yield identifier, ("STR", s)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        right_string = None
        lefts = []
        for tag, payload in values:
            if tag == "STR":
                right_string = payload
            else:
                lefts.append(payload)
        if right_string is None:
            return
        if lefts:
            ctx.count("verified", len(lefts))
            ctx.count(COUNTER_VERIFIED, len(lefts))
        similar = 0
        for left_id, left_string in lefts:
            distance = self.scheme.verify(left_string, right_string, ctx.charge)
            if distance is not None:
                similar += 1
                yield (left_id, key, distance)
        if similar:
            ctx.count("similar", similar)


@dataclass
class MassJoinResult:
    """Similar pairs plus the full pipeline work ledger."""

    pairs: set[tuple[int, int]]
    distances: dict[tuple[int, int], float]
    pipeline: PipelineResult


class MassJoin:
    """MapReduce-distributed string similarity self-join.

    Parameters
    ----------
    engine:
        The simulated cluster to run on.
    threshold:
        NLD threshold in ``[0, 1)`` (mode ``"nld"``) or integer edit
        distance (mode ``"ld"``).
    mode:
        ``"nld"`` (TSJ's token join, the default) or ``"ld"``.
    backend:
        Verification kernel selector (``"auto" | "dp" | "bitparallel"``,
        see :mod:`repro.accel`).
    """

    def __init__(
        self,
        engine: MapReduceEngine | None = None,
        threshold: float = 0.1,
        mode: str = "nld",
        backend: str = "auto",
    ) -> None:
        self.engine = engine or MapReduceEngine()
        from repro.api.registry import validate_choice

        validate_choice("MassJoin mode", mode, ("nld", "ld"))
        if mode == "nld":
            self.scheme = _NldScheme(float(threshold), backend)
        else:
            self.scheme = _LdScheme(int(threshold), backend)

    def self_join(self, strings: Sequence[str]) -> MassJoinResult:
        """Join ``strings`` with themselves; returns id pairs ``(i, j)``,
        ``i < j``, their distances, and the pipeline metrics."""
        engine = self.engine
        records = list(enumerate(strings))

        candidates = engine.run(_CandidateJob(self.scheme), records)
        dedup = engine.run(_DedupJob(), candidates.outputs)
        resolve_input = [("pair", pair) for pair in dedup.outputs]
        resolve_input += [("string", record) for record in records]
        resolved = engine.run(_ResolveLeftJob(), resolve_input)
        verify_input = [("half", half) for half in resolved.outputs]
        verify_input += [("string", record) for record in records]
        verified = engine.run(_VerifyJob(self.scheme), verify_input)

        pairs: set[tuple[int, int]] = set()
        distances: dict[tuple[int, int], float] = {}
        for left, right, distance in verified.outputs:
            pair = (left, right) if left < right else (right, left)
            pairs.add(pair)
            distances[pair] = distance
        pipeline = PipelineResult(
            outputs=sorted(pairs),
            stages=[
                candidates.metrics,
                dedup.metrics,
                resolved.metrics,
                verified.metrics,
            ],
        )
        return MassJoinResult(pairs=pairs, distances=distances, pipeline=pipeline)
