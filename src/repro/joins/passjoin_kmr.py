"""PassJoinKMR: the MapReduce parallelisation of PassJoinK (Lin et al.).

Sec. IV cites PassJoinK's distributed versions, PassJoinKMR and
PassJoinKMRS, as MassJoin's competition.  The pipeline mirrors the
published structure:

1. ``passjoinkmr-signatures`` -- every string emits its ``U + K`` even
   segments (indexed role) and the windowed substrings probing shorter or
   equal strings (probe role), keyed by chunk content; reducers emit raw
   ``(pair, segment_index)`` hits.
2. ``passjoinkmr-count`` -- group hits by pair and keep pairs matching on
   at least ``K`` distinct segment indices (the K-signature pigeonhole:
   ``U`` edits destroy at most ``U`` of ``U + K`` segments).
3. ``passjoinkmr-resolve`` / ``passjoinkmr-verify`` -- id-to-string
   resolution and banded-DP verification, as in MassJoin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.accel import edit_distance_within
from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    COUNTER_VERIFIED,
)
from repro.joins.passjoin import _segment_bounds, even_partition
from repro.mapreduce import (
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)


class _SignatureJob(MapReduceJob):
    """Job 1: chunk join emitting (pair, segment index) hits."""

    name = "passjoinkmr-signatures"

    def __init__(self, threshold: int, k_signatures: int) -> None:
        self.threshold = threshold
        self.k_signatures = k_signatures
        self.segment_count = threshold + k_signatures

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        identifier, s = record
        length = len(s)
        k = self.segment_count
        # ---- indexed role ----------------------------------------------------
        if length < k:
            yield ("short", length), ("I", identifier)
        else:
            for i, (_, segment) in enumerate(even_partition(s, k)):
                yield (i, length, segment), ("I", identifier)
        # ---- probe role (partners no longer than s) ----------------------------
        for indexed_length in range(max(0, length - self.threshold), length + 1):
            if indexed_length < k:
                yield ("short", indexed_length), ("P", identifier)
                continue
            for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                lo = max(0, p_i - self.threshold)
                hi = min(length - size, p_i + self.threshold)
                for start in range(lo, hi + 1):
                    ctx.charge(size)
                    yield (i, indexed_length, s[start : start + size]), (
                        "P",
                        identifier,
                    )

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        indexed = [identifier for role, identifier in values if role == "I"]
        probes = [identifier for role, identifier in values if role == "P"]
        segment_index = key[0] if key[0] != "short" else -1
        ctx.charge(len(indexed) * len(probes))
        for left in indexed:
            for right in probes:
                if left == right:
                    continue
                pair = (left, right) if left < right else (right, left)
                yield pair, segment_index


class _CountJob(MapReduceJob):
    """Job 2: keep pairs with >= K distinct matched segment indices.

    Short-bucket hits (segment index -1) bypass the count -- the
    K-signature argument needs ``U + K`` real segments.
    """

    name = "passjoinkmr-count"

    def __init__(self, k_signatures: int) -> None:
        self.k_signatures = k_signatures

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        indices = set(values)
        ctx.count(COUNTER_CANDIDATES)
        if -1 in indices or len(indices) >= self.k_signatures:
            ctx.count("candidates")
            yield key
        else:
            ctx.count(COUNTER_PRUNED_COUNT)


class _ResolveJob(MapReduceJob):
    name = "passjoinkmr-resolve"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "pair":
            left, right = payload
            yield left, ("PAIR", right)
        else:
            identifier, s = payload
            yield identifier, ("STR", s)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        left_string = None
        rights = []
        for tag, payload in values:
            if tag == "STR":
                left_string = payload
            else:
                rights.append(payload)
        if left_string is None:
            return
        for right in rights:
            yield right, (key, left_string)


class _VerifyJob(MapReduceJob):
    name = "passjoinkmr-verify"

    def __init__(self, threshold: int, backend: str = "auto") -> None:
        self.threshold = threshold
        self.backend = backend

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        tag, payload = record
        if tag == "half":
            right, left_info = payload
            yield right, ("PAIR", left_info)
        else:
            identifier, s = payload
            yield identifier, ("STR", s)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        right_string = None
        lefts = []
        for tag, payload in values:
            if tag == "STR":
                right_string = payload
            else:
                lefts.append(payload)
        if right_string is None:
            return
        if lefts:
            ctx.count(COUNTER_VERIFIED, len(lefts))
        for left_id, left_string in lefts:
            distance = edit_distance_within(
                left_string,
                right_string,
                self.threshold,
                ops=ctx.charge,
                backend=self.backend,
            )
            if distance is not None:
                yield (left_id, key, distance)


@dataclass
class PassJoinKMRResult:
    pairs: set[tuple[int, int]]
    distances: dict[tuple[int, int], int]
    pipeline: PipelineResult


class PassJoinKMR:
    """Distributed LD self-join requiring K matching signatures."""

    def __init__(
        self,
        engine: MapReduceEngine | None = None,
        threshold: int = 1,
        k_signatures: int = 2,
        backend: str = "auto",
    ) -> None:
        if threshold < 0:
            raise ValueError("edit-distance threshold must be non-negative")
        if k_signatures < 1:
            raise ValueError("need at least one required signature")
        self.engine = engine or MapReduceEngine()
        self.threshold = threshold
        self.k_signatures = k_signatures
        self.backend = backend

    def self_join(self, strings: Sequence[str]) -> PassJoinKMRResult:
        """All pairs ``(i, j)``, ``i < j``, with ``LD <= U``."""
        engine = self.engine
        records = list(enumerate(strings))

        hits = engine.run(_SignatureJob(self.threshold, self.k_signatures), records)
        counted = engine.run(_CountJob(self.k_signatures), hits.outputs)
        resolve_input = [("pair", pair) for pair in counted.outputs]
        resolve_input += [("string", record) for record in records]
        resolved = engine.run(_ResolveJob(), resolve_input)
        verify_input = [("half", half) for half in resolved.outputs]
        verify_input += [("string", record) for record in records]
        verified = engine.run(_VerifyJob(self.threshold, self.backend), verify_input)

        pairs: set[tuple[int, int]] = set()
        distances: dict[tuple[int, int], int] = {}
        for left, right, distance in verified.outputs:
            pair = (left, right) if left < right else (right, left)
            pairs.add(pair)
            distances[pair] = distance
        pipeline = PipelineResult(
            outputs=sorted(pairs),
            stages=[
                hits.metrics,
                counted.metrics,
                resolved.metrics,
                verified.metrics,
            ],
        )
        return PassJoinKMRResult(pairs=pairs, distances=distances, pipeline=pipeline)
