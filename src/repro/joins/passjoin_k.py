"""PassJoinK (Lin, Yu, Weng & He, DASFAA 2014).

Generalises Pass-Join's pigeonhole: partition every indexed string into
``U + K`` segments; a pair within edit distance ``U`` must then share at
least ``K`` segments (each edit operation can destroy at most one segment,
so at least ``K`` of the ``U + K`` survive as substrings of the partner).
Requiring ``K`` matching signatures instead of one trades more signatures
for fewer -- and better-filtered -- candidates.

The paper (Sec. IV) cites this family (including its MapReduce versions
PassJoinKMR / PassJoinKMRS) as the state of the art that MassJoin competes
with; we provide the serial algorithm as an ablation baseline for the
token-join stage.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    PostingsIndex,
    new_counters,
    unordered,
    verify_ld_pairs,
)
from repro.joins.passjoin import _segment_bounds, even_partition


class PassJoinK:
    """Serial PassJoinK for LD self-joins with threshold ``U`` and ``K``
    required signature matches.  ``backend`` selects the verification
    kernel (see :mod:`repro.accel`); surviving candidates are verified in
    one batched :func:`repro.accel.verify_pairs` call.  The K-signature
    count filter runs on the shared candidate pipeline: interned segment
    signatures (:class:`repro.candidates.PostingsIndex`), per-candidate
    matched-segment *bitmasks* instead of sets, and canonical counters in
    ``last_counters`` (``pruned_by_count`` is the K-signature filter)."""

    def __init__(
        self, threshold: int, k_signatures: int = 2, backend: str = "auto"
    ) -> None:
        if threshold < 0:
            raise ValueError("edit-distance threshold must be non-negative")
        if k_signatures < 1:
            raise ValueError("need at least one required signature")
        self.threshold = threshold
        self.k_signatures = k_signatures
        self.segment_count = threshold + k_signatures
        self.backend = backend
        self.last_counters: dict[str, int] = new_counters()

    def self_join(self, strings: Sequence[str]) -> set[tuple[int, int]]:
        """All index pairs ``(i, j)``, ``i < j``, with ``LD <= U``.

        Like Pass-Join's shortest-first sweep, but candidates must match on
        at least ``K`` distinct segment indices before verification.
        """
        self.last_counters = counters = new_counters()
        order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
        index = PostingsIndex()
        short_bucket: dict[int, list[int]] = defaultdict(list)
        seen_lengths: list[int] = []
        seen_length_set: set[int] = set()
        pending: list[tuple[int, int]] = []
        u = self.threshold
        k = self.segment_count
        k_required = self.k_signatures

        for identifier in order:
            s = strings[identifier]
            probe_length = len(s)
            # Distinct matched segment indices per candidate id, as a
            # bitmask (segment indices are < U + K, comfortably machine
            # word width).
            matched: dict[int, int] = defaultdict(int)
            for indexed_length in seen_lengths:
                if probe_length - indexed_length > u:
                    continue
                if indexed_length < k:
                    continue  # short-bucket strings skip the signature count
                for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                    lo = max(0, p_i - u)
                    hi = min(probe_length - size, p_i + u)
                    bit = 1 << i
                    for start in range(lo, hi + 1):
                        found = index.get((i, indexed_length, s[start : start + size]))
                        if found:
                            for candidate in found:
                                matched[candidate] |= bit
            candidates = set()
            for candidate, mask in matched.items():
                if mask.bit_count() >= k_required:
                    candidates.add(candidate)
                else:
                    counters[COUNTER_PRUNED_COUNT] += 1
            counters[COUNTER_CANDIDATES] += len(matched)
            for bucket_length, ids in short_bucket.items():
                if probe_length - bucket_length <= u:
                    counters[COUNTER_CANDIDATES] += len(ids)
                    candidates.update(ids)
            for candidate in candidates:
                if candidate != identifier:
                    pending.append((candidate, identifier))
            # Index s.  Strings shorter than the segment count cannot host
            # k non-empty segments; they fall back to the always-candidate
            # short bucket (the K-signature argument needs k real segments).
            if probe_length < k:
                short_bucket[probe_length].append(identifier)
            else:
                for i, (start, segment) in enumerate(even_partition(s, k)):
                    index.add((i, probe_length, segment), identifier)
            if probe_length not in seen_length_set:
                seen_length_set.add(probe_length)
                seen_lengths.append(probe_length)
        distances = verify_ld_pairs(
            pending, strings, u, backend=self.backend, counters=counters
        )
        return {
            unordered(*pair)
            for pair, distance in zip(pending, distances)
            if distance is not None
        }
