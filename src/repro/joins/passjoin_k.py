"""PassJoinK (Lin, Yu, Weng & He, DASFAA 2014).

Generalises Pass-Join's pigeonhole: partition every indexed string into
``U + K`` segments; a pair within edit distance ``U`` must then share at
least ``K`` segments (each edit operation can destroy at most one segment,
so at least ``K`` of the ``U + K`` survive as substrings of the partner).
Requiring ``K`` matching signatures instead of one trades more signatures
for fewer -- and better-filtered -- candidates.

The paper (Sec. IV) cites this family (including its MapReduce versions
PassJoinKMR / PassJoinKMRS) as the state of the art that MassJoin competes
with; we provide the serial algorithm as an ablation baseline for the
token-join stage.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.accel import verify_pairs
from repro.joins.passjoin import _segment_bounds, even_partition


class PassJoinK:
    """Serial PassJoinK for LD self-joins with threshold ``U`` and ``K``
    required signature matches.  ``backend`` selects the verification
    kernel (see :mod:`repro.accel`); surviving candidates are verified in
    one batched :func:`repro.accel.verify_pairs` call."""

    def __init__(
        self, threshold: int, k_signatures: int = 2, backend: str = "auto"
    ) -> None:
        if threshold < 0:
            raise ValueError("edit-distance threshold must be non-negative")
        if k_signatures < 1:
            raise ValueError("need at least one required signature")
        self.threshold = threshold
        self.k_signatures = k_signatures
        self.segment_count = threshold + k_signatures
        self.backend = backend

    def self_join(self, strings: Sequence[str]) -> set[tuple[int, int]]:
        """All index pairs ``(i, j)``, ``i < j``, with ``LD <= U``.

        Like Pass-Join's shortest-first sweep, but candidates must match on
        at least ``K`` distinct segment indices before verification.
        """
        order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
        index: dict[tuple[int, int, str], list[int]] = defaultdict(list)
        short_bucket: dict[int, list[int]] = defaultdict(list)
        seen_lengths: list[int] = []
        seen_length_set: set[int] = set()
        pending: list[tuple[int, int]] = []
        u = self.threshold
        k = self.segment_count

        for identifier in order:
            s = strings[identifier]
            probe_length = len(s)
            # Count distinct matched segment indices per candidate id.
            matched: dict[int, set[int]] = defaultdict(set)
            for indexed_length in seen_lengths:
                if probe_length - indexed_length > u:
                    continue
                if indexed_length < k:
                    continue  # short-bucket strings skip the signature count
                for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                    lo = max(0, p_i - u)
                    hi = min(probe_length - size, p_i + u)
                    for start in range(lo, hi + 1):
                        found = index.get((i, indexed_length, s[start : start + size]))
                        if found:
                            for candidate in found:
                                matched[candidate].add(i)
            candidates = {
                candidate
                for candidate, indices in matched.items()
                if len(indices) >= self.k_signatures
            }
            for bucket_length, ids in short_bucket.items():
                if probe_length - bucket_length <= u:
                    candidates.update(ids)
            for candidate in candidates:
                if candidate != identifier:
                    pending.append((candidate, identifier))
            # Index s.  Strings shorter than the segment count cannot host
            # k non-empty segments; they fall back to the always-candidate
            # short bucket (the K-signature argument needs k real segments).
            if probe_length < k:
                short_bucket[probe_length].append(identifier)
            else:
                for i, (start, segment) in enumerate(even_partition(s, k)):
                    index[(i, probe_length, segment)].append(identifier)
            if probe_length not in seen_length_set:
                seen_length_set.add(probe_length)
                seen_lengths.append(probe_length)
        distances = verify_pairs(pending, strings, u, backend=self.backend)
        return {
            tuple(sorted(pair))
            for pair, distance in zip(pending, distances)
            if distance is not None
        }
