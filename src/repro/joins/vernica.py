"""Vernica, Carey & Li (SIGMOD 2010): MapReduce set-similarity self-join.

The canonical distributed set-similarity join the paper's related work
builds on (and that [45] and [51] benchmark against).  Three stages:

1. ``vernica-tokenorder`` -- count global token frequencies (with a
   combiner), producing the rare-first total order that prefix filtering
   requires.
2. ``vernica-ridpairs`` -- each record is routed to the reducers of its
   *prefix* tokens, carrying its full token set; each reducer verifies all
   pairs in its group (Jaccard >= t) and emits verified rid pairs.
3. ``vernica-dedup`` -- a pair sharing several prefix tokens is produced by
   several reducers; group by rid pair to report each exactly once.

Like all set-based joins it tolerates token shuffles but not token edits
(Sec. II-D) -- included as a distributed baseline for the ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_LENGTH,
    COUNTER_VERIFIED,
)
from repro.mapreduce import (
    MapReduceContext,
    MapReduceEngine,
    MapReduceJob,
    PipelineResult,
)


def _jaccard(x: frozenset, y: frozenset) -> float:
    if not x and not y:
        return 1.0
    intersection = len(x & y)
    return intersection / (len(x) + len(y) - intersection)


class _TokenOrderJob(MapReduceJob):
    name = "vernica-tokenorder"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        _, tokens = record
        for token in set(tokens):
            yield token, 1

    def combine(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield sum(values)

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield key, sum(values)


class _RidPairsJob(MapReduceJob):
    name = "vernica-ridpairs"

    def __init__(self, threshold: float, frequency: dict[str, int]) -> None:
        self.threshold = threshold
        self.frequency = frequency

    def _prefix(self, tokens: frozenset[str]) -> list[str]:
        ordered = sorted(
            tokens, key=lambda token: (self.frequency.get(token, 0), token)
        )
        prefix_length = len(tokens) - math.ceil(self.threshold * len(tokens)) + 1
        return ordered[:prefix_length]

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        identifier, tokens = record
        token_set = frozenset(tokens)
        if not token_set:
            return
        for token in self._prefix(token_set):
            yield token, (identifier, tuple(sorted(token_set)))

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        items = [(identifier, frozenset(tokens)) for identifier, tokens in values]
        generated = pruned = verified = 0
        for a in range(len(items)):
            id_a, set_a = items[a]
            for b in range(a + 1, len(items)):
                id_b, set_b = items[b]
                if id_a == id_b:
                    continue
                generated += 1
                # Length filter before the exact verification.
                small, large = sorted((len(set_a), len(set_b)))
                if small < self.threshold * large:
                    pruned += 1
                    continue
                verified += 1
                ctx.charge(small + large)
                similarity = _jaccard(set_a, set_b)
                if similarity >= self.threshold:
                    pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                    yield pair, similarity
        if generated:
            ctx.count(COUNTER_CANDIDATES, generated)
        if pruned:
            ctx.count(COUNTER_PRUNED_LENGTH, pruned)
        if verified:
            ctx.count(COUNTER_VERIFIED, verified)


class _PairDedupJob(MapReduceJob):
    name = "vernica-dedup"

    def map(self, record, ctx: MapReduceContext) -> Iterator:
        yield record[0], record[1]

    def reduce(self, key, values, ctx: MapReduceContext) -> Iterator:
        yield key, values[0]


@dataclass
class VernicaResult:
    pairs: set[tuple[int, int]]
    similarities: dict[tuple[int, int], float]
    pipeline: PipelineResult


class VernicaJoin:
    """Distributed Jaccard self-join over token collections."""

    def __init__(
        self, engine: MapReduceEngine | None = None, threshold: float = 0.8
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("Jaccard threshold must be in (0, 1]")
        self.engine = engine or MapReduceEngine()
        self.threshold = threshold

    def self_join(self, records: Sequence[Sequence[str]]) -> VernicaResult:
        """All pairs with Jaccard >= threshold among ``records``."""
        engine = self.engine
        tagged = list(enumerate(records))

        order = engine.run(_TokenOrderJob(), tagged)
        frequency = dict(order.outputs)
        rid_pairs = engine.run(_RidPairsJob(self.threshold, frequency), tagged)
        dedup = engine.run(_PairDedupJob(), rid_pairs.outputs)

        pairs = {pair for pair, _ in dedup.outputs}
        similarities = dict(dedup.outputs)
        pipeline = PipelineResult(
            outputs=sorted(pairs),
            stages=[order.metrics, rid_pairs.metrics, dedup.metrics],
        )
        return VernicaResult(pairs=pairs, similarities=similarities, pipeline=pipeline)
