"""Pass-Join (Li, Deng, Wang & Feng, VLDB 2011): partition-based LD-joins.

The algorithm rests on Lemma 7: if ``LD(x, y) <= U``, partitioning ``y``
into ``U + 1`` segments guarantees at least one segment is a substring of
``x``.  Pass-Join therefore

1. partitions every indexed string into ``U + 1`` *even* segments (lengths
   differ by at most one -- the paper notes even partitioning minimises the
   space of string chunks);
2. for every probe string, enumerates the substrings that could match a
   segment (bounded start-position windows) and looks them up in the
   segment index;
3. verifies surviving candidate pairs with the banded threshold DP.

The candidate machinery runs on :mod:`repro.candidates`: segment
signatures are interned to dense ids with ``array``-backed postings
(:class:`repro.candidates.PostingsIndex`, probed through its C-level
lookup ref), per-probe de-duplication is a bulk ``set.update`` over the
postings (with the shortest-first sweep this guarantees each unordered
pair is verified at most once), and verification is one batched
:func:`repro.accel.verify_pairs` call.  Filter effectiveness lands in the
canonical counters (see :mod:`repro.candidates.cascade`) exposed as
``last_counters`` on the join object / via the ``counters`` argument.

Two join modes are provided:

* :meth:`PassJoin.self_join` / :meth:`PassJoin.join` -- classic LD-joins
  with a fixed edit threshold ``U``, using the multi-match-aware substring
  windows of the original paper.
* :func:`passjoin_nld_self_join` -- the NLD adaptation TSJ needs
  (Sec. III-D): the NLD threshold ``T`` is converted into per-length edit
  caps via Lemma 8 and a candidate length window via Lemma 9.  Indexed
  strings of length ``l`` are partitioned into ``floor(T*l/(1-T)) + 1``
  segments (the largest cap over their admissible partners, which keeps
  Lemma 7 sound for every pair), and conservative shift windows are used.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.candidates import (
    COUNTER_CANDIDATES,
    PostingsIndex,
    new_counters,
    unordered,
    verify_ld_pairs,
    verify_nld_pairs,
)
from repro.distances.normalized import (
    max_ld_for_longer,
    max_ld_for_shorter,
    min_length_for_nld,
)


def even_partition(s: str, k: int) -> list[tuple[int, str]]:
    """Split ``s`` into ``k`` contiguous segments of near-equal length.

    Returns ``(start, segment)`` pairs.  The first ``k - (len(s) % k)``
    segments take ``len(s) // k`` characters, the rest one more, matching
    Pass-Join's even-partition scheme.  If ``k > len(s)`` the trailing
    segments are empty (handled specially by the index).

    Examples
    --------
    >>> even_partition("abcdefg", 3)
    [(0, 'ab'), (2, 'cd'), (4, 'efg')]
    """
    if k < 1:
        raise ValueError("need at least one segment")
    n = len(s)
    base = n // k
    extra = n % k
    segments: list[tuple[int, str]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i >= k - extra else 0)
        segments.append((start, s[start : start + size]))
        start += size
    return segments


def _segment_bounds(length: int, k: int) -> list[tuple[int, int]]:
    """The ``(start, size)`` layout :func:`even_partition` produces for any
    string of the given ``length`` -- computable without the string itself,
    which lets probes reconstruct indexed segment positions from lengths."""
    base = length // k
    extra = length % k
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i >= k - extra else 0)
        bounds.append((start, size))
        start += size
    return bounds


class PassJoin:
    """Serial Pass-Join for edit-distance joins with fixed threshold ``U``.

    Parameters
    ----------
    threshold:
        The edit-distance threshold ``U``.
    backend:
        Verification kernel selector (``"auto" | "dp" | "bitparallel"``,
        see :mod:`repro.accel`); candidates are verified in one batched
        :func:`repro.accel.verify_pairs` call.

    Attributes
    ----------
    last_counters:
        Canonical candidate-pipeline counters of the most recent
        :meth:`self_join` / :meth:`join` call.
    """

    def __init__(self, threshold: int, backend: str = "auto") -> None:
        if threshold < 0:
            raise ValueError("edit-distance threshold must be non-negative")
        self.threshold = threshold
        self.segment_count = threshold + 1
        self.backend = backend
        self.last_counters: dict[str, int] = new_counters()
        #: (probe_length, indexed_length) -> windows: the layout is a pure
        #: function of the length pair, and corpora draw lengths from a
        #: handful of values, so probes hit this memo almost always.
        self._window_memo: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}

    # -- candidate generation ----------------------------------------------

    def _probe_windows(
        self, probe_length: int, indexed_length: int
    ) -> list[tuple[int, int, int, int]]:
        """Multi-match-aware substring windows for one indexed length.

        For segment ``i`` (0-based) of an indexed string of length ``l``,
        a matching substring of the probe (length ``lx``) must start in::

            [max(0, p_i - i, p_i + D - (k-1-i)),
             min(lx - l_i, p_i + i, p_i + D + (k-1-i))]

        with ``D = lx - l`` (Li et al., Sec. 4.2).  Returns tuples
        ``(segment_index, segment_size, lo, hi)``, memoized per length
        pair.
        """
        memo_key = (probe_length, indexed_length)
        windows = self._window_memo.get(memo_key)
        if windows is not None:
            return windows
        k = self.segment_count
        delta = probe_length - indexed_length
        windows = []
        for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
            lo = max(0, p_i - i, p_i + delta - (k - 1 - i))
            hi = min(probe_length - size, p_i + i, p_i + delta + (k - 1 - i))
            if lo <= hi:
                windows.append((i, size, lo, hi))
        self._window_memo[memo_key] = windows
        return windows

    def _index_string(
        self,
        index: PostingsIndex,
        short_bucket: dict[int, list[int]],
        identifier: int,
        s: str,
    ) -> None:
        if len(s) <= self.threshold:
            # Too short to host U+1 non-empty segments; every probe in the
            # length window is a candidate (the segment filter is vacuous).
            short_bucket[len(s)].append(identifier)
            return
        for i, (start, segment) in enumerate(even_partition(s, self.segment_count)):
            index.add((i, len(s), segment), identifier)

    def _probe_string(
        self,
        index: PostingsIndex,
        short_bucket: dict[int, list[int]],
        s: str,
        lengths: Sequence[int],
    ) -> set[int]:
        """Deduplicated candidate ids for probe ``s``.

        The hot loop binds the index's C-level lookup ref once and
        deduplicates with bulk ``set.update`` over the array postings --
        per-probe set dedup plus the shortest-first sweep is what makes
        every unordered pair reach verification at most once.
        """
        probe_length = len(s)
        threshold = self.threshold
        lookup = index.lookup_ref()
        postings = index.postings
        found: set[int] = set()
        for indexed_length in lengths:
            if abs(indexed_length - probe_length) > threshold:
                continue
            for i, size, lo, hi in self._probe_windows(probe_length, indexed_length):
                for start in range(lo, hi + 1):
                    sig_id = lookup((i, indexed_length, s[start : start + size]))
                    if sig_id is not None:
                        found.update(postings[sig_id])
        for bucket_length, ids in short_bucket.items():
            if abs(bucket_length - probe_length) <= threshold:
                found.update(ids)
        return found

    # -- public joins --------------------------------------------------------

    def self_join_candidates(self, strings: Sequence[str]) -> list[tuple[int, int]]:
        """The deduplicated candidate pairs of the self-join sweep.

        Strings are processed in increasing length order; each string
        probes the index of previously seen strings, then indexes itself,
        so every unordered pair is proposed at most once (bitset dedup per
        probe; the sweep makes that a global guarantee).  Exposed
        separately from :meth:`self_join` for the candidate-pipeline bench
        and the equivalence tests against the pre-overhaul reference.
        """
        self.last_counters = counters = new_counters()
        order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
        index = PostingsIndex()
        short_bucket: dict[int, list[int]] = defaultdict(list)
        seen_lengths: list[int] = []
        seen_length_set: set[int] = set()
        candidates: list[tuple[int, int]] = []
        for identifier in order:
            s = strings[identifier]
            for candidate in self._probe_string(index, short_bucket, s, seen_lengths):
                if candidate != identifier:
                    candidates.append((candidate, identifier))
            self._index_string(index, short_bucket, identifier, s)
            if len(s) not in seen_length_set:
                seen_length_set.add(len(s))
                seen_lengths.append(len(s))
        counters[COUNTER_CANDIDATES] += len(candidates)
        return candidates

    def self_join(self, strings: Sequence[str]) -> set[tuple[int, int]]:
        """All index pairs ``(i, j)``, ``i < j``, with ``LD <= U``.

        Candidates come from :meth:`self_join_candidates` and are verified
        in one batched call (candidate generation never depends on
        verification outcomes).
        """
        candidates = self.self_join_candidates(strings)
        distances = verify_ld_pairs(
            candidates,
            strings,
            self.threshold,
            backend=self.backend,
            counters=self.last_counters,
        )
        return {
            unordered(*pair)
            for pair, distance in zip(candidates, distances)
            if distance is not None
        }

    def join(self, r: Sequence[str], p: Sequence[str]) -> set[tuple[int, int]]:
        """All ``(i, j)`` with ``LD(r[i], p[j]) <= U`` (R indexed, P probes)."""
        self.last_counters = counters = new_counters()
        index = PostingsIndex()
        short_bucket: dict[int, list[int]] = defaultdict(list)
        lengths: list[int] = []
        length_set: set[int] = set()
        for identifier, s in enumerate(r):
            self._index_string(index, short_bucket, identifier, s)
            if len(s) not in length_set:
                length_set.add(len(s))
                lengths.append(len(s))
        # Batched verification over the concatenated string table: the
        # candidate (i, j) pairs index R at i and P at len(r) + j.
        table = list(r) + list(p)
        offset = len(r)
        candidates: list[tuple[int, int]] = []
        for j, s in enumerate(p):
            for candidate in self._probe_string(index, short_bucket, s, lengths):
                candidates.append((candidate, offset + j))
        counters[COUNTER_CANDIDATES] += len(candidates)
        distances = verify_ld_pairs(
            candidates,
            table,
            self.threshold,
            backend=self.backend,
            counters=counters,
        )
        return {
            (i, j - offset)
            for (i, j), distance in zip(candidates, distances)
            if distance is not None
        }


def passjoin_nld_self_join(
    strings: Sequence[str],
    threshold: float,
    backend: str = "auto",
    counters: dict[str, int] | None = None,
) -> set[tuple[int, int]]:
    """Self-join under ``NLD <= threshold`` via the Lemma 8/9 adaptation.

    Strings are processed shortest-first.  An indexed string of length
    ``l`` is partitioned into ``floor(T*l/(1-T)) + 1`` segments -- the
    largest LD cap over partners at least as long (Lemma 8's ``|x| > |y|``
    case), so Lemma 7's pigeonhole holds for every admissible pair.  Probes
    enumerate substrings within a conservative shift window of half-width
    ``U_pair`` (an indel can shift a segment by at most one position, and a
    similar pair admits at most ``U_pair`` edits).

    Candidates are deduplicated per probe with a bitset and verified in
    batched per-LD-cap :func:`repro.accel.verify_pairs` calls
    (:func:`repro.candidates.verify_nld_pairs`); candidate generation
    never depends on verification outcomes.

    Returns index pairs ``(i, j)`` with ``i < j``.
    """
    if not 0 <= threshold < 1:
        raise ValueError("NLD threshold must be in [0, 1)")
    if counters is None:
        counters = new_counters()
    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    index = PostingsIndex()
    short_bucket: dict[int, list[int]] = defaultdict(list)
    seen_lengths: list[int] = []
    seen_length_set: set[int] = set()
    candidates: list[tuple[int, int]] = []
    lookup = index.lookup_ref()
    postings = index.postings

    for identifier in order:
        s = strings[identifier]
        probe_length = len(s)
        # ---- probe: partners are indexed, hence no longer than s ----------
        min_partner = min_length_for_nld(threshold, probe_length)
        found: set[int] = set()
        for indexed_length in seen_lengths:
            if not (min_partner <= indexed_length <= probe_length):
                continue
            # LD cap for this specific length pair (Lemma 8, both cases).
            u_pair = min(
                max_ld_for_shorter(threshold, probe_length),
                max_ld_for_longer(threshold, indexed_length),
            )
            u_index = max_ld_for_longer(threshold, indexed_length)
            k = u_index + 1
            if indexed_length <= u_index:
                continue  # lives in the short bucket
            for i, (p_i, size) in enumerate(_segment_bounds(indexed_length, k)):
                lo = max(0, p_i - u_pair)
                hi = min(probe_length - size, p_i + u_pair)
                for start in range(lo, hi + 1):
                    sig_id = lookup((i, indexed_length, s[start : start + size]))
                    if sig_id is not None:
                        found.update(postings[sig_id])
        for bucket_length, ids in short_bucket.items():
            if min_partner <= bucket_length <= probe_length:
                found.update(ids)
        for candidate in found:
            if candidate != identifier:
                candidates.append((candidate, identifier))
        # ---- index s for longer probes to find ----------------------------
        u_index = max_ld_for_longer(threshold, probe_length)
        if probe_length <= u_index:
            short_bucket[probe_length].append(identifier)
        else:
            for i, (start, segment) in enumerate(
                even_partition(s, u_index + 1)
            ):
                index.add((i, probe_length, segment), identifier)
        if probe_length not in seen_length_set:
            seen_length_set.add(probe_length)
            seen_lengths.append(probe_length)

    counters[COUNTER_CANDIDATES] += len(candidates)
    values = verify_nld_pairs(
        candidates, strings, threshold, backend=backend, counters=counters
    )
    return {
        unordered(*pair)
        for pair, value in zip(candidates, values)
        if value is not None
    }
