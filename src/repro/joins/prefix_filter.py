"""Prefix-filtered set-similarity self-join (AllPairs / PPJoin family).

The prefix-filtering principle (Chaudhuri et al. 2006; Bayardo et al. 2007;
Xiao et al. 2011): order all tokens by a global total order (ascending
document frequency -- rare first), and for a Jaccard threshold ``t`` keep
only the first ``|r| - ceil(t * |r|) + 1`` tokens of each record as its
*prefix*.  Two records whose Jaccard similarity reaches ``t`` must share at
least one prefix token, so an inverted index over prefixes finds all
candidates.  A length filter (``t * |r| <= |s| <= |r| / t``) and PPJoin's
positional upper bound prune further before exact verification.

The prefix index runs on the shared candidate pipeline
(:mod:`repro.candidates`): prefix tokens are interned signatures whose
postings pack ``(record id, prefix position)``, and the length/positional
filters report into the canonical counters.

This is the core of the set-based joins the paper reviews (MGJoin, Vernica
et al.); it handles token *shuffles* but -- as Sec. II-D stresses -- not
token *edits*, which is exactly the gap NSLD fills.  Included as a baseline
and for the related-work ablation bench.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_LENGTH,
    COUNTER_PRUNED_POSITION,
    COUNTER_VERIFIED,
    PostingsIndex,
    new_counters,
    pack_posting,
    unordered,
)

#: Bits reserved for the prefix position in a packed posting.
_POSITION_BITS = 24


def _jaccard(x: frozenset[str], y: frozenset[str]) -> float:
    if not x and not y:
        return 1.0
    intersection = len(x & y)
    return intersection / (len(x) + len(y) - intersection)


def prefix_filter_jaccard_self_join(
    records: Sequence[Sequence[str]],
    threshold: float,
    counters: dict[str, int] | None = None,
) -> set[tuple[int, int]]:
    """All index pairs with set-Jaccard similarity ``>= threshold``.

    Parameters
    ----------
    records:
        Token collections; duplicates within a record are collapsed (this
        is a *set* join, matching the published algorithms).
    threshold:
        Jaccard threshold ``t`` in ``(0, 1]``.
    counters:
        Optional canonical candidate-pipeline counter sink.

    Examples
    --------
    >>> sorted(prefix_filter_jaccard_self_join(
    ...     [["ann", "lee"], ["ann", "lee"], ["bob"]], 1.0))
    [(0, 1)]
    """
    if not 0 < threshold <= 1:
        raise ValueError("Jaccard threshold must be in (0, 1]")
    if counters is None:
        counters = new_counters()

    token_sets = [frozenset(record) for record in records]
    sizes = [len(tokens) for tokens in token_sets]
    frequency = Counter(token for tokens in token_sets for token in tokens)

    def global_order(tokens: frozenset[str]) -> list[str]:
        # Rare tokens first; ties broken lexicographically for determinism.
        return sorted(tokens, key=lambda token: (frequency[token], token))

    # Process records sorted by set size so the length filter is a simple
    # lower bound against already-indexed records.
    order = sorted(range(len(records)), key=lambda i: (len(token_sets[i]), i))
    index = PostingsIndex()  # prefix token -> packed (id, position)
    position_mask = (1 << _POSITION_BITS) - 1
    results: set[tuple[int, int]] = set()

    for identifier in order:
        tokens = token_sets[identifier]
        size = len(tokens)
        if size == 0:
            continue
        ordered = global_order(tokens)
        prefix_length = size - math.ceil(threshold * size) + 1
        min_partner = math.ceil(threshold * size)
        # ---- probe ---------------------------------------------------------
        candidates: dict[int, int] = {}
        for position, token in enumerate(ordered[:prefix_length]):
            postings = index.get(token)
            if not postings:
                continue
            for packed in postings:
                other = packed >> _POSITION_BITS
                other_size = sizes[other]
                counters[COUNTER_CANDIDATES] += 1
                if other_size < min_partner:
                    counters[COUNTER_PRUNED_LENGTH] += 1
                    continue  # length filter
                if other not in candidates:
                    # PPJoin positional filter: the overlap still reachable
                    # is 1 + min(tokens after this position on both sides).
                    other_position = packed & position_mask
                    reachable = 1 + min(
                        size - position - 1, other_size - other_position - 1
                    )
                    required = math.ceil(
                        threshold / (1 + threshold) * (size + other_size)
                    )
                    if reachable < required:
                        counters[COUNTER_PRUNED_POSITION] += 1
                        continue
                    candidates[other] = reachable
        counters[COUNTER_VERIFIED] += len(candidates)
        for other in candidates:
            if _jaccard(tokens, token_sets[other]) >= threshold:
                results.add(unordered(identifier, other))
        # ---- index the prefix ----------------------------------------------
        for position, token in enumerate(ordered[:prefix_length]):
            index.add(token, pack_posting(identifier, position, _POSITION_BITS))
    return results
