"""Q-gram based edit-distance join (Gravano et al., VLDB 2001).

The gram-based family the paper's related work surveys ([25], [26]): a
string of length ``n`` has ``n + q - 1`` positional q-grams when padded
with ``q - 1`` sentinel characters on both sides, and one edit operation
destroys at most ``q`` of them.  Hence two strings within edit distance
``U`` share at least

    ``max(|x|, |y|) + q - 1 - U * q``

padded q-grams (the *count filter*).  Combined with the length filter
(``abs(|x| - |y|) <= U``) and a position filter (matching grams cannot be
displaced by more than ``U`` positions), an inverted q-gram index yields a
candidate set verified with the banded DP.

The index runs on the shared candidate pipeline
(:mod:`repro.candidates`), with the *position filter folded into the
signature*: the interned signature is the positional pair
``(gram, position)``, and a probe gram at position ``p`` looks up only
the ``2U + 1`` signatures ``(gram, p - U) ... (gram, p + U)``.  Skewed
grams (the common bigrams of a name corpus) thus never iterate postings
that the position filter would discard -- the pre-overhaul
``dict[str, list[(id, pos)]]`` scanned every posting of the gram and
tested ``abs(pos - p) <= U`` per hit.  The count/length filters report
into the canonical counters, and survivors are verified in one batched
:func:`repro.accel.verify_pairs` call.

Included as an ablation baseline for the token-join stage -- PassJoin's
segment signatures generate far fewer candidates on short tokens, which
is why MassJoin builds on PassJoin (Sec. IV).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_LENGTH,
    PostingsIndex,
    new_counters,
    unordered,
    verify_ld_pairs,
)

#: Sentinel used to pad string ends; must not occur in real data.
PAD = "\x01"


def positional_qgrams(s: str, q: int) -> list[tuple[int, str]]:
    """The padded positional q-grams of ``s``.

    Examples
    --------
    >>> positional_qgrams("ab", 2)
    [(0, '\\x01a'), (1, 'ab'), (2, 'b\\x01')]
    """
    if q < 1:
        raise ValueError("q must be positive")
    padded = PAD * (q - 1) + s + PAD * (q - 1)
    return [(i, padded[i : i + q]) for i in range(len(s) + q - 1)]


def qgram_ld_candidates(
    strings: Sequence[str],
    threshold: int,
    q: int = 2,
    counters: dict[str, int] | None = None,
) -> list[tuple[int, int]]:
    """The candidate pairs surviving the q-gram filter cascade.

    Exposed separately from :func:`qgram_ld_self_join` for the
    candidate-pipeline bench and the reference-equivalence tests.
    """
    if threshold < 0:
        raise ValueError("edit-distance threshold must be non-negative")
    if q < 1:
        raise ValueError("q must be positive")
    if counters is None:
        counters = new_counters()

    # Strings with too few grams for the count filter to bite.
    always_candidates: list[int] = []
    index = PostingsIndex()  # (gram, position) -> record-id postings
    lookup = index.lookup_ref()
    postings_columns = index.postings
    candidates: list[tuple[int, int]] = []

    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    for identifier in order:
        s = strings[identifier]
        required = len(s) + q - 1 - threshold * q
        # ---- probe -----------------------------------------------------------
        overlap: dict[int, int] = defaultdict(int)
        for position, gram in positional_qgrams(s, q):
            # Positional signatures: only postings already within the
            # position filter's displacement window are touched.
            for indexed_position in range(
                max(0, position - threshold), position + threshold + 1
            ):
                sig_id = lookup((gram, indexed_position))
                if sig_id is None:
                    continue
                for other in postings_columns[sig_id]:
                    overlap[other] += 1
        found = set(always_candidates)
        counters[COUNTER_CANDIDATES] += len(overlap) + len(always_candidates)
        for other, count in overlap.items():
            other_length = len(strings[other])
            if len(s) - other_length > threshold:
                counters[COUNTER_PRUNED_LENGTH] += 1
                continue  # length filter (indexed strings are shorter)
            needed = max(len(s), other_length) + q - 1 - threshold * q
            if count >= needed or needed <= 0:
                found.add(other)
            else:
                counters[COUNTER_PRUNED_COUNT] += 1
        for other in found:
            if other == identifier:
                continue
            if len(s) - len(strings[other]) > threshold:
                counters[COUNTER_PRUNED_LENGTH] += 1
                continue
            candidates.append((other, identifier))
        # ---- index -----------------------------------------------------------
        if required <= 0:
            always_candidates.append(identifier)
        else:
            for position, gram in positional_qgrams(s, q):
                index.add((gram, position), identifier)
    return candidates


def qgram_ld_self_join(
    strings: Sequence[str],
    threshold: int,
    q: int = 2,
    backend: str = "auto",
    counters: dict[str, int] | None = None,
) -> set[tuple[int, int]]:
    """All index pairs with ``LD <= threshold`` via q-gram filtering.

    Exact: the count filter is a necessary condition, and survivors are
    verified with the thresholded kernel (batched, backend-selectable).
    Strings shorter than the count filter's reach
    (``|s| + q - 1 <= threshold * q``) match the filter vacuously and are
    compared within the length window directly.

    Examples
    --------
    >>> sorted(qgram_ld_self_join(["chan", "chank", "kalan"], 1))
    [(0, 1)]
    """
    if counters is None:
        counters = new_counters()
    candidates = qgram_ld_candidates(strings, threshold, q, counters)
    distances = verify_ld_pairs(
        candidates, strings, threshold, backend=backend, counters=counters
    )
    return {
        unordered(*pair)
        for pair, distance in zip(candidates, distances)
        if distance is not None
    }
