"""Q-gram based edit-distance join (Gravano et al., VLDB 2001).

The gram-based family the paper's related work surveys ([25], [26]): a
string of length ``n`` has ``n + q - 1`` positional q-grams when padded
with ``q - 1`` sentinel characters on both sides, and one edit operation
destroys at most ``q`` of them.  Hence two strings within edit distance
``U`` share at least

    ``max(|x|, |y|) + q - 1 - U * q``

padded q-grams (the *count filter*).  Combined with the length filter
(``abs(|x| - |y|) <= U``) and a position filter (matching grams cannot be
displaced by more than ``U`` positions), an inverted q-gram index yields a
candidate set verified with the banded DP.

Included as an ablation baseline for the token-join stage -- PassJoin's
segment signatures generate far fewer candidates on short tokens, which
is why MassJoin builds on PassJoin (Sec. IV).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.distances import levenshtein_within

#: Sentinel used to pad string ends; must not occur in real data.
PAD = ""


def positional_qgrams(s: str, q: int) -> list[tuple[int, str]]:
    """The padded positional q-grams of ``s``.

    Examples
    --------
    >>> positional_qgrams("ab", 2)
    [(0, '\\x01a'), (1, 'ab'), (2, 'b\\x01')]
    """
    if q < 1:
        raise ValueError("q must be positive")
    padded = PAD * (q - 1) + s + PAD * (q - 1)
    return [(i, padded[i : i + q]) for i in range(len(s) + q - 1)]


def qgram_ld_self_join(
    strings: Sequence[str], threshold: int, q: int = 2
) -> set[tuple[int, int]]:
    """All index pairs with ``LD <= threshold`` via q-gram filtering.

    Exact: the count filter is a necessary condition, and survivors are
    verified with the thresholded DP.  Strings shorter than the count
    filter's reach (``|s| + q - 1 <= threshold * q``) match the filter
    vacuously and are compared within the length window directly.

    Examples
    --------
    >>> sorted(qgram_ld_self_join(["chan", "chank", "kalan"], 1))
    [(0, 1)]
    """
    if threshold < 0:
        raise ValueError("edit-distance threshold must be non-negative")
    if q < 1:
        raise ValueError("q must be positive")

    # Strings with too few grams for the count filter to bite.
    always_candidates: list[int] = []
    index: dict[str, list[tuple[int, int]]] = defaultdict(list)  # gram -> [(id, pos)]
    results: set[tuple[int, int]] = set()

    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    for identifier in order:
        s = strings[identifier]
        required = len(s) + q - 1 - threshold * q
        # ---- probe -----------------------------------------------------------
        overlap: dict[int, int] = defaultdict(int)
        for position, gram in positional_qgrams(s, q):
            for other, other_position in index.get(gram, ()):
                if abs(position - other_position) <= threshold:
                    overlap[other] += 1
        candidates = set(always_candidates)
        for other, count in overlap.items():
            other_length = len(strings[other])
            if len(s) - other_length > threshold:
                continue  # length filter (indexed strings are shorter)
            needed = max(len(s), other_length) + q - 1 - threshold * q
            if count >= needed or needed <= 0:
                candidates.add(other)
        for other in candidates:
            if other == identifier:
                continue
            if len(s) - len(strings[other]) > threshold:
                continue
            if levenshtein_within(strings[other], s, threshold) is not None:
                results.add(tuple(sorted((other, identifier))))
        # ---- index -----------------------------------------------------------
        if required <= 0:
            always_candidates.append(identifier)
        else:
            for position, gram in positional_qgrams(s, q):
                index[gram].append((identifier, position))
    return results
