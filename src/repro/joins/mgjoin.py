"""MGJoin-style multi-global-ordering prefix join (Rong et al., TKDE 2013).

The set-based tokenized-string join the paper's related work opens with
(Sec. IV): prefix filtering "very similar to [Vernica et al.] but employs
multiple global orders of the tokens".  The prefix-filter principle holds
under *any* total token order, so a pair whose Jaccard similarity reaches
the threshold must have intersecting prefixes under **every** order;
requiring agreement across several orders multiplies the filters'
selectivity at the cost of extra prefix computations.

Like all crisp set joins it handles token shuffles but not token edits
(the gap NSLD fills).  Included as a related-work baseline.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Sequence

from repro.candidates import (
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_LENGTH,
    COUNTER_VERIFIED,
    CandidateBuffer,
    FilterCascade,
    PostingsIndex,
    new_counters,
    unordered,
)


def _jaccard(x: frozenset[str], y: frozenset[str]) -> float:
    if not x and not y:
        return 1.0
    intersection = len(x & y)
    return intersection / (len(x) + len(y) - intersection)


def mgjoin_jaccard_self_join(
    records: Sequence[Sequence[str]],
    threshold: float,
    n_orders: int = 3,
    seed: int = 0,
    counters: dict[str, int] | None = None,
) -> set[tuple[int, int]]:
    """All index pairs with set-Jaccard ``>= threshold``, multi-order
    prefix filtering.

    Order 0 is the classic ascending-document-frequency order (rare
    first) and drives the inverted index; the remaining ``n_orders - 1``
    are random permutations (seeded) used as secondary prefix-agreement
    filters before verification.

    Examples
    --------
    >>> sorted(mgjoin_jaccard_self_join(
    ...     [["ann", "lee"], ["ann", "lee"], ["bob"]], 1.0))
    [(0, 1)]
    """
    if not 0 < threshold <= 1:
        raise ValueError("Jaccard threshold must be in (0, 1]")
    if n_orders < 1:
        raise ValueError("need at least one global order")
    if counters is None:
        counters = new_counters()

    token_sets = [frozenset(record) for record in records]
    vocabulary = sorted({token for tokens in token_sets for token in tokens})
    frequency = Counter(token for tokens in token_sets for token in tokens)

    # Order 0: rare-first; orders 1..n-1: seeded random permutations.
    rank_maps: list[dict[str, int]] = []
    primary = sorted(vocabulary, key=lambda token: (frequency[token], token))
    rank_maps.append({token: rank for rank, token in enumerate(primary)})
    rng = random.Random(seed)
    for _ in range(n_orders - 1):
        permuted = vocabulary[:]
        rng.shuffle(permuted)
        rank_maps.append({token: rank for rank, token in enumerate(permuted)})

    def prefix(tokens: frozenset[str], rank_map: dict[str, int]) -> frozenset[str]:
        size = len(tokens)
        prefix_length = size - math.ceil(threshold * size) + 1
        ordered = sorted(tokens, key=rank_map.__getitem__)
        return frozenset(ordered[:prefix_length])

    prefixes = [
        [prefix(tokens, rank_map) if tokens else frozenset() for tokens in token_sets]
        for rank_map in rank_maps
    ]

    order = sorted(range(len(records)), key=lambda i: (len(token_sets[i]), i))
    index = PostingsIndex()  # order-0 prefix token -> record ids
    buffer = CandidateBuffer(len(records))
    results: set[tuple[int, int]] = set()
    for identifier in order:
        tokens = token_sets[identifier]
        if not tokens:
            continue
        min_partner = math.ceil(threshold * len(tokens))
        # ---- probe with order 0 ------------------------------------------------
        for token in prefixes[0][identifier]:
            postings = index.get(token)
            if postings:
                buffer.add_all(postings)
        # The probe's filter chain as a shared-subsystem cascade: the
        # length filter first (one comparison), the multi-order prefix
        # agreement second (n-1 set intersections), short-circuited.
        probe_prefixes = [prefixes[g][identifier] for g in range(n_orders)]
        cascade = FilterCascade(
            (
                COUNTER_PRUNED_LENGTH,
                lambda other: len(token_sets[other]) >= min_partner,
            ),
            (
                COUNTER_PRUNED_COUNT,
                lambda other: all(
                    probe_prefixes[g] & prefixes[g][other]
                    for g in range(1, n_orders)
                ),
            ),
            counters=counters,
        )
        for other in cascade.admitted(buffer.drain()):
            counters[COUNTER_VERIFIED] += 1
            if _jaccard(tokens, token_sets[other]) >= threshold:
                results.add(unordered(identifier, other))
        # ---- index the order-0 prefix -------------------------------------------
        for token in prefixes[0][identifier]:
            index.add(token, identifier)
    return results
