"""String-join algorithms: TSJ's building blocks and baselines.

* :mod:`repro.joins.naive` -- brute-force LD/NLD/NSLD joins; the ground
  truth oracles every other algorithm is tested against.
* :mod:`repro.joins.passjoin` -- Pass-Join (Li et al., VLDB 2011): serial
  partition-based LD-join, plus the NLD adaptation via Lemmas 8/9.
* :mod:`repro.joins.passjoin_k` -- PassJoinK (Lin et al., DASFAA 2014):
  requires K matching signatures instead of one.
* :mod:`repro.joins.massjoin` -- MassJoin (Deng et al., ICDE 2014): the
  MapReduce-distributed PassJoin that TSJ employs for its token NLD-join
  (Sec. III-D).
* :mod:`repro.joins.prefix_filter` -- AllPairs/PPJoin-style prefix-filtered
  set-similarity join (the MGJoin/Vernica family's core, Sec. IV).
* :mod:`repro.joins.vernica` -- Vernica, Carey & Li (SIGMOD 2010) MapReduce
  set-similarity join.

Every algorithm here is also a registered ``JoinSpec.algorithm`` choice
of the declarative front door (:mod:`repro.api.registry`), with its
native signature and result shape normalised into the uniform
:class:`repro.ResultSet` envelope.
"""

from repro.joins.massjoin import MassJoin
from repro.joins.mgjoin import mgjoin_jaccard_self_join
from repro.joins.naive import (
    naive_ld_join,
    naive_ld_self_join,
    naive_nld_join,
    naive_nld_self_join,
    naive_nsld_join,
    naive_nsld_self_join,
)
from repro.joins.passjoin import PassJoin, even_partition, passjoin_nld_self_join
from repro.joins.passjoin_k import PassJoinK
from repro.joins.passjoin_kmr import PassJoinKMR
from repro.joins.prefix_filter import prefix_filter_jaccard_self_join
from repro.joins.qgram import qgram_ld_self_join
from repro.joins.vernica import VernicaJoin

__all__ = [
    "naive_ld_join",
    "naive_ld_self_join",
    "naive_nld_join",
    "naive_nld_self_join",
    "naive_nsld_self_join",
    "naive_nsld_join",
    "PassJoin",
    "PassJoinK",
    "even_partition",
    "passjoin_nld_self_join",
    "MassJoin",
    "PassJoinKMR",
    "prefix_filter_jaccard_self_join",
    "mgjoin_jaccard_self_join",
    "qgram_ld_self_join",
    "VernicaJoin",
]
