"""The network front door: ``repro.server`` speaks the ResultSet wire format.

The engine meets a socket here.  One process-wide
:class:`repro.api.Session` (resident corpora, built-once indexes, LRU
result caches) serves HTTP requests carrying the exact JSON wire format
the declarative front door already defined (PR 5): POST a spec, get the
:class:`repro.api.ResultSet` envelope back.  Stdlib only --
:class:`http.server.ThreadingHTTPServer` plus the facade; no new hard
dependencies.

Endpoints (all JSON, all answers carry the wire ``"version"`` tag):

========================  =====================================================
``POST /v1/join``         a :class:`~repro.api.JoinSpec` payload (``"type"``
                          optional, must be ``"join"`` when present)
``POST /v1/search``       a ``topk`` or ``within`` spec (default ``topk``)
``POST /v1/knn``          a ``topk`` spec defaulting to ``method="vptree"``
                          (the CLI ``knn`` shape)
``POST /v1/run``          any spec with an explicit ``"type"`` tag -- the
                          fully declarative endpoint
``POST /v1/append``       ``{"names": [...], "base": <int, optional>}`` --
                          grow the durable corpus; with a ``--store``
                          directory the append is write-ahead logged and
                          fsynced before memory mutates, so it survives a
                          crash/restart.  ``base`` (the record count the
                          client last saw) makes the append idempotent
                          under retries: an exact replay of an
                          acknowledged append is a no-op
``GET  /v1/health``       liveness (unauthenticated): status, uptime, version
``GET  /v1/metrics``      request counts per route/status, the latency
                          histogram, and the session's resident-corpus and
                          result-cache gauges
========================  =====================================================

Failures -- malformed JSON, unknown spec types/fields/versions, bad
parameter shapes, missing auth, unknown routes -- answer with the
uniform error envelope ``{"error": {"type", "message"}}`` and the
:class:`repro.api.errors.ApiError` status; unexpected exceptions
become enveloped 500s, never tracebacks on the wire.

Overload has an answer (PR 8): an :class:`AdmissionGate` bounds the
POST routes' in-flight requests (``max_inflight``) and the queue of
requests waiting for a slot (``max_queue``); overflow is **shed** with
the uniform 503 ``overloaded`` envelope plus a ``Retry-After`` header,
which :class:`repro.client.ServiceClient` honors before retrying.  A
spec's ``deadline_ms`` expires as a 504 ``deadline_exceeded`` envelope.
``/v1/metrics`` surfaces the gate (inflight gauge, shed counts) and the
runtime's crash-recovery counters; ``/v1/health`` reports degraded
modes (pool rebuilt / in-process fallback / durable store rebuilt from
corpus) without ever shedding -- probes must always answer.  With a
durable store (``serve(store_dir=...)`` / CLI ``--store``), health also
carries a ``store`` block (``{loaded, wal_records, last_compaction}``)
and ``/v1/metrics`` the full ``store.status()`` (WAL records, last
compaction, torn-tail truncation, rebuilds).  When serving sharded
(``serve(shards=N)`` / CLI ``--shards``), both carry a ``shards`` block:
per-shard sizes, the placement, and the router's
``shards_probed``/``shards_pruned`` tallies.

Auth is a static bearer token (``Authorization: Bearer <token>``),
compared constant-time; ``token=None`` disables auth.  ``/v1/health``
is always open so load balancers can probe without credentials.

The transport-free request logic lives in :class:`SimilarityService`
(``handle(method, path, body, authorization) -> (status, payload)``), so
tests can exercise routing/auth/errors without sockets and an asyncio
transport can reuse it unchanged; :class:`ReproServer` is the threaded
socket front end (``start()``/``close()`` for in-process embedding,
``serve_forever()`` for the CLI ``serve`` subcommand).
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.errors import (
    WIRE_VERSION,
    ApiError,
    AuthError,
    MethodNotAllowedError,
    NotFoundError,
    OverloadedError,
    ValidationError,
    error_envelope,
    take_wire_version,
)
from repro.api.session import Session
from repro.api.specs import spec_from_json
from repro.faults import fault_point
from repro.runtime.pool import runtime_counters

__all__ = [
    "AdmissionGate",
    "LATENCY_BUCKETS_MS",
    "ReproServer",
    "ServiceMetrics",
    "SimilarityService",
    "serve",
]

#: Upper bounds (milliseconds) of the latency histogram buckets; one
#: overflow bucket (``"+inf"``) catches everything beyond the last bound.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


class ServiceMetrics:
    """Thread-safe request counters and one latency histogram.

    ``observe()`` is called once per handled request (any status, any
    route -- unknown routes included, they cost cycles too);
    ``snapshot()`` renders the JSON the ``/v1/metrics`` endpoint
    answers with.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        #: route -> {str(status): count}
        self._requests: dict[str, dict[str, int]] = {}
        self._bucket_counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self._latency_sum = 0.0
        self._observations = 0

    def observe(self, route: str, status: int, seconds: float) -> None:
        millis = seconds * 1000.0
        slot = len(LATENCY_BUCKETS_MS)
        for position, bound in enumerate(LATENCY_BUCKETS_MS):
            if millis <= bound:
                slot = position
                break
        with self._lock:
            by_status = self._requests.setdefault(route, {})
            key = str(status)
            by_status[key] = by_status.get(key, 0) + 1
            self._bucket_counts[slot] += 1
            self._latency_sum += millis
            self._observations += 1

    def snapshot(self) -> dict:
        with self._lock:
            requests = {
                route: dict(by_status) for route, by_status in self._requests.items()
            }
            buckets = dict(
                zip(
                    [f"<={bound:g}ms" for bound in LATENCY_BUCKETS_MS] + ["+inf"],
                    self._bucket_counts,
                )
            )
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "requests_total": sum(
                    count
                    for by_status in requests.values()
                    for count in by_status.values()
                ),
                "requests": requests,
                "latency_ms": {
                    "count": self._observations,
                    "sum": self._latency_sum,
                    "buckets": buckets,
                },
            }


class AdmissionGate:
    """Bounded admission for the POST routes: shed instead of queue forever.

    ``max_inflight`` bounds requests executing concurrently;
    ``max_queue`` bounds requests *waiting* for an execution slot.  A
    request arriving past both bounds is shed immediately with the
    typed :class:`~repro.api.errors.OverloadedError` (HTTP 503 +
    ``Retry-After``) -- under sustained overload a bounded queue and a
    fast 503 beat an unbounded backlog of requests whose callers have
    long given up.  ``max_inflight=None`` disables the gate (the
    embedded/test default; the CLI ``serve`` subcommand exposes
    ``--max-inflight``/``--max-queue``).
    """

    def __init__(
        self, max_inflight: int | None = None, max_queue: int = 8
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValidationError("max_inflight must be positive (or None)")
        if max_queue < 0:
            raise ValidationError("max_queue must be non-negative")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._shed_total = 0

    @contextmanager
    def admit(self, retry_after: float = 1.0):
        """Hold one execution slot for the block, or shed with a 503."""
        if self.max_inflight is None:
            yield
            return
        with self._cond:
            if (
                self._inflight >= self.max_inflight
                and self._queued >= self.max_queue
            ):
                self._shed_total += 1
                raise OverloadedError(
                    f"server is at capacity ({self._inflight} in flight, "
                    f"{self._queued} queued); retry later",
                    retry_after=retry_after,
                )
            self._queued += 1
            try:
                while self._inflight >= self.max_inflight:
                    self._cond.wait()
            finally:
                self._queued -= 1
            self._inflight += 1
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify()

    def stats(self) -> dict:
        """The gauges ``/v1/metrics`` reports for the gate."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "queued": self._queued,
                "shed_total": self._shed_total,
            }


#: POST route -> (accepted ``"type"`` tags, defaults injected into the
#: payload).  ``/v1/run`` accepts every tag but requires one explicitly.
_POST_ROUTES: dict[str, tuple[tuple[str, ...], dict]] = {
    "/v1/join": (("join",), {}),
    "/v1/search": (("topk", "within"), {}),
    "/v1/knn": (("topk",), {"method": "vptree"}),
    "/v1/run": ((), {}),
}

_GET_ROUTES = ("/v1/health", "/v1/metrics")


class SimilarityService:
    """Transport-free request handling over one process-wide session.

    ``handle()`` maps ``(method, path, body, authorization)`` to
    ``(status, JSON-able payload)`` and never raises: every failure --
    typed or unexpected -- lands in the uniform error envelope.  The
    session is shared across requests (that is the point: resident
    corpora and caches amortize), so ``Session.run`` executes under a
    lock; metrics are updated for every request, including rejected
    ones.
    """

    def __init__(
        self,
        session: Session | None = None,
        *,
        token: str | None = None,
        max_inflight: int | None = None,
        max_queue: int = 8,
    ) -> None:
        self.session = session if session is not None else Session()
        self.token = token
        self.metrics = ServiceMetrics()
        self.gate = AdmissionGate(max_inflight, max_queue)
        self._run_lock = threading.Lock()

    # -- request plumbing -------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        authorization: str | None = None,
    ) -> tuple[int, dict]:
        """Route one request; returns ``(http status, response payload)``."""
        route = path.split("?", 1)[0].rstrip("/") or "/"
        start = time.perf_counter()
        try:
            payload = self._dispatch(method, route, body, authorization)
            status = 200
        except ApiError as exc:
            status, payload = exc.status, exc.to_envelope()
        except Exception as exc:  # noqa: BLE001 -- envelope, never a traceback
            status, payload = 500, error_envelope(exc)
        self.metrics.observe(route, status, time.perf_counter() - start)
        return status, payload

    def _dispatch(self, method, route, body, authorization) -> dict:
        if route in _POST_ROUTES:
            if method != "POST":
                raise MethodNotAllowedError(f"{route} accepts POST only")
            self._authorize(authorization)
            return self._run_spec(route, body)
        if route == "/v1/append":
            if method != "POST":
                raise MethodNotAllowedError(f"{route} accepts POST only")
            self._authorize(authorization)
            return self._append(body)
        if route in _GET_ROUTES:
            if method != "GET":
                raise MethodNotAllowedError(f"{route} accepts GET only")
            if route == "/v1/health":
                return self._health()
            self._authorize(authorization)
            return self._metrics()
        known = ", ".join(
            sorted([*_POST_ROUTES, "/v1/append"]) + list(_GET_ROUTES)
        )
        raise NotFoundError(f"no route {route!r}; choose from [{known}]")

    def _authorize(self, authorization: str | None) -> None:
        if self.token is None:
            return
        expected = f"Bearer {self.token}"
        if not authorization or not hmac.compare_digest(authorization, expected):
            raise AuthError("missing or invalid bearer token")

    # -- endpoints --------------------------------------------------------------

    def _run_spec(self, route: str, body: bytes | None) -> dict:
        spec = self._parse_spec(route, body)
        with self.gate.admit(retry_after=self._retry_after()):
            fault_point("server.run")
            with self._run_lock:
                result = self.session.run(spec)
        return result.to_dict()

    def _append(self, body: bytes | None) -> dict:
        """``POST /v1/append``: grow the session's durable corpus.

        With a store-backed session the record is WAL-logged and fsynced
        before memory mutates -- a 200 answer means the append survives
        a crash.  Admission-gated and serialized like every other
        mutating route.
        """
        if not body:
            raise ValidationError(
                'request body is empty; POST {"names": [...]}'
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError(
                'request body must be a JSON object: {"names": [...]}'
            )
        take_wire_version(payload, "append request")
        names = payload.pop("names", None)
        base = payload.pop("base", None)
        if payload:
            raise ValidationError(
                f"unknown append field(s) {sorted(payload)}; "
                'the fields are "names" and optionally "base"'
            )
        if not isinstance(names, list) or not all(
            isinstance(name, str) for name in names
        ):
            raise ValidationError('"names" must be a list of strings')
        if base is not None and (not isinstance(base, int) or base < 0):
            raise ValidationError('"base" must be a non-negative integer')
        with self.gate.admit(retry_after=self._retry_after()):
            fault_point("server.run")
            with self._run_lock:
                total = self.session.append(names, base=base)
        return {
            "version": WIRE_VERSION,
            "records": total,
            "appended": len(names),
        }

    def _retry_after(self) -> float:
        """The ``Retry-After`` hint for shed requests: the observed mean
        request latency, clamped to [0.1s, 5s] (1s before any data)."""
        latency = self.metrics.snapshot()["latency_ms"]
        if not latency["count"]:
            return 1.0
        mean_seconds = latency["sum"] / latency["count"] / 1000.0
        return min(5.0, max(0.1, mean_seconds))

    def _parse_spec(self, route: str, body: bytes | None):
        if not body:
            raise ValidationError("request body is empty; POST a JSON spec")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError(
                "request body must be a JSON object (a spec), got "
                f"{type(payload).__name__}"
            )
        accepted, defaults = _POST_ROUTES[route]
        if accepted:
            payload.setdefault("type", accepted[0])
            if payload["type"] not in accepted:
                listed = ", ".join(repr(tag) for tag in accepted)
                raise ValidationError(
                    f"{route} serves [{listed}] specs, got "
                    f"{payload['type']!r}; POST it to /v1/run instead"
                )
            for key, value in defaults.items():
                payload.setdefault(key, value)
        elif "type" not in payload:
            raise ValidationError(
                '/v1/run requires an explicit "type" tag '
                '("join", "topk", "within" or "compare")'
            )
        try:
            return spec_from_json(payload)
        except ApiError:
            raise
        except (TypeError, ValueError) as exc:
            # Bad field shapes (e.g. a scalar where a list belongs) are
            # the client's fault: a 400, not an internal error.
            raise ValidationError(f"invalid spec: {exc}") from exc

    def _health(self) -> dict:
        counters = runtime_counters()
        degraded = {
            # The pool broke and was replaced at least once (recovered).
            "pool_rebuilt": counters["pool_rebuilds"] > 0,
            # Retries ran out; work fell back to in-process execution.
            "pool_fallback_in_process": counters["pool_degraded"] > 0,
            # A durable index failed validation and was rebuilt from the
            # boot corpus (appends that lived only in the store are gone).
            "store_rebuilt": counters["store_rebuilds"] > 0,
        }
        payload = {
            "status": "degraded" if any(degraded.values()) else "ok",
            "version": WIRE_VERSION,
            "uptime_seconds": self.metrics.snapshot()["uptime_seconds"],
            "degraded": degraded,
        }
        store = self.session.store_status()
        if store is not None:
            payload["store"] = {
                "loaded": store["loaded"],
                "wal_records": store["wal_records"],
                "last_compaction": store["last_compaction"],
            }
        shards = self.session.shard_status()
        if shards is not None:
            payload["shards"] = shards
        return payload

    def _metrics(self) -> dict:
        payload = self.metrics.snapshot()
        payload["version"] = WIRE_VERSION
        payload["session"] = self.session.stats()
        payload["admission"] = self.gate.stats()
        payload["runtime"] = runtime_counters()
        store = self.session.store_status()
        if store is not None:
            payload["store"] = store  # the full status(), health shows a subset
        shards = self.session.shard_status()
        if shards is not None:
            payload["shards"] = shards
        return payload


class _Handler(BaseHTTPRequestHandler):
    """The socket-facing shim: bytes in, ``SimilarityService`` out."""

    protocol_version = "HTTP/1.1"  # keep-alive: one connection, many requests
    server_version = f"repro-server/{WIRE_VERSION}"

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        pass  # request logging is the metrics endpoint's job

    def do_GET(self) -> None:
        self._respond(*self.server.service.handle("GET", self.path, None, self._auth()))

    def do_POST(self) -> None:
        try:
            body = self._read_body()
        except ValidationError as exc:
            self._respond(exc.status, exc.to_envelope())
            return
        self._respond(
            *self.server.service.handle("POST", self.path, body, self._auth())
        )

    def _auth(self) -> str | None:
        return self.headers.get("Authorization")

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            return b""
        try:
            size = int(length)
        except ValueError:
            raise ValidationError(f"invalid Content-Length {length!r}") from None
        return self.rfile.read(size)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        # A shed request's envelope carries the retry hint; surface it
        # as the standard header too so plain HTTP clients see it.
        error = payload.get("error")
        if isinstance(error, dict) and "retry_after" in error:
            self.send_header("Retry-After", f"{error['retry_after']:g}")
        self.end_headers()
        self.wfile.write(data)


class ReproServer:
    """The threaded HTTP front end around one :class:`SimilarityService`.

    ``port=0`` binds an ephemeral port (the resolved one is in
    :attr:`port`/:attr:`url`).  ``start()`` serves from a daemon thread
    for in-process embedding (tests, benches, examples);
    ``serve_forever()`` blocks (the CLI).  Context-manager use closes
    the socket on exit.

    Examples
    --------
    ::

        with ReproServer(session=Session(names), token="s3cret") as server:
            client = ServiceClient(server.url, token="s3cret")
            result = client.search(["jon smiht"], k=3)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        session: Session | None = None,
        token: str | None = None,
        max_inflight: int | None = None,
        max_queue: int = 8,
    ) -> None:
        self.service = SimilarityService(
            session, token=token, max_inflight=max_inflight, max_queue=max_queue
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service
        self._thread: threading.Thread | None = None
        self._started = False
        self._closed = False
        self._close_lock = threading.Lock()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve from a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-server",
                daemon=True,
            )
            self._started = True
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._started = True
        self._httpd.serve_forever()

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop serving and release the listening socket.

        Idempotent under concurrent callers: exactly one caller performs
        the teardown, the rest return immediately.  The listening socket
        is force-closed even when the serving thread is wedged; a thread
        still alive after ``join_timeout`` raises a clear
        :class:`RuntimeError` instead of silently leaking a zombie
        (in-flight handler threads are daemonic and die with the
        process, but a wedged *serving* thread must be loud).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._started:
            # shutdown() waits on serve_forever()'s exit handshake and
            # would block forever on a server that never served.
            self._httpd.shutdown()
        # Always release the port, even when the thread is stuck: a
        # leaked listening socket blocks rebinding far longer than a
        # leaked thread lives.
        self._httpd.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                raise RuntimeError(
                    f"repro-server thread did not exit within "
                    f"{join_timeout:g}s; the listening socket was closed "
                    "but the serving thread is leaked (daemonic, dies "
                    "with the process)"
                )

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    names=None,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    token: str | None = None,
    backend: str = "auto",
    engine: str = "auto",
    cache_size: int = 256,
    max_inflight: int | None = None,
    max_queue: int = 8,
    shards: int = 1,
    placement: str = "length",
    store_dir: str | None = None,
) -> ReproServer:
    """Build a server around a fresh session (not yet started).

    ``names`` preloads the session's default corpus, so specs without
    inline ``names`` run against it -- the resident-serving shape the
    benches and the CLI ``serve`` subcommand use.  ``max_inflight`` /
    ``max_queue`` bound the admission gate (``None`` = no shedding).
    ``store_dir`` makes the session durable: boot warm-restarts from
    the snapshot + WAL (degrading to a rebuild from ``names`` when
    damaged) and ``/v1/append`` survives crashes.  ``shards > 1``
    serves every resident corpus through an N-shard
    :class:`repro.shard.ShardedIndex` (same results and counters by
    contract; per-shard persistence when combined with ``store_dir``).
    """
    session = Session(
        names,
        backend=backend,
        engine=engine,
        cache_size=cache_size,
        shards=shards,
        placement=placement,
        store_dir=store_dir,
    )
    return ReproServer(
        host,
        port,
        session=session,
        token=token,
        max_inflight=max_inflight,
        max_queue=max_queue,
    )
