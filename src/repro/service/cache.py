"""The serving layer's bounded LRU result cache (re-exported).

The serving layer answers a skewed query stream: the same joins, top-k
batches and range probes recur endlessly once an index is resident, so
the second identical request should cost a dict probe, not a pipeline
run.  The cache class itself lives with the other cache primitives in
:mod:`repro.accel.vocab` (next to :class:`~repro.accel.vocab.BoundedCache`),
keeping low-level packages such as :mod:`repro.knn` free of serving-layer
imports; this module is the serving-facing name for it.

:data:`COUNTER_CACHE_HITS` / :data:`COUNTER_CACHE_MISSES` are the
canonical counter names under which
:class:`repro.service.SimilarityIndex` surfaces cache effectiveness next
to the candidate-pipeline cascade counters.
"""

from __future__ import annotations

from repro.accel.vocab import (
    COUNTER_CACHE_HITS,
    COUNTER_CACHE_MISSES,
    LRUCache,
)

__all__ = ["COUNTER_CACHE_HITS", "COUNTER_CACHE_MISSES", "LRUCache"]
