"""Pool-shared snapshots: serve batched probes without re-shipping state.

The PR 2 worker pool (:mod:`repro.runtime.pool`) originally received
every byte of state *per task*: ``verify_pairs`` ships the string pairs
of each chunk, the parallel engine ships whole job shards.  For a
resident :class:`repro.service.SimilarityIndex` that would mean
re-pickling the tokenized collection, the interned vocab and the
postings for every batch of queries -- exactly the build cost the
serving layer exists to amortize.

This module publishes a snapshot to the pool **once** instead:

* the parent registers the snapshot in a process-global registry and as
  a worker initializer (:func:`repro.runtime.pool.register_worker_initializer`);
* on **fork** platforms workers inherit the registry copy-on-write --
  zero pickling, the snapshot's interned tables and precomputed Myers
  masks arrive for free;
* on **spawn/forkserver** platforms the initializer arguments are
  pickled to each worker exactly once at pool start-up -- the explicit
  broadcast fallback (cost: one snapshot pickle per worker, not per
  task);
* serve tasks then ship only ``(token, queries, kwargs)`` -- the
  snapshot never travels again, and results (plus the workers' counter
  deltas, so observability survives the fan-out) come back positionally
  aligned with the query batch.

Results are byte-identical to in-process serving: a serve task is a
pure function of the published snapshot and the query batch
(property-tested in ``tests/service/test_sharing.py``).
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Sequence

from repro.faults import fault_point
from repro.runtime.pool import (
    in_worker_process,
    register_worker_initializer,
    resilient_pool_map,
    unregister_worker_initializer,
)

#: Per-process snapshot registry: publish token -> SimilarityIndex.  In
#: the parent it holds every published snapshot; in workers it is filled
#: by fork inheritance or the initializer broadcast.
_SNAPSHOTS: dict[str, Any] = {}

#: Parent-side bookkeeping: index ``share_key`` -> its live token, so a
#: re-publication (after ``append``) replaces the previous registry
#: entry instead of accumulating one per version.
_TOKENS_BY_KEY: dict[str, str] = {}

_SEQUENCE = itertools.count()


def publish_snapshot(index) -> str:
    """Make ``index`` resolvable in every shared-pool worker; return its token.

    Safe to call repeatedly: each call mints a fresh token (the serving
    layer re-publishes after :meth:`SimilarityIndex.append`), and the
    per-index key makes the newest publication *replace* the previous
    one -- in the parent registry and in the pool's start-up payload --
    instead of accumulating stale versions.  A publication pins the
    snapshot for the process lifetime; call :func:`unpublish_snapshot`
    (or :meth:`SimilarityIndex.unpublish`) before discarding an index a
    long-lived server no longer serves.
    """
    token = f"simindex-{os.getpid()}-{next(_SEQUENCE)}"
    previous = _TOKENS_BY_KEY.get(index.share_key)
    if previous is not None:
        _SNAPSHOTS.pop(previous, None)
    _TOKENS_BY_KEY[index.share_key] = token
    _SNAPSHOTS[token] = index
    register_worker_initializer(
        f"repro.service.sharing:{index.share_key}",
        _install_snapshot,
        (token, index),
    )
    return token


def unpublish_snapshot(index) -> None:
    """Withdraw a snapshot's publication, freeing the held payload.

    Removes the parent registry entry and the pool initializer carrying
    the snapshot (future pools stop receiving it); live pool workers
    keep their copy until the next pool rebuild.  No-op when the index
    was never published.
    """
    token = _TOKENS_BY_KEY.pop(index.share_key, None)
    if token is not None:
        _SNAPSHOTS.pop(token, None)
    unregister_worker_initializer(f"repro.service.sharing:{index.share_key}")


def _install_snapshot(token: str, index) -> None:
    """Worker initializer: register the broadcast snapshot locally."""
    _SNAPSHOTS[token] = index


def resolve_snapshot(token: str):
    """The snapshot behind ``token`` in this process (workers included)."""
    try:
        return _SNAPSHOTS[token]
    except KeyError:
        raise RuntimeError(
            f"snapshot {token!r} is not published in this process; "
            "serve tasks must reach workers of a pool created after "
            "publish_snapshot()"
        ) from None


def _serve_chunk(
    payload: tuple[str, str, list[str], dict],
) -> tuple[list, dict[str, int]]:
    """Worker entry point: serve one chunk of queries from the snapshot.

    Returns the per-query results plus the counter increments this chunk
    produced, so the parent can merge observability back in.
    """
    token, operation, queries, kwargs = payload
    fault_point("serve.chunk")
    index = resolve_snapshot(token)
    before = dict(index.counters)
    serve = getattr(index, f"_{operation}_one")
    results = [serve(query, **kwargs) for query in queries]
    delta = {
        name: value - before.get(name, 0)
        for name, value in index.counters.items()
        if value != before.get(name, 0)
    }
    return results, delta


def serve_batch(
    index,
    operation: str,
    queries: Sequence[str],
    kwargs: dict,
    processes: int,
) -> list:
    """Fan a query batch out over the shared pool against a published snapshot.

    ``operation`` names a per-query serve method (``"topk"`` or
    ``"within"``); each worker resolves its local snapshot copy and runs
    the identical in-process code path, so results are byte-identical to
    serial serving.  Counter deltas from the workers are merged into the
    parent index's counters.  Falls back to in-process serving inside a
    pool worker (nested fan-out is not allowed).
    """
    queries = list(queries)
    if in_worker_process() or processes <= 1 or len(queries) <= 1:
        serve = getattr(index, f"_{operation}_one")
        return [serve(query, **kwargs) for query in queries]

    token = index.ensure_published()
    workers = min(processes, len(queries))
    chunk_size = (len(queries) + workers - 1) // workers
    chunks = [
        (token, operation, queries[k : k + chunk_size], kwargs)
        for k in range(0, len(queries), chunk_size)
    ]
    # The snapshot registry also holds every published snapshot in the
    # parent, so resilient_pool_map's in-process degradation path can
    # resolve the token and serve the identical chunks locally.
    outcomes = resilient_pool_map(
        _serve_chunk, chunks, workers, label="serve chunks"
    )
    counters = index.counters
    for _, delta in outcomes:
        for name, value in delta.items():
            counters[name] = counters.get(name, 0) + value
    return [result for results, _ in outcomes for result in results]
