"""The resident :class:`SimilarityIndex`: build once, query many.

Every pre-existing entry point -- :func:`repro.core.nsld_join`, the CLI
``knn``/``join`` commands, :class:`repro.knn.FuzzyMatchIndex` -- paid
full index construction per call: tokenize the collection, intern the
tokens, precompute the Myers ``Peq`` masks, build the postings, then
answer exactly one request and throw everything away.  A serving system
does the opposite: construction is rare, queries are endless.

:class:`SimilarityIndex` snapshots the expensive state exactly once:

* the tokenized collection and its raw names;
* a private :class:`repro.accel.Vocab` with every collection token
  interned and its Myers match table prebuilt;
* a candidate-pipeline :class:`repro.candidates.PostingsIndex` from
  interned token ids to record ids (the shared-token probe index);
* the aggregate-length order and encoded token-length histograms that
  drive the Lemma 6 / Sec. III-E.2 filters.

Against that snapshot it serves:

* :meth:`join` -- the full TSJ self-join, byte-identical to
  :func:`repro.core.nsld_join` (same pairs, same counters, same
  simulated seconds) with tokenization amortized away;
* :meth:`topk` / :meth:`within` -- batched probe paths over the
  candidate pipeline: Lemma 6 length window (complete by construction),
  the shared :class:`repro.candidates.FilterCascade` with the canonical
  counters, a histogram lower-bound prune, and exact verification
  through the snapshot vocab (single-token records go through the
  batched :func:`repro.candidates.verify_nld_pairs` fast path).  Under
  the ``vector`` backend the per-candidate loop is replaced by the
  numpy array probe (``searchsorted`` length window, masked filter
  arrays, one histogram bound per distinct histogram) -- identical
  results and counter totals, batched wall-clock;
* :meth:`append` -- incremental growth: new records extend the
  interners, postings and length order in place, no rebuild;
* a bounded LRU result cache (hits/misses surfaced next to the cascade
  counters) so repeated requests cost a dict probe.

The metric-space indexes (:class:`repro.knn.VPTree`,
:class:`repro.knn.BKTree`, :class:`repro.knn.FuzzyMatchIndex`) are
reachable behind the same API via ``method=`` and built lazily over the
same snapshot.

Snapshots are picklable and can be **published to the shared worker
pool** (:mod:`repro.service.sharing`): batched ``topk``/``within`` calls
with ``processes > 1`` fan queries out over the PR 2 pool without
re-shipping the snapshot per task -- fork platforms share it
copy-on-write, spawn platforms receive one explicit broadcast at pool
start-up.

Correctness contract (property-tested in ``tests/service/``):
``topk``/``within`` agree exactly with the brute-force NSLD oracle,
``append`` + query equals rebuild + query, and pool-served results are
byte-identical to in-process serving.
"""

from __future__ import annotations

import itertools
import math
import os
from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Sequence

from repro.accel import Vocab, resolve_backend
from repro.accel.vector import numpy_or_none
from repro.candidates import (
    COUNTER_CANDIDATES,
    COUNTER_PRUNED_COUNT,
    COUNTER_PRUNED_LENGTH,
    COUNTER_VERIFIED,
    FilterCascade,
    HistogramBoundFilter,
    PostingsIndex,
    new_counters,
    verify_nld_pairs,
)
from repro.distances.setwise import nsld, nsld_length_lower_bound, sld
from repro.service.cache import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES, LRUCache
from repro.tokenize import TokenizedString, Tokenizer
from repro.tsj.jobs import encode_histogram

#: Serving methods: the cascade probe path plus the metric-space indexes.
SERVE_METHODS = ("cascade", "vptree", "bktree", "fuzzymatch")

#: Upper bound on token-postings seeds fully verified per top-k query
#: (as a multiple of ``k``, floored at ``_MIN_SEED_CAP``).  Seeding only
#: tightens the initial search radius; capping it never loses results.
_SEED_FACTOR = 4
_MIN_SEED_CAP = 32

_MISS = object()
_SHARE_KEYS = itertools.count()


class SimilarityIndex:
    """A frozen, resident NSLD index over a collection of raw names.

    Parameters
    ----------
    names:
        The collection to index (raw strings; tokenized once, here).
    tokenizer:
        Defaults to whitespace+punctuation with case folding -- the same
        default as :func:`repro.core.nsld_join`, so :meth:`join` results
        are byte-identical.
    backend:
        Edit-distance kernel for verification (``"auto" | "dp" |
        "bitparallel" | "vector"``; values are backend-invariant).
        Under ``vector`` (what ``auto`` resolves to when numpy is
        importable) the probe paths also swap the per-candidate cascade
        loop for the array probe -- same results, same counters.
    cache_size:
        Capacity of the LRU result cache (0 disables result caching).

    Notes
    -----
    The result cache is bounded; the *interning* tables are not, by
    design (the same trade as :func:`repro.accel.token_vocab`): the
    snapshot vocab grows with every distinct token seen -- including
    novel *query* tokens, whose masks and memoized distances are what
    make repeated probes cheap -- and the probe filter's bound memo
    grows with distinct histogram pairs.  A deployment streaming an
    unbounded adversarial query vocabulary should rebuild the index at
    run boundaries (``SimilarityIndex(index.names)``), exactly as
    :func:`repro.accel.reset_token_vocab` is the documented valve for
    the process-wide vocab.

    Examples
    --------
    >>> index = SimilarityIndex(["barak obama", "borak obama", "john smith"])
    >>> index.topk(["barak obana"], k=2)[0][0]
    ('barak obama', 0.09523809523809523)
    >>> [name for name, _ in index.within(["john smith"], radius=0.1)[0]]
    ['john smith']
    """

    def __init__(
        self,
        names: Sequence[str] = (),
        tokenizer: Tokenizer | None = None,
        backend: str = "auto",
        cache_size: int = 256,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.backend = backend
        self._names: list[str] = []
        self._records: list[TokenizedString] = []
        self._vocab = Vocab()
        #: Interned token id -> record ids containing it.
        self._token_postings = PostingsIndex()
        #: ``(aggregate_length, record_id)`` in ascending order -- the
        #: Lemma 6 length partition probed by binary search.
        self._lengths: list[tuple[int, int]] = []
        self._histograms: list[tuple[tuple[int, int], ...]] = []
        self._cache = LRUCache(cache_size)
        #: Canonical cascade + result-cache counters (cumulative).
        self.counters: dict[str, int] = new_counters()
        self.counters[COUNTER_CACHE_HITS] = 0
        self.counters[COUNTER_CACHE_MISSES] = 0
        #: The probe paths' histogram bound filter.  Lemma 10 needs the
        #: complete similar-token-pair set, which a probe never has;
        #: without it (``use_lemma10=False``) the filter's per-token
        #: charges (length differences, pad costs) are unconditionally
        #: sound *and* threshold-independent, so one shared instance --
        #: and one warm memo -- serves every radius (the threshold field
        #: is unused on this path).
        self._probe_filter = HistogramBoundFilter(0.0, use_lemma10=False)
        #: Lazily built probe arrays for the ``vector`` backend's
        #: array-based cascade (see :meth:`_arrays`); derived state,
        #: invalidated on append and rebuilt per process.
        self._probe_arrays: tuple | None = None
        #: Lazily built metric-space serving backends (not pickled).
        self._knn: dict[str, object] = {}
        #: Stable identity for pool-publication bookkeeping.
        self.share_key = f"{os.getpid()}-{next(_SHARE_KEYS)}"
        self._published: str | None = None
        if names:
            self.append(names)

    # -- snapshot construction / growth ---------------------------------------

    def append(self, names: Sequence[str], base: int | None = None) -> None:
        """Extend the collection in place -- no rebuild.

        New records extend the vocab interner (masks prebuilt), the token
        postings and the length order incrementally; querying an appended
        index returns exactly what a fresh build over the full collection
        would (property-tested).  Cached results and lazily built
        metric-space backends are invalidated, and a pool-published
        snapshot is re-published on its next pooled serve.

        ``base`` makes the append **idempotent** under at-least-once
        delivery (the retrying ``/v1/append`` path): it names how many
        records the caller believes the index held before this append.
        ``base == len(self)`` appends normally; ``base < len(self)``
        with ``names`` matching the already-indexed slice exactly is a
        replay of an acknowledged append and becomes a no-op; anything
        else -- a mismatching replay or a ``base`` past the end -- is a
        lost-update conflict and raises
        :class:`~repro.api.errors.ValidationError`.
        """
        if base is not None:
            replayed = self._check_append_base(names, base)
            if replayed:
                return
        added = False
        for name in names:
            record = self.tokenizer.tokenize(name)
            record_id = len(self._records)
            self._names.append(name)
            self._records.append(record)
            token_ids = self._vocab.intern_all(record.tokens)
            for token_id in set(token_ids):
                self._token_postings.add(token_id, record_id)
                self._vocab.masks(token_id)  # snapshot the Peq table now
            self._lengths.append((record.aggregate_length, record_id))
            self._histograms.append(encode_histogram(record.length_histogram))
            added = True
        if added:
            # One sort per append call, not one insort per record (which
            # is O(n) element moves each -- quadratic for large builds).
            self._lengths.sort()
            self._cache.clear()
            self._knn.clear()
            self._probe_arrays = None
            self.unpublish()  # the next pooled serve re-publishes

    def _check_append_base(self, names: Sequence[str], base: int) -> bool:
        """Validate an append's ``base`` offset; True when it is a replay.

        A replay is an exact duplicate of records ``base ..
        base+len(names)`` already in the collection -- the shape a
        retried-but-already-acknowledged append produces.
        """
        from repro.api.errors import ValidationError

        held = len(self._records)
        if base == held:
            return False
        if base > held:
            raise ValidationError(
                f"append base {base} is past the end: the index holds "
                f"{held} records (acknowledged data was lost?)"
            )
        replay = list(names)
        if self._names[base : base + len(replay)] == replay and base + len(
            replay
        ) <= held:
            return True
        raise ValidationError(
            f"append at base {base} conflicts with the {held}-record "
            "index: the replayed names do not match what is already "
            "indexed there"
        )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def names(self) -> list[str]:
        """The indexed raw names, in insertion order (do not mutate)."""
        return self._names

    @property
    def records(self) -> list[TokenizedString]:
        """The tokenized collection, aligned with :attr:`names`."""
        return self._records

    @property
    def vocab(self) -> Vocab:
        """The snapshot's token interner (exposed for instrumentation)."""
        return self._vocab

    @property
    def token_postings(self) -> PostingsIndex:
        """The shared-token probe index (interned token id -> record ids)."""
        return self._token_postings

    @property
    def result_cache(self) -> LRUCache:
        """The bounded LRU result cache (exposed for instrumentation).

        The cache object's own hit/miss counters are process-local;
        :attr:`counters` is the aggregated view, which pooled serving
        extends with the workers' deltas.
        """
        return self._cache

    def length_range(self) -> tuple[int, int] | None:
        """The (min, max) aggregate token length held, ``None`` when empty.

        The shard router's pruning signal: a Lemma 6 window disjoint
        from this range cannot contain a qualifying record, so the whole
        index can be skipped without touching a counter.
        """
        if not self._lengths:
            return None
        return self._lengths[0][0], self._lengths[-1][0]

    def stats(self) -> dict[str, int]:
        """Size snapshot: records, distinct tokens, postings, cached results."""
        return {
            "records": len(self._records),
            "distinct_tokens": len(self._vocab),
            "token_postings": self._token_postings.total_postings,
            "cached_results": len(self._cache),
        }

    def prepare(self, *methods: str) -> "SimilarityIndex":
        """Eagerly build serving backends (otherwise built lazily on first
        use), so callers can separate build time from query time; returns
        ``self`` for chaining.  ``"cascade"`` needs no extra build."""
        for method in methods:
            if method != "cascade":
                self._knn_index(method)
        return self

    # -- pickling / pool publication ------------------------------------------

    def __getstate__(self) -> dict:
        # Metric-space backends hold metric closures (unpicklable) and
        # rebuild lazily per process; publication tokens are per-process.
        state = dict(self.__dict__)
        state["_knn"] = {}
        state["_published"] = None
        state["_probe_arrays"] = None  # derived; rebuilt lazily per process
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # A clone is a distinct publishable identity: keeping the
        # original's share_key would make the clone's publication evict
        # the original's from the sharing registry.
        self.share_key = f"{os.getpid()}-{next(_SHARE_KEYS)}"

    def ensure_published(self) -> str:
        """Publish this snapshot to the shared pool once; return its token."""
        if self._published is None:
            from repro.service.sharing import publish_snapshot

            self._published = publish_snapshot(self)
        return self._published

    def unpublish(self) -> None:
        """Withdraw this snapshot from the shared pool.

        A publication pins the snapshot in the process-wide registry and
        in the pool start-up payload; a long-lived server discarding an
        index should unpublish it first (``append`` does this
        automatically before its re-publication).  Safe to call when
        never published; the next pooled serve re-publishes.
        """
        from repro.service.sharing import unpublish_snapshot

        unpublish_snapshot(self)
        self._published = None

    # -- result cache ----------------------------------------------------------

    def _cache_get(self, key):
        value = self._cache.get(key, _MISS)
        if value is _MISS:
            self.counters[COUNTER_CACHE_MISSES] += 1
            return None
        self.counters[COUNTER_CACHE_HITS] += 1
        return value

    def _cache_put(self, key, value) -> None:
        self._cache.put(key, value)

    # -- the full join ----------------------------------------------------------

    def join(
        self,
        threshold: float = 0.1,
        max_token_frequency: int | None = 1000,
        n_machines: int = 10,
        engine: str = "auto",
        **config_overrides,
    ):
        """TSJ self-join of the collection; byte-identical to ``nsld_join``.

        Tokenization is amortized into the snapshot and the resulting
        :class:`repro.core.JoinReport` -- same pairs, same clusters, same
        counters, same simulated seconds as
        ``nsld_join(index.names, ...)`` -- is cached in the LRU, so a
        repeated join costs a dict probe.  ``engine`` is excluded from
        the cache key on purpose: results and simulated seconds are
        engine-invariant by construction, so a serial-run cache entry
        answers a parallel request too.  Treat returned reports as
        read-only (cache hits return the same object).
        """
        key = (
            "join",
            threshold,
            max_token_frequency,
            n_machines,
            tuple(sorted(config_overrides.items())),
        )
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        from repro.core.api import join_records

        report = join_records(
            self._names,
            self._records,
            threshold=threshold,
            max_token_frequency=max_token_frequency,
            n_machines=n_machines,
            engine=engine,
            **config_overrides,
        )
        self._cache_put(key, report)
        return report

    # -- batched probe paths -----------------------------------------------------

    def topk(
        self,
        queries: Sequence[str] | str,
        k: int = 5,
        method: str = "cascade",
        processes: int | None = None,
    ) -> list[list[tuple[str, float]]]:
        """The ``k`` best matches per query, one result list per query.

        ``method`` selects the serving backend and its native score:

        * ``"cascade"`` (default) -- exact NSLD through the candidate
          pipeline; equals the brute-force oracle, ascending distance
          (ties broken by record id);
        * ``"vptree"`` -- exact NSLD via the vantage-point tree;
        * ``"bktree"`` -- exact **SLD** (integer) via the BK-tree;
        * ``"fuzzymatch"`` -- **FMS similarity, descending** via the
          FuzzyMatch index (results are token-joined strings).

        ``processes > 1`` fans the batch out over the shared worker pool
        against the published snapshot (results identical, see
        :mod:`repro.service.sharing`).
        """
        if k < 1:
            raise ValueError("k must be positive")
        return self._serve("topk", queries, {"k": k, "method": method}, processes)

    def within(
        self,
        queries: Sequence[str] | str,
        radius: float,
        method: str = "cascade",
        processes: int | None = None,
    ) -> list[list[tuple[str, float]]]:
        """All matches within ``radius`` per query (ascending distance).

        ``radius`` is interpreted in the serving method's native metric
        (NSLD for ``cascade``/``vptree``, SLD for ``bktree``);
        ``fuzzymatch`` has no range semantics and is rejected.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if method == "fuzzymatch":
            raise ValueError("within() is not defined for the fuzzymatch method")
        return self._serve(
            "within", queries, {"radius": radius, "method": method}, processes
        )

    def _serve(self, operation, queries, kwargs, processes):
        if isinstance(queries, str):
            queries = [queries]
        from repro.service.sharing import serve_batch

        return serve_batch(self, operation, queries, kwargs, processes or 0)

    # -- per-query serving (also the pool workers' entry points) ----------------

    def _topk_one(
        self, query: str, k: int, method: str = "cascade"
    ) -> list[tuple[str, float]]:
        key = ("topk", method, query, k)
        cached = self._cache_get(key)
        if cached is not None:
            return list(cached)  # callers own their copy, never the cache's
        if method != "cascade":
            result = self._knn_topk(query, k, method)
        else:
            record, token_ids = self._prepare(query)
            k_effective = min(k, len(self._records))
            if k_effective == 0:
                result = []
            else:
                known = self._seed_candidates(record, token_ids, k_effective)
                if len(known) >= k_effective:
                    radius = sorted(known.values())[k_effective - 1]
                else:
                    radius = 0.25
                while True:
                    # ``known`` accumulates every exact distance verified
                    # so far, so an expansion pass never re-verifies the
                    # previous window.
                    hits = self._within_ids(record, radius, known)
                    if len(hits) >= k_effective or radius >= 1.0:
                        break
                    radius = min(1.0, radius * 2.0)
                result = [
                    (self._names[record_id], distance)
                    for record_id, distance in hits[:k_effective]
                ]
        self._cache_put(key, result)
        return list(result)

    def _within_one(
        self, query: str, radius: float, method: str = "cascade"
    ) -> list[tuple[str, float]]:
        key = ("within", method, query, radius)
        cached = self._cache_get(key)
        if cached is not None:
            return list(cached)  # callers own their copy, never the cache's
        if method != "cascade":
            result = self._knn_within(query, radius, method)
        else:
            record, token_ids = self._prepare(query)
            result = [
                (self._names[record_id], distance)
                for record_id, distance in self._within_ids(record, radius)
            ]
        self._cache_put(key, result)
        return list(result)

    def _prepare(self, query: str) -> tuple[TokenizedString, tuple[int, ...]]:
        record = self.tokenizer.tokenize(query)
        return record, self._vocab.intern_all(record.tokens)

    def _seed_candidates(
        self,
        record: TokenizedString,
        token_ids: tuple[int, ...],
        k: int,
    ) -> dict[int, float]:
        """Probe the token postings and verify the best-overlapping seeds.

        Seeds tighten the initial top-k radius to the k-th seed distance
        (one complete ``within`` pass instead of blind expansion); they
        never affect correctness, so the fully-verified set is capped.
        """
        lookup = self._token_postings.lookup_ref()
        postings = self._token_postings.postings
        overlap: Counter = Counter()
        for token_id in set(token_ids):
            signature_id = lookup(token_id)
            if signature_id is not None:
                overlap.update(postings[signature_id])
        cap = max(_MIN_SEED_CAP, _SEED_FACTOR * k)
        ranked = sorted(overlap.items(), key=lambda item: (-item[1], item[0]))
        counters = self.counters
        known: dict[int, float] = {}
        for record_id, _ in ranked[:cap]:
            counters[COUNTER_CANDIDATES] += 1
            counters[COUNTER_VERIFIED] += 1
            known[record_id] = self._nsld_to(record, record_id)
        return known

    def _within_ids(
        self,
        record: TokenizedString,
        radius: float,
        known: dict[int, float] | None = None,
    ) -> list[tuple[int, float]]:
        """All record ids within NSLD ``radius`` of ``record``.

        Complete by construction: Lemma 6 makes the aggregate-length
        window a superset of every qualifying record, the filter cascade
        only prunes on sound lower bounds, and survivors are verified
        exactly.  Returns ``(record_id, distance)`` sorted by
        ``(distance, record_id)`` -- the oracle tie-break.

        ``known`` is a read/write memo of exact distances: entries are
        trusted instead of re-verified, and every exact distance this
        pass computes is written back (so the top-k expansion loop never
        re-verifies a previous, smaller window).

        Under the ``vector`` backend the per-candidate cascade loop is
        replaced by the array probe (:meth:`_within_ids_vector`):
        identical results, identical counter totals, batched filters.
        """
        if resolve_backend(self.backend) == "vector":
            return self._within_ids_vector(record, radius, known)
        query_length = record.aggregate_length
        lengths = self._lengths
        if radius >= 1.0:
            window = range(len(self._records))
        else:
            low = math.floor((1.0 - radius) * query_length)
            high = math.ceil(query_length / (1.0 - radius))
            start = bisect_left(lengths, (low, -1))
            stop = bisect_right(lengths, (high, len(self._records)))
            window = [record_id for _, record_id in lengths[start:stop]]

        records = self._records
        bound_filter = self._probe_filter
        query_histogram = encode_histogram(record.length_histogram)
        histograms = self._histograms

        def length_admits(candidate: int) -> bool:
            other_length = records[candidate].aggregate_length
            return nsld_length_lower_bound(query_length, other_length) <= radius

        def histogram_admits(candidate: int) -> bool:
            bound = bound_filter.nsld_bound_encoded(
                query_histogram, histograms[candidate], ()
            )
            return bound <= radius

        cascade = FilterCascade(
            (COUNTER_PRUNED_LENGTH, length_admits),
            (COUNTER_PRUNED_COUNT, histogram_admits),
            counters=self.counters,
        )

        counters = self.counters
        results: list[tuple[float, int]] = []
        single_token_ids: list[int] = []
        query_is_single = record.token_count == 1
        for record_id in window:
            if known is not None:
                distance = known.get(record_id)
                if distance is not None:
                    if distance <= radius:
                        results.append((distance, record_id))
                    continue
            if not cascade.admit(record_id):
                continue
            if query_is_single and records[record_id].token_count == 1:
                single_token_ids.append(record_id)
                continue
            counters[COUNTER_VERIFIED] += 1
            distance = self._nsld_to(record, record_id)
            if known is not None:
                known[record_id] = distance
            if distance <= radius:
                results.append((distance, record_id))

        return self._finish_within(record, radius, known, results, single_token_ids)

    def _arrays(self) -> tuple:
        """The ``vector`` probe's array mirror of the snapshot, built lazily.

        Columns, all aligned or keyed by record id:

        * the length partition (sorted aggregate lengths + their record
          ids -- ``self._lengths`` unzipped, for ``searchsorted``);
        * per-record aggregate lengths and token counts;
        * per-record *dense histogram ids* plus the distinct encoded
          histograms, so the histogram bound is computed once per
          distinct histogram in a window and fanned out by gather.
        """
        built = self._probe_arrays
        if built is None:
            np = numpy_or_none()
            records = self._records
            length_vals = np.fromiter(
                (length for length, _ in self._lengths),
                dtype=np.int64,
                count=len(records),
            )
            length_ids = np.fromiter(
                (record_id for _, record_id in self._lengths),
                dtype=np.int64,
                count=len(records),
            )
            aggregate = np.fromiter(
                (record.aggregate_length for record in records),
                dtype=np.int64,
                count=len(records),
            )
            token_counts = np.fromiter(
                (record.token_count for record in records),
                dtype=np.int64,
                count=len(records),
            )
            slots: dict[tuple, int] = {}
            distinct: list[tuple] = []
            histogram_ids = np.empty(len(records), dtype=np.int64)
            for record_id, histogram in enumerate(self._histograms):
                slot = slots.get(histogram)
                if slot is None:
                    slot = slots[histogram] = len(distinct)
                    distinct.append(histogram)
                histogram_ids[record_id] = slot
            built = self._probe_arrays = (
                length_vals,
                length_ids,
                aggregate,
                token_counts,
                histogram_ids,
                distinct,
            )
        return built

    def _within_ids_vector(
        self,
        record: TokenizedString,
        radius: float,
        known: dict[int, float] | None,
    ) -> list[tuple[int, float]]:
        """The array-probe twin of the cascade loop in :meth:`_within_ids`.

        Counter-identical by construction: every candidate the scalar
        loop would charge ``candidates_generated`` for is in ``fresh``;
        the length mask reproduces ``nsld_length_lower_bound`` in IEEE
        float64 exactly (``2d / (L(x) + L(y) + d)``, 0 for two empties),
        so ``pruned_by_length`` / ``pruned_by_count`` are the same mask
        sums the scalar cascade tallies one admit() at a time; survivors
        flow through the identical verification tail in the identical
        (window) order.
        """
        np = numpy_or_none()
        (
            length_vals,
            length_ids,
            aggregate,
            token_counts,
            histogram_ids,
            distinct,
        ) = self._arrays()
        query_length = record.aggregate_length
        if radius >= 1.0:
            window_ids = np.arange(len(self._records), dtype=np.int64)
        else:
            low = math.floor((1.0 - radius) * query_length)
            high = math.ceil(query_length / (1.0 - radius))
            start = int(np.searchsorted(length_vals, low, side="left"))
            stop = int(np.searchsorted(length_vals, high, side="right"))
            window_ids = length_ids[start:stop]

        results: list[tuple[float, int]] = []
        if known:
            known_ids = np.fromiter(known.keys(), dtype=np.int64, count=len(known))
            for record_id in known_ids[np.isin(known_ids, window_ids)].tolist():
                distance = known[record_id]
                if distance <= radius:
                    results.append((distance, record_id))
            fresh = window_ids[~np.isin(window_ids, known_ids)]
        else:
            fresh = window_ids

        counters = self.counters
        counters[COUNTER_CANDIDATES] += int(fresh.size)

        gaps = np.abs(aggregate[fresh] - query_length)
        denominators = aggregate[fresh] + query_length + gaps
        # maximum(..., 1) only masks the two-empty-strings case, where the
        # scalar bound is defined as 0.0 (and the numerator is 0 anyway).
        length_ok = (2.0 * gaps / np.maximum(denominators, 1)) <= radius
        counters[COUNTER_PRUNED_LENGTH] += int(fresh.size - length_ok.sum())
        survivors = fresh[length_ok]

        if survivors.size:
            bound_filter = self._probe_filter
            query_histogram = encode_histogram(record.length_histogram)
            slots = histogram_ids[survivors]
            bounds = np.empty(len(distinct), dtype=np.float64)
            for slot in np.unique(slots).tolist():
                bounds[slot] = bound_filter.nsld_bound_encoded(
                    query_histogram, distinct[slot], ()
                )
            histogram_ok = bounds[slots] <= radius
            counters[COUNTER_PRUNED_COUNT] += int(slots.size - histogram_ok.sum())
            survivors = survivors[histogram_ok]

        single_token_ids: list[int] = []
        if record.token_count == 1 and survivors.size:
            singles = token_counts[survivors] == 1
            single_token_ids = survivors[singles].tolist()
            survivors = survivors[~singles]

        counters[COUNTER_VERIFIED] += int(survivors.size)
        for record_id in survivors.tolist():
            distance = self._nsld_to(record, record_id)
            if known is not None:
                known[record_id] = distance
            if distance <= radius:
                results.append((distance, record_id))

        return self._finish_within(record, radius, known, results, single_token_ids)

    def _finish_within(
        self,
        record: TokenizedString,
        radius: float,
        known: dict[int, float] | None,
        results: list[tuple[float, int]],
        single_token_ids: list[int],
    ) -> list[tuple[int, float]]:
        """Shared tail of both probe paths: the batched single-token group,
        then the oracle's ``(distance, record_id)`` ordering."""
        if single_token_ids:
            # Single-token records: NSLD == NLD of the two tokens, so the
            # whole group verifies in one batched call.
            records = self._records
            strings = [record.tokens[0]] + [
                records[record_id].tokens[0] for record_id in single_token_ids
            ]
            pairs = [(0, position + 1) for position in range(len(single_token_ids))]
            distances = verify_nld_pairs(
                pairs, strings, radius, backend=self.backend, counters=self.counters
            )
            for record_id, distance in zip(single_token_ids, distances):
                if distance is not None:
                    # Within-radius values are exact -- memoize them so an
                    # expansion pass reuses them like the Hungarian path's.
                    # (A ``None`` only proves > radius; nothing to keep.)
                    if known is not None:
                        known[record_id] = distance
                    results.append((distance, record_id))

        results.sort()
        return [(record_id, distance) for distance, record_id in results]

    def _nsld_to(self, record: TokenizedString, record_id: int) -> float:
        """Exact NSLD between a prepared query and an indexed record.

        Delegates to :func:`repro.distances.setwise.nsld` -- padding,
        Hungarian aligning and normalisation stay single-sourced in the
        oracle -- with the token distances routed through the snapshot
        vocab (interned memo, prebuilt Myers masks; every token involved
        is already interned, so ``intern`` is a dict probe).
        """
        vocab = self._vocab

        def token_ld(token_x: str, token_y: str) -> int:
            return vocab.distance(vocab.intern(token_x), vocab.intern(token_y))

        return nsld(record, self._records[record_id], token_ld=token_ld)

    # -- shard-router entry points ----------------------------------------------
    #
    # The :class:`repro.shard.ShardedIndex` router reconstructs the
    # serial algorithms *globally* (seeding, radius expansion, caching,
    # counter bumps all happen at the router), so the per-shard pieces
    # it scatters -- in-process or to pool workers -- must be cache-free
    # and, where the router does the metering itself, counter-free.
    # They speak local record ids; the router owns the global mapping.

    def _shard_overlap(self, query: str) -> dict[int, int]:
        """Distinct-query-token overlap per local record id (no counters).

        The router merges these disjoint per-shard dicts into the global
        overlap ranking that seeds :meth:`_topk_one`'s search radius.
        """
        _, token_ids = self._prepare(query)
        lookup = self._token_postings.lookup_ref()
        postings = self._token_postings.postings
        overlap: Counter = Counter()
        for token_id in set(token_ids):
            signature_id = lookup(token_id)
            if signature_id is not None:
                overlap.update(postings[signature_id])
        return dict(overlap)

    def _shard_verify(
        self, query: str, record_ids: Sequence[int]
    ) -> list[tuple[int, float]]:
        """Exact NSLD to each listed local record (no counter bumps --
        the router charges the canonical seed counters itself)."""
        record, _ = self._prepare(query)
        return [
            (record_id, self._nsld_to(record, record_id))
            for record_id in record_ids
        ]

    def _shard_within(
        self,
        query: str,
        radius: float,
        known: dict[int, float] | None = None,
    ) -> tuple[list[tuple[int, float]], dict[int, float]]:
        """One shard's slice of a ``within`` pass, cache-free.

        Runs the identical :meth:`_within_ids` pipeline (cascade
        counters land in :attr:`counters` exactly as the serial path's
        would -- the router sums the per-shard deltas) and returns the
        local ``(record_id, distance)`` hits plus the *fresh* exact
        distances this pass verified, so the router can extend its
        global memo across expansion rounds and pool round-trips.
        """
        record, _ = self._prepare(query)
        if known is None:
            return self._within_ids(record, radius), {}
        memo = dict(known)
        hits = self._within_ids(record, radius, memo)
        fresh = {
            record_id: distance
            for record_id, distance in memo.items()
            if record_id not in known
        }
        return hits, fresh

    def _shard_topk_knn(
        self, query: str, k: int, method: str
    ) -> list[tuple[int, float]]:
        """This shard's canonical metric-tree top-k as local-id pairs.

        The global canonical top-k is a sub-multiset of the per-shard
        canonical top-k lists (the standard scatter-gather merge
        property), so the router can sort the union by ``(distance,
        global id)`` and keep ``k``.
        """
        backend_index = self._knn_index(method)
        record, _ = self._prepare(query)
        return self._canonical_knn_topk(backend_index, record, k)

    def _shard_within_knn(
        self, query: str, radius: float, method: str
    ) -> list[tuple[int, float]]:
        """This shard's metric-tree range hits as local-id pairs."""
        backend_index = self._knn_index(method)
        record, _ = self._prepare(query)
        return sorted(
            (
                (int(record_id), float(distance))
                for record_id, distance in backend_index.within(record, radius)
            ),
            key=lambda hit: (hit[1], hit[0]),
        )

    # -- metric-space serving backends ------------------------------------------

    def _knn_topk(self, query: str, k: int, method: str) -> list[tuple[str, float]]:
        backend_index = self._knn_index(method)
        record, _ = self._prepare(query)
        if method == "fuzzymatch":
            return [
                (" ".join(tokens), score)
                for tokens, score in backend_index.query(list(record.tokens), k=k)
            ]
        return [
            (self._names[record_id], distance)
            for record_id, distance in self._canonical_knn_topk(
                backend_index, record, k
            )
        ]

    @staticmethod
    def _canonical_knn_topk(
        backend_index, record: TokenizedString, k: int
    ) -> list[tuple[int, float]]:
        """Metric-tree top-k under the canonical ``(distance, id)`` order.

        The trees themselves break distance ties by traversal order --
        an artifact of insertion layout that no scatter-gather merge can
        reproduce across shard boundaries.  Serving canonicalizes: take
        the tree's ``k`` best to learn the k-th distance, close the tie
        set with a ``within`` sweep at that distance, and keep the first
        ``k`` under ``(distance, record id)`` -- the same tie-break every
        cascade path already uses.
        """
        neighbors = backend_index.nearest(record, k)
        if not neighbors:
            return []
        bound = max(distance for _, distance in neighbors)
        closed = sorted(
            (
                (int(record_id), float(distance))
                for record_id, distance in backend_index.within(record, bound)
            ),
            key=lambda hit: (hit[1], hit[0]),
        )
        return closed[:k]

    def _knn_within(
        self, query: str, radius: float, method: str
    ) -> list[tuple[str, float]]:
        backend_index = self._knn_index(method)
        record, _ = self._prepare(query)
        return [
            (self._names[record_id], distance)
            for record_id, distance in sorted(
                (
                    (int(record_id), float(distance))
                    for record_id, distance in backend_index.within(record, radius)
                ),
                key=lambda hit: (hit[1], hit[0]),
            )
        ]

    def _knn_index(self, method: str):
        from repro.api.registry import validate_choice

        validate_choice("serving method", method, SERVE_METHODS)
        built = self._knn.get(method)
        if built is None:
            # Deferred imports: the metric-tree backends are optional
            # serving paths, so plain cascade serving never pays them.
            if method == "vptree":
                from repro.knn import VPTree

                built = VPTree(
                    list(range(len(self._records))),
                    metric=self._id_metric("nsld"),
                )
            elif method == "bktree":
                from repro.knn import BKTree

                built = BKTree(metric=self._id_metric("sld"))
                built.extend(range(len(self._records)))
            else:  # fuzzymatch
                from repro.knn import FuzzyMatchIndex

                built = FuzzyMatchIndex(
                    [list(record.tokens) for record in self._records]
                )
            self._knn[method] = built
        return built

    def _id_metric(self, kind: str):
        """NSLD/SLD over record ids (queries pass TokenizedStrings)."""
        measure = nsld if kind == "nsld" else sld
        records = self._records
        backend = self.backend

        def metric(a, b):
            record_a = records[a] if isinstance(a, int) else a
            record_b = records[b] if isinstance(b, int) else b
            return measure(record_a, record_b, backend=backend)

        return metric
