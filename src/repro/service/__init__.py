"""The query-serving layer: resident indexes behind one serving API.

``repro.service`` turns the one-shot pipeline entry points into a
build-once/query-many system (see README.md "Query serving"):

* :class:`SimilarityIndex` -- a frozen, picklable snapshot of the
  tokenized collection, the interned :class:`repro.accel.Vocab` (with
  prebuilt Myers masks), the candidate-pipeline
  :class:`repro.candidates.PostingsIndex` and the Lemma 6 length
  partition, serving ``join`` / ``topk`` / ``within`` / ``append``;
* :class:`LRUCache` -- the bounded result cache with hit/miss counters
  (also backing :class:`repro.knn.FuzzyMatchIndex`'s query cache);
* :mod:`repro.service.sharing` -- snapshot publication to the shared
  worker pool: fork copy-on-write with an explicit one-time broadcast
  on spawn platforms, so pooled serving never re-ships per-task state.
"""

from repro.service.cache import (
    COUNTER_CACHE_HITS,
    COUNTER_CACHE_MISSES,
    LRUCache,
)
from repro.service.index import SERVE_METHODS, SimilarityIndex

__all__ = [
    "COUNTER_CACHE_HITS",
    "COUNTER_CACHE_MISSES",
    "LRUCache",
    "SERVE_METHODS",
    "SimilarityIndex",
]
