"""CI chaos smoke: SIGKILL mid-snapshot-save, previous snapshot survives.

The pytest store suite proves crash-mid-save atomicity with ``raise``
faults in-process; this script proves it with a *real* ``SIGKILL``, the
way the atomicity claim is actually worded: a child process armed with
the operator-facing ``REPRO_FAULTS`` environment plan dies at the
``store.write`` fault point (inside the snapshot writer, before the
publishing rename), and the parent then requires

(a) the child actually died by SIGKILL,
(b) the published snapshot is byte-identical to the pre-crash one
    (crash debris -- the orphaned temp file -- may exist, but the
    published name never holds a partial file), and
(c) a fresh ``SnapshotStore`` still loads and serves from the
    directory, appends and all.

The ``"scope": "any"`` field lets the kill fire outside a pool worker;
without it kill faults refuse to fire in a parent process (they model
worker crashes).

Run:  python scripts/store_chaos_smoke.py
"""

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults  # noqa: E402
from repro.store import SnapshotStore  # noqa: E402

NAMES = ["jon smith", "john smith", "bob jones", "rob jones", "ann lee"]

#: The child loads the store and tries to publish a fresh snapshot; the
#: armed kill fault fires inside the writer, before the rename.
CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.store import SnapshotStore
store = SnapshotStore({directory!r})
index = store.load()
index.append(["appended in the doomed child"])
store.save(index)
print("UNREACHABLE: the kill fault did not fire")
sys.exit(3)
"""


def main() -> None:
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    with tempfile.TemporaryDirectory(prefix="store-chaos-") as directory:
        store = SnapshotStore(directory)
        index = store.open(names=NAMES)
        store.log_append(["eve adams"], base=len(index))
        index.append(["eve adams"])
        before = open(store.snapshot_path, "rb").read()
        wal_before = open(store.wal.path, "rb").read()

        child = subprocess.run(
            [sys.executable, "-c", CHILD.format(src=src, directory=directory)],
            env={
                **os.environ,
                faults.ENV_FAULTS: json.dumps(
                    [{"site": "store.write", "action": "kill", "scope": "any"}]
                ),
            },
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert child.returncode == -signal.SIGKILL, (
            f"child exited {child.returncode}, expected SIGKILL; "
            f"stdout={child.stdout!r} stderr={child.stderr!r}"
        )

        assert open(store.snapshot_path, "rb").read() == before, (
            "published snapshot changed across a crash mid-save"
        )
        assert open(store.wal.path, "rb").read() == wal_before, (
            "append log changed across a crash mid-save"
        )
        debris = glob.glob(os.path.join(directory, "*.tmp.*"))

        reborn = SnapshotStore(directory)
        recovered = reborn.open(names=NAMES)
        assert recovered.names == [*NAMES, "eve adams"], recovered.names
        assert reborn.rebuilds == 0, "clean store should not need a rebuild"
        hits = recovered.topk(["jon smiht"], k=1)[0]
        assert hits and hits[0][0] == "jon smith", hits

    print(
        "env-armed SIGKILL at store.write: previous snapshot byte-identical, "
        f"{len(debris)} temp-file debris, warm restart served "
        f"{len(recovered)} records including the WAL append"
    )


if __name__ == "__main__":
    main()
