#!/usr/bin/env python
"""Fail if the accel bench regressed >30% versus the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_accel_backends.py   # fresh run
    python scripts/check_perf_regression.py                    # compare

Compares the ``pairs_per_sec`` series of the fresh
``benchmarks/results/BENCH_accel.json`` against the committed
``benchmarks/BENCH_accel_baseline.json``; any backend dropping below
``(1 - TOLERANCE)`` of its baseline rate fails the check (exit code 1).
Both paths can be overridden positionally: ``check_perf_regression.py
[current.json] [baseline.json]``.

The 30% tolerance absorbs normal machine noise; a genuine kernel
regression (e.g. losing the bit-parallel path) shows up as 5-10x, far
past any jitter.  After an intentional perf-relevant change, re-run the
bench on a quiet machine and commit the fresh JSON as the new baseline.

Absolute pairs/sec is machine-dependent: the committed baseline records
one specific host.  On different hardware (CI runners, laptops) pass
``--relative`` to compare the ``speedup_vs_dp`` ratios instead -- both
kernels run in the same process on the same box, so the ratio is
machine-independent and still catches "lost the fast path" regressions.

``--series NAME`` overrides the compared series entirely (both JSONs must
carry it); the candidate-pipeline bench gates its old-vs-new
``speedup_vs_dict`` ratios this way.  The flag may repeat -- one
invocation then gates several series of the same bench JSON (the
query-serving bench gates ``speedup_vs_rebuild`` and
``resident_hit_rate`` together); the check fails if *any* series
regresses.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

TOLERANCE = 0.30

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_accel.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_accel_baseline.json"


_UNITS = {"speedup_vs_dp": "x vs dp", "pairs_per_sec": "pairs/s"}


def _check_series(
    series: str, baseline: dict, current: dict, failures: list[str]
) -> None:
    """Compare one series of the two reports, appending any failures."""
    unit = _UNITS.get(series, series)
    base_rates = baseline[series]
    current_rates = current[series]
    gated = baseline.get("gated")
    if gated is not None:
        filtered = {k: v for k, v in base_rates.items() if k in gated}
        if not filtered and base_rates:
            # A requested series whose every key the gated list filters
            # out would pass vacuously -- a silently disabled gate, not a
            # green one.
            failures.append(
                f"{series}: no keys survive the baseline's 'gated' list; "
                "the series is not actually gated"
            )
            return
        base_rates = filtered
    if not base_rates:
        # Same silently-disabled-gate class: a present-but-empty series
        # would compare zero entries and exit green.
        failures.append(f"{series}: baseline series is empty; nothing gated")
        return

    for backend, base_rate in sorted(base_rates.items()):
        rate = current_rates.get(backend)
        if rate is None:
            failures.append(f"{backend}: missing from the fresh bench")
            continue
        floor = base_rate * (1.0 - TOLERANCE)
        delta = (rate - base_rate) / base_rate * 100.0
        status = "OK " if rate >= floor else "FAIL"
        print(
            f"{status} {backend:>12s}: {rate:>12.1f} {unit} "
            f"(baseline {base_rate:.1f}, {delta:+.1f}%)"
        )
        if rate < floor:
            failures.append(
                f"{backend}: {rate:.1f} {unit} is below the {floor:.1f} floor "
                f"({delta:+.1f}% vs baseline)"
            )


def main(argv: list[str]) -> int:
    argv = list(argv)
    relative = "--relative" in argv
    if relative:
        argv.remove("--relative")
    series_overrides: list[str] = []
    while "--series" in argv:
        position = argv.index("--series")
        if position + 1 >= len(argv):
            print("--series requires a value (the JSON series name to compare)")
            return 1
        series_overrides.append(argv[position + 1])
        del argv[position : position + 2]
    current_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE

    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare")
        return 0
    if not current_path.exists():
        print(
            f"no fresh bench at {current_path}; run "
            "`PYTHONPATH=src python benchmarks/bench_accel_backends.py` first"
        )
        return 1

    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = json.loads(current_path.read_text(encoding="utf-8"))
    all_series = series_overrides or [
        "speedup_vs_dp" if relative else "pairs_per_sec"
    ]
    failures: list[str] = []
    for series in all_series:
        # A missing series is recorded like any other failure (instead of
        # returning early) so regressions already found in earlier series
        # still reach the summary below.
        if series not in baseline:
            print(f"baseline {baseline_path} has no series {series!r}")
            failures.append(f"{series}: missing from the baseline")
            continue
        if series not in current:
            print(f"fresh bench {current_path} has no series {series!r}")
            failures.append(f"{series}: missing from the fresh bench")
            continue
        if len(all_series) > 1:
            print(f"-- series {series}")
        _check_series(series, baseline, current, failures)

    if failures:
        print("\nperf regression detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno perf regression (tolerance 30%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
