"""CI chaos smoke: the operator-facing ``REPRO_FAULTS`` arming path.

The pytest chaos suite arms faults programmatically; this script checks
the *environment* form end to end, the way an operator (or this CI job)
would use it: export ``REPRO_FAULTS`` with an unbounded worker-kill
plan, run a pooled ``verify_pairs``, and require (a) the answer to be
byte-identical to a clean serial run and (b) the crash recovery to be
visible in the runtime counters.

Run:  REPRO_FAULTS='[{"site": "verify.chunk", "action": "kill",
      "times": null}]' python scripts/chaos_smoke.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults  # noqa: E402
from repro.accel import verify_pairs  # noqa: E402
from repro.runtime import runtime_counters, shutdown_shared_pool  # noqa: E402
from repro.runtime.pool import MAX_SHARD_RETRIES, fork_is_default  # noqa: E402


def main() -> None:
    if not os.environ.get(faults.ENV_FAULTS):
        raise SystemExit(f"set {faults.ENV_FAULTS} first; see the docstring")
    if not fork_is_default():
        print("skipped: pool chaos needs fork workers (Linux)")
        return

    names = ["jon smith", "john smith", "bob jones", "rob jones"] * 8
    pairs = [
        (i, j) for i in range(len(names)) for j in range(i + 1, len(names))
    ]

    chaos = verify_pairs(pairs, names, 3, processes=2, chunk_size=16)
    counters = runtime_counters()
    assert counters["pool_rebuilds"] >= 1, counters

    # Disarm, then compare against the clean serial oracle.
    os.environ.pop(faults.ENV_FAULTS)
    faults.clear()
    faults._reset_for_tests()
    shutdown_shared_pool()
    clean = verify_pairs(pairs, names, 3, processes=None)
    assert chaos == clean, "recovered run diverged from the serial oracle"

    print(
        f"env-armed worker kill recovered: {counters['pool_rebuilds']} pool "
        f"rebuild(s), {counters['shard_retries']} retry(ies), "
        f"degraded={counters['pool_degraded'] > 0} "
        f"(retry budget {MAX_SHARD_RETRIES}); results identical to serial"
    )


if __name__ == "__main__":
    main()
