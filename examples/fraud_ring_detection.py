"""Fraud-ring detection: the paper's motivating application (Sec. I-A).

Plants adversarial account rings in a synthetic name corpus, runs the TSJ
NSLD self-join, clusters the similarity graph, and scores how many planted
rings the pipeline recovers.

Run:  python examples/fraud_ring_detection.py [corpus_size]
"""

import sys

from repro.analysis import cluster_pairs, ring_detection_report
from repro.data import corpus_with_rings
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.tokenize import tokenize
from repro.tsj import TSJ, TSJConfig


def main(corpus_size: int = 600) -> None:
    # ------------------------------------------------------------------
    # 1. Build a labelled corpus: innocent accounts + planted rings of
    #    slightly-edited names (the adversary of Sec. I-A).
    # ------------------------------------------------------------------
    n_rings = max(corpus_size // 60, 1)
    ring_size = 6
    n_background = corpus_size - n_rings * ring_size
    names, rings = corpus_with_rings(
        n_background, n_rings, ring_size, seed=7, max_edits=2
    )
    print(f"corpus: {len(names)} accounts, {n_rings} planted rings of {ring_size}")
    print("example ring:", " | ".join(names[i] for i in sorted(rings[0])))

    # ------------------------------------------------------------------
    # 2. Self-join under NSLD with the paper's default parameters.
    # ------------------------------------------------------------------
    records = [tokenize(name) for name in names]
    config = TSJConfig(threshold=0.15, max_token_frequency=1000)
    engine = MapReduceEngine(ClusterConfig(n_machines=10))
    result = TSJ(config, engine).self_join(records)
    print(
        f"\njoin: {len(result.pairs)} similar pairs, "
        f"{result.simulated_seconds():.1f}s simulated on 10 machines"
    )

    # ------------------------------------------------------------------
    # 3. Cluster the similarity graph and score ring recovery.
    # ------------------------------------------------------------------
    clusters = cluster_pairs(result.pairs, min_size=2)
    report = ring_detection_report(clusters, rings)
    print(f"\nclusters found: {report.clusters}")
    print(
        f"rings detected: {report.rings_detected}/{report.rings_total} "
        f"(ring recall {report.ring_recall:.2f})"
    )
    print(
        f"ring members recovered: {report.members_recovered}/"
        f"{report.members_total} (member recall {report.member_recall:.2f})"
    )

    print("\nlargest detected clusters:")
    for cluster in clusters[:5]:
        print("  " + " | ".join(sorted(names[i] for i in cluster)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
