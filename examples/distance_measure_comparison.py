"""Distance-measure shoot-out on account name changes (Sec. V-D / Fig. 6).

Scores name changes with NSLD and the weighted fuzzy set measures
(FJaccard / FCosine / FDice) and prints each measure's ROC AUC for
predicting whether the change is fraudulent.  Mirrors Fig. 6: NSLD
dominates because adversarial edits are designed to defeat token-overlap
measures.

Run:  python examples/distance_measure_comparison.py [sample_size]
"""

import sys
from collections import Counter
from math import log

from repro.analysis import auc, roc_curve
from repro.data import name_change_dataset
from repro.distances import fuzzy_cosine, fuzzy_dice, fuzzy_jaccard, nsld
from repro.tokenize import tokenize


def main(sample_size: int = 1000) -> None:
    triples = name_change_dataset(sample_size, seed=0)
    labels = [is_fraud for _, _, is_fraud in triples]
    print(f"{sample_size} accounts with changed names "
          f"({sum(labels)} fraudulent)")

    # IDF-style token weights over the sample (the "weighted" in the
    # paper's weighted FJaccard/FCosine/FDice).
    documents = [tokenize(old) for old, _, _ in triples]
    documents += [tokenize(new) for _, new, _ in triples]
    frequency = Counter(token for doc in documents for token in doc.distinct_tokens())
    n_docs = len(documents)
    idf = {token: log(n_docs / count) for token, count in frequency.items()}

    def tokens(name):
        return tokenize(name).tokens

    measures = {
        "NSLD": lambda old, new: nsld(tokenize(old), tokenize(new)),
        "weighted 1-FJaccard": lambda old, new: 1.0
        - fuzzy_jaccard(tokens(old), tokens(new), 0.8, weights=idf),
        "weighted 1-FCosine": lambda old, new: 1.0
        - fuzzy_cosine(tokens(old), tokens(new), 0.8, weights=idf),
        "weighted 1-FDice": lambda old, new: 1.0
        - fuzzy_dice(tokens(old), tokens(new), 0.8, weights=idf),
    }

    print(f"\n{'measure':22s} {'AUC':>7s}   ROC points (FPR@TPR=0.5/0.8/0.95)")
    for label, measure in measures.items():
        scores = [measure(old, new) for old, new, _ in triples]
        fpr, tpr, _ = roc_curve(scores, labels)
        area = auc(fpr, tpr)

        def fpr_at(target):
            for f, t in zip(fpr, tpr):
                if t >= target:
                    return f
            return 1.0

        print(
            f"{label:22s} {area:7.4f}   "
            f"{fpr_at(0.5):.3f} / {fpr_at(0.8):.3f} / {fpr_at(0.95):.3f}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
