"""Record deduplication for data cleaning (Sec. I: "well-established
applications of data integration and cleaning").

A warehouse holds customer records whose names arrive from multiple
sources with typos, shuffles and abbreviations.  The example deduplicates
with the *exact-token-matching* approximation -- the configuration the
paper recommends for data cleaning, "where missing some similar records
does not have a significant financial impact, and the computational
resources are scarce" (Sec. V-C) -- and contrasts its recall and cost with
the full fuzzy join.

Run:  python examples/data_cleaning_dedup.py
"""

from repro import JoinSpec, Session
from repro.analysis import join_quality

#: Customer records from three "sources" with characteristic noise.
CUSTOMERS = [
    # source A: clean
    "jonathan a williamson",
    "elizabeth garcia",
    "mohammed al farsi",
    "katherine o brien",
    "christopher nolan",
    "maria fernanda lopez",
    # source B: shuffles and punctuation
    "williamson, jonathan a",
    "garcia, elizabeth",
    "al farsi, mohammed",
    # source C: typos and abbreviations
    "jonathan a willamson",      # dropped letter
    "jonathon j williamsom",     # every token edited: no shared token
    "elizabet garcia",           # dropped letter
    "katherine obrien",          # merged token
    "kristopher nolan",          # phonetic respelling
    "maria f lopez",             # abbreviated middle name
    # genuinely distinct people that look superficially close
    "jonathan b wilson",
    "elisabeth gracia lund",
    "nolan christopher james",   # different person, shuffled tokens
]


def main() -> None:
    # One session, one tokenization of the corpus -- the two joins below
    # (and any further spec) reuse the resident records.
    session = Session(CUSTOMERS, engine="serial")

    def dedup(matching: str):
        return session.run(
            JoinSpec(
                threshold=0.15,
                params={
                    "max_token_frequency": None,
                    "matching": matching,
                    "n_machines": 4,
                },
            )
        )

    fuzzy = dedup("fuzzy")
    exact = dedup("exact")
    fuzzy_pairs = {tuple(pair) for pair in fuzzy.index_pairs}
    exact_pairs = {tuple(pair) for pair in exact.index_pairs}

    print(f"fuzzy matching : {len(fuzzy.pairs)} duplicate pairs, "
          f"{fuzzy.simulated_seconds:.1f}s simulated")
    print(f"exact matching : {len(exact.pairs)} duplicate pairs, "
          f"{exact.simulated_seconds:.1f}s simulated")
    quality = join_quality(exact_pairs, fuzzy_pairs)
    print(f"exact-matching recall vs fuzzy: {quality.recall:.3f} "
          f"(precision {quality.precision:.1f})")

    print("\nduplicate groups (fuzzy join):")
    for cluster in fuzzy.clusters:
        print("  " + " | ".join(cluster))

    missed = fuzzy_pairs - exact_pairs
    if missed:
        print("\npairs only the fuzzy join finds (every token edited):")
        for a, b in sorted(missed):
            print(f"  {CUSTOMERS[a]}  ~  {CUSTOMERS[b]}")


if __name__ == "__main__":
    main()
