"""Quickstart: compare names and join a small corpus through the front door.

Every request is a declarative spec executed by :func:`repro.run` (the
process-default :class:`repro.Session`); results come back in the
uniform :class:`repro.ResultSet` envelope.

Run:  python examples/quickstart.py
"""

import repro
from repro.distances import nld, nsld
from repro.tokenize import tokenize


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Distances.  NSLD is token-order-insensitive and edit-tolerant:
    #    the properties the paper's fraud-detection application needs.
    # ------------------------------------------------------------------
    print("== distances ==")
    examples = [
        ("barak obama", "obama, barak"),      # shuffle + punctuation: free
        ("barak obama", "burak ubama"),       # two subtle character edits
        ("barak obama", "obamma, boraak h."), # the paper's attack example
        ("barak obama", "john smith"),        # unrelated
    ]
    for left, right in examples:
        value = repro.run(repro.CompareSpec(name_a=left, name_b=right)).value
        print(f"  NSLD({left!r}, {right!r}) = {value:.4f}")

    print("\n  Tokenized-string vs plain-string view of the same edit:")
    print(f"  NLD ('thomson', 'thompson')  = {nld('thomson', 'thompson'):.4f}")
    print(
        "  NSLD('tom thomson', 'tom thompson') = "
        f"{nsld(tokenize('tom thomson'), tokenize('tom thompson')):.4f}"
    )

    # ------------------------------------------------------------------
    # 2. Joining.  TSJ self-joins a corpus under a single threshold T --
    #    one JoinSpec; swap `algorithm=` for any registered join.
    # ------------------------------------------------------------------
    print("\n== joining ==")
    accounts = [
        "barak obama",
        "borak obama",         # one edit
        "obamma boraak h",     # edits + shuffle + extra initial
        "john smith",
        "jon smith",           # one edit
        "smith, john",         # shuffle + punctuation
        "mary williams",
        "mary wiliams",        # one edit
        "peter parker",
        "unrelated person",
    ]
    result = repro.run(
        repro.JoinSpec(
            names=accounts,
            threshold=0.2,
            params={"max_token_frequency": None},
        )
    )

    print(f"  {len(result.pairs)} similar pairs at T = 0.2:")
    for name_a, name_b, distance in result.pairs:
        print(f"    {distance:.4f}  {name_a:22s} ~ {name_b}")

    print(f"\n  {len(result.clusters)} suspicious clusters:")
    for cluster in result.clusters:
        print("    " + " | ".join(cluster))

    print(
        f"\n  simulated runtime on a 10-machine cluster: "
        f"{result.simulated_seconds:.1f}s"
    )


if __name__ == "__main__":
    main()
