"""Build-once/query-many serving with a resident SimilarityIndex.

The batch join answers "which accounts look alike?" once; a serving
system answers "which known accounts look like *this*?" forever.  This
example builds one :class:`repro.service.SimilarityIndex` over an
account corpus and then plays a production-shaped traffic mix against
it: repeated top-k lookups (hot queries hit the LRU result cache),
range probes, an incremental ``append`` when new signups arrive, and a
full join served from the same snapshot.

Run:  python examples/query_serving.py [corpus_size]
"""

import sys
import time

from repro.data import FraudRingGenerator, NameGenerator
from repro.service import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES, SimilarityIndex


def main(corpus_size: int = 2000) -> None:
    generator = NameGenerator(seed=13)
    names = generator.generate(corpus_size)
    fraud = FraudRingGenerator(seed=14, max_edits=2)
    names.extend(fraud.make_ring("vladimir aleksandrov", 6))

    t0 = time.perf_counter()
    index = SimilarityIndex(names)
    build_seconds = time.perf_counter() - t0
    stats = index.stats()
    print(
        f"resident index: {stats['records']} accounts, "
        f"{stats['distinct_tokens']} distinct tokens, built once in "
        f"{build_seconds:.2f}s"
    )

    # A skewed query stream: the same suspicious signups recur.
    signup = fraud.perturb("vladimir aleksandrov")
    stream = [signup, names[7], signup, "jon smiht", signup, names[7]]
    t0 = time.perf_counter()
    results = index.topk(stream, k=3)
    serve_seconds = time.perf_counter() - t0
    print(f"\ntop-3 for new signup {signup!r}:")
    for name, distance in results[0]:
        print(f"  {distance:.4f}  {name}")
    counters = index.counters
    print(
        f"{len(stream)} queries in {serve_seconds:.3f}s "
        f"(result cache: {counters[COUNTER_CACHE_HITS]} hits, "
        f"{counters[COUNTER_CACHE_MISSES]} misses)"
    )

    # Range probe: everything suspiciously close to the signup.
    near = index.within([signup], radius=0.2)[0]
    print(f"\naccounts within NSLD 0.2 of the signup: {len(near)}")

    # New accounts arrive: extend the snapshot in place, no rebuild.
    index.append([fraud.perturb("vladimir aleksandrov")])
    refreshed = index.topk([signup], k=1)[0][0]
    print(f"after append, nearest account is now: {refreshed[0]!r}")

    # The full join runs from the same snapshot (and lands in the cache).
    report = index.join(threshold=0.15, engine="serial")
    print(f"\nresident join: {len(report.pairs)} similar pairs")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
