"""The similarity service over HTTP: one server process, many clients.

Boots ``python -m repro serve`` as a real subprocess (the way an
operator would), then talks to it through :class:`repro.ServiceClient`
-- and checks the acceptance property of the service layer: a spec
executed over HTTP returns the *same* ResultSet (pairs, counters,
simulated seconds) as the in-process :class:`repro.Session`, so moving
from a library call to a service deployment changes nothing but the
transport.

Run:  python examples/http_service.py [corpus_size]
"""

import os
import subprocess
import sys
import tempfile

import repro
from repro import JoinSpec, ServiceClient, Session, TopKSpec
from repro.api.errors import ValidationError
from repro.data import FraudRingGenerator, NameGenerator

TOKEN = "example-token"


def boot_server(names_path: str) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` on an ephemeral port; return (process, url)."""
    environment = dict(os.environ)
    # Hand the subprocess the same repro package this process imported.
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    environment["PYTHONPATH"] = os.pathsep.join(
        path for path in (package_root, environment.get("PYTHONPATH")) if path
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--token",
            TOKEN,
            "--input",
            names_path,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    # The server prints "serving on http://host:port (...)" once ready.
    banner = process.stdout.readline()
    if not banner.startswith("serving on "):
        process.terminate()
        raise RuntimeError(f"server failed to start: {banner!r}")
    return process, banner.split()[2]


def main(corpus_size: int = 300) -> None:
    generator = NameGenerator(seed=21)
    names = generator.generate(corpus_size)
    fraud = FraudRingGenerator(seed=22, max_edits=2)
    names.extend(fraud.make_ring("veronika dahl", 4))

    with tempfile.NamedTemporaryFile(
        "w", suffix=".txt", delete=False, encoding="utf-8"
    ) as handle:
        handle.write("\n".join(names) + "\n")
        names_path = handle.name

    process, url = boot_server(names_path)
    try:
        with ServiceClient(url, token=TOKEN) as client:
            health = client.health()
            print(f"server up at {url} (wire version {health['version']})")

            # The same spec, both transports.  The resident default
            # corpus lives server-side; the local twin loads it itself.
            spec = JoinSpec(algorithm="tsj", threshold=0.2, names=names)
            remote = client.run(spec)
            local = Session().run(spec)
            agree = (
                remote.pairs == local.pairs
                and remote.clusters == local.clusters
                and remote.counters == local.counters
            )
            print(
                f"join over HTTP: {len(remote.pairs)} pairs, "
                f"{len(remote.clusters)} clusters "
                f"(matches in-process run: {agree})"
            )

            # Top-k against the server's resident corpus (names=None):
            # no corpus shipped per request, the session keeps it hot.
            hits = client.search(("veronika dhal",), k=3)
            best_name, best_distance = hits.matches[0][0]
            print(
                f"top-3 for 'veronika dhal' served remotely; best: "
                f"{best_name!r} at NSLD {best_distance:.3f}"
            )

            knn = client.run(TopKSpec(queries=("veronika dhal",), k=3))
            print(f"declarative run() round-trip: kind={knn.kind!r}")

            # Remote validation failures raise the same typed errors the
            # in-process facade does -- rebuilt from the error envelope.
            try:
                client.run({"type": "join", "version": 99})
            except ValidationError as exc:
                print(f"bad wire version rejected remotely: {exc}")

            metrics = client.metrics()
            print(
                f"server metrics: {metrics['requests_total']} requests, "
                f"{metrics['session']['resident_corpora']} resident corpora"
            )
    finally:
        process.terminate()
        process.wait(timeout=10)
        os.unlink(names_path)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
