"""The similarity service over HTTP: one server process, many clients.

Boots ``python -m repro serve`` as a real subprocess (the way an
operator would), then talks to it through :class:`repro.ServiceClient`
-- and checks the acceptance property of the service layer: a spec
executed over HTTP returns the *same* ResultSet (pairs, counters,
simulated seconds) as the in-process :class:`repro.Session`, so moving
from a library call to a service deployment changes nothing but the
transport.

Run:  python examples/http_service.py [corpus_size]
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

import repro
from repro import CompareSpec, JoinSpec, ServiceClient, Session, TopKSpec
from repro.api.errors import ValidationError
from repro.data import FraudRingGenerator, NameGenerator

TOKEN = "example-token"


def boot_server(
    names_path: str, store_dir: str | None = None, shards: int = 0
) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` on an ephemeral port; return (process, url)."""
    environment = dict(os.environ)
    # Hand the subprocess the same repro package this process imported.
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    environment["PYTHONPATH"] = os.pathsep.join(
        path for path in (package_root, environment.get("PYTHONPATH")) if path
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--token",
            TOKEN,
            "--input",
            names_path,
            # One request at a time, no queue: overflow sheds with a 503
            # envelope + Retry-After (the sequential demos above never
            # overlap, so only the saturation demo below trips it).
            "--max-inflight",
            "1",
            "--max-queue",
            "0",
            *(("--store", store_dir) if store_dir else ()),
            *(("--shards", str(shards)) if shards else ()),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    # With --store a one-line recovery summary precedes the banner;
    # the server prints "serving on http://host:port (...)" once ready.
    banner = process.stdout.readline()
    if store_dir and banner.startswith("store "):
        banner = process.stdout.readline()
    if not banner.startswith("serving on "):
        process.terminate()
        raise RuntimeError(f"server failed to start: {banner!r}")
    return process, banner.split()[2]


def shed_and_retry(client: ServiceClient, url: str) -> None:
    """Demonstrate load shedding: a 503 that heals through the SDK.

    The server holds one admission slot (``--max-inflight 1
    --max-queue 0``).  A background join occupies it; once the metrics
    endpoint (which never sheds) confirms the slot is held, a compare
    request is fired through a retrying client.  Its first attempt is
    shed with a 503 ``overloaded`` envelope; the SDK sleeps for the
    server's ``Retry-After`` hint and retries to success.  A fast
    machine can finish the join before the compare arrives, so each
    repeat doubles the saturating corpus until a shed is observed.
    """
    spec = CompareSpec(name_a="veronika dahl", name_b="veronika dhal")
    expected = Session().run(spec).to_dict()
    # A ServiceClient caches one keep-alive connection, so each thread
    # gets its own: one to hold the slot, one to poll, one to retry.
    patient = ServiceClient(url, token=TOKEN, retries=8, backoff=0.2)
    holder = ServiceClient(url, token=TOKEN)
    corpus = tuple(NameGenerator(seed=33).generate(300))

    for _ in range(5):
        blocker = threading.Thread(
            target=holder.run,
            args=(JoinSpec(threshold=0.25, names=corpus),),
            daemon=True,
        )
        blocker.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.metrics()["admission"]["inflight"] >= 1:
                break
            time.sleep(0.002)
        result = patient.run(spec).to_dict()
        blocker.join(timeout=60)
        for volatile in ("build_seconds", "query_seconds"):
            result.pop(volatile)
            expected.pop(volatile, None)
        assert result == expected
        shed = client.metrics()["admission"]["shed_total"]
        if shed:
            print(
                f"load shedding round-trip: {shed} request(s) shed with "
                "503 + Retry-After; the SDK retried to the same answer"
            )
            return
        corpus = corpus + corpus  # a slower join next round
    raise RuntimeError("server never shed; saturation demo misconfigured?")


def warm_restart(names_path: str) -> None:
    """Durability demo: append, SIGKILL the server, warm-restart, nothing lost.

    With ``--store DIR`` every acknowledged ``/v1/append`` is fsynced to
    the write-ahead log *before* the 200 goes out, and boot loads the
    snapshot + WAL instead of re-tokenizing ``--input``.  The harshest
    test of that claim is the one below: append a record, kill the
    server with SIGKILL (no shutdown hooks, no flush), boot a fresh
    process on the same directory and ask for the record back.
    """
    appended = "zuzanna restarska"
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        process, url = boot_server(names_path, store_dir=store_dir)
        try:
            with ServiceClient(url, token=TOKEN) as client:
                before = client.append([appended])["records"]
        finally:
            process.kill()  # SIGKILL: the WAL is all that saves us
            process.wait(timeout=10)

        process, url = boot_server(names_path, store_dir=store_dir)
        try:
            with ServiceClient(url, token=TOKEN) as client:
                store = client.health()["store"]
                assert store["loaded"], "restart should load the snapshot"
                hits = client.search((appended,), k=1)
                (best_name, best_distance), = hits.matches[0]
                assert best_name == appended and best_distance == 0.0, (
                    f"WAL-logged append lost across SIGKILL: {hits.matches}"
                )
                print(
                    f"warm restart after SIGKILL: {before} records survived "
                    f"(snapshot loaded: {store['loaded']}, WAL records "
                    f"replayed: {store['wal_records']}); "
                    f"{appended!r} still served at distance 0.0"
                )
        finally:
            process.terminate()
            process.wait(timeout=10)


def sharded_warm_restart(names_path: str) -> None:
    """The sharded durability pass: ``--shards 4 --store``, SIGKILL,
    warm restart -- and the restarted shards must serve the pre-kill
    appends *byte-identically* to an unsharded store fed the same
    history (shard-count invariance surviving a crash).
    """
    appended = "zuzanna restarska"
    queries = ("zuzana restarski", "veronika dhal")

    def serve_history(store_dir: str, shards: int) -> dict:
        """Boot, append (with an idempotent retry), SIGKILL, restart,
        and return the post-restart search envelope."""
        process, url = boot_server(names_path, store_dir=store_dir, shards=shards)
        try:
            with ServiceClient(url, token=TOKEN) as client:
                before = client.append([appended])["records"]
                # The at-least-once retry, made exactly-once by ``base``:
                # replaying the acknowledged append is a no-op.
                retried = client.append([appended], base=before - 1)["records"]
                assert retried == before, "base replay double-applied"
        finally:
            process.kill()  # SIGKILL: the WAL is all that saves us
            process.wait(timeout=10)
        process, url = boot_server(names_path, store_dir=store_dir, shards=shards)
        try:
            with ServiceClient(url, token=TOKEN) as client:
                health = client.health()
                assert health["store"]["loaded"], "restart should load snapshots"
                if shards:
                    assert health["shards"]["shards"] == shards, health
                envelope = client.search(queries, k=3).to_dict()
                for volatile in ("build_seconds", "query_seconds"):
                    envelope.pop(volatile, None)
                return envelope
        finally:
            process.terminate()
            process.wait(timeout=10)

    with (
        tempfile.TemporaryDirectory(prefix="repro-shard-store-") as sharded_dir,
        tempfile.TemporaryDirectory(prefix="repro-flat-store-") as flat_dir,
    ):
        sharded = serve_history(sharded_dir, shards=4)
        flat = serve_history(flat_dir, shards=0)
        assert sharded == flat, (
            "sharded warm restart diverged from the unsharded store"
        )
        print(
            "sharded warm restart after SIGKILL: 4 shards replayed the WAL "
            "and answered byte-identically to the unsharded store "
            f"(matches, counters and all; {appended!r} survived)"
        )


def main(corpus_size: int = 300) -> None:
    generator = NameGenerator(seed=21)
    names = generator.generate(corpus_size)
    fraud = FraudRingGenerator(seed=22, max_edits=2)
    names.extend(fraud.make_ring("veronika dahl", 4))

    with tempfile.NamedTemporaryFile(
        "w", suffix=".txt", delete=False, encoding="utf-8"
    ) as handle:
        handle.write("\n".join(names) + "\n")
        names_path = handle.name

    process, url = boot_server(names_path)
    try:
        with ServiceClient(url, token=TOKEN) as client:
            health = client.health()
            print(f"server up at {url} (wire version {health['version']})")

            # The same spec, both transports.  The resident default
            # corpus lives server-side; the local twin loads it itself.
            spec = JoinSpec(algorithm="tsj", threshold=0.2, names=names)
            remote = client.run(spec)
            local = Session().run(spec)
            agree = (
                remote.pairs == local.pairs
                and remote.clusters == local.clusters
                and remote.counters == local.counters
            )
            print(
                f"join over HTTP: {len(remote.pairs)} pairs, "
                f"{len(remote.clusters)} clusters "
                f"(matches in-process run: {agree})"
            )

            # Top-k against the server's resident corpus (names=None):
            # no corpus shipped per request, the session keeps it hot.
            hits = client.search(("veronika dhal",), k=3)
            best_name, best_distance = hits.matches[0][0]
            print(
                f"top-3 for 'veronika dhal' served remotely; best: "
                f"{best_name!r} at NSLD {best_distance:.3f}"
            )

            knn = client.run(TopKSpec(queries=("veronika dhal",), k=3))
            print(f"declarative run() round-trip: kind={knn.kind!r}")

            # Remote validation failures raise the same typed errors the
            # in-process facade does -- rebuilt from the error envelope.
            try:
                client.run({"type": "join", "version": 99})
            except ValidationError as exc:
                print(f"bad wire version rejected remotely: {exc}")

            # Saturate the one admission slot with a long join, then
            # watch a second request get shed (503 + Retry-After) and
            # ride the SDK's retry loop to a correct answer anyway.
            shed_and_retry(client, url)

            metrics = client.metrics()
            print(
                f"server metrics: {metrics['requests_total']} requests, "
                f"{metrics['session']['resident_corpora']} resident corpora, "
                f"{metrics['admission']['shed_total']} shed"
            )
    finally:
        process.terminate()
        process.wait(timeout=10)

    try:
        # A second pair of server processes around a SIGKILL: the
        # durable-store demo needs full crash-and-reboot control --
        # then the same crash against a sharded store, checked
        # byte-identical to an unsharded one.
        warm_restart(names_path)
        sharded_warm_restart(names_path)
    finally:
        os.unlink(names_path)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
