"""Scalability study: TSJ vs the metric-space baseline (Figs. 1 and 7).

Runs the same NSLD self-join with TSJ (both dedup strategies) and with the
Hybrid Metric Joiner across simulated cluster sizes, printing the runtime
curves whose *shape* the paper reports: sublinear speedup for TSJ,
grouping-on-one beating grouping-on-both, and HMJ an order of magnitude
behind.

Run:  python examples/scaling_study.py [corpus_size]
"""

import sys

from repro.data import evaluation_corpus
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.metricspace import HMJ
from repro.tokenize import tokenize
from repro.tsj import TSJ, TSJConfig


def main(corpus_size: int = 400) -> None:
    names, _ = evaluation_corpus(corpus_size, seed=11)
    records = [tokenize(name) for name in names]
    machine_counts = [2, 4, 8, 16, 32]

    print(f"NSLD self-join of {len(records)} names, T = 0.1\n")
    header = f"{'machines':>9s} {'TSJ/one':>10s} {'TSJ/both':>10s} {'HMJ':>10s}"
    print(header)
    print("-" * len(header))

    reference_pairs = None
    for n_machines in machine_counts:
        engine = MapReduceEngine(ClusterConfig(n_machines=n_machines))
        tsj_one = TSJ(TSJConfig(threshold=0.1, dedup="one"), engine).self_join(
            records
        )
        tsj_both = TSJ(TSJConfig(threshold=0.1, dedup="both"), engine).self_join(
            records
        )
        hmj = HMJ(engine, 0.1, partition_limit=64, seed=1).self_join(records)
        print(
            f"{n_machines:>9d} "
            f"{tsj_one.simulated_seconds():>9.1f}s "
            f"{tsj_both.simulated_seconds():>9.1f}s "
            f"{hmj.simulated_seconds():>9.1f}s"
        )
        if reference_pairs is None:
            reference_pairs = tsj_one.pairs
        assert tsj_both.pairs == reference_pairs

    print(
        "\nNote: runtimes are simulated makespans from the metered MapReduce "
        "engine;\nresults are identical across cluster sizes by construction."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
