"""K-nearest-neighbour queries over NSLD with metric indexes.

Sec. II of the paper: proving NSLD a metric means it "can be leveraged in
all flavors of K-nearest-neighbor queries on metric spaces".  This example
builds a BK-tree (over the integer SLD) and a VP-tree (over NSLD) on an
account-name corpus and answers the online-serving counterpart of the
batch join: "which known accounts look like this new signup?"

Run:  python examples/knn_search.py [corpus_size]
"""

import sys
import time

from repro.data import FraudRingGenerator, NameGenerator
from repro.distances import nsld
from repro.knn import BKTree, VPTree
from repro.tokenize import tokenize


def main(corpus_size: int = 2000) -> None:
    generator = NameGenerator(seed=13)
    names = generator.generate(corpus_size)
    # Plant a known bad actor's ring so queries have true near-neighbours.
    fraud = FraudRingGenerator(seed=14, max_edits=2)
    ring = fraud.make_ring("vladimir aleksandrov", 8)
    names.extend(ring)
    records = [tokenize(name) for name in names]

    print(f"indexing {len(records)} account names ...")
    t0 = time.perf_counter()
    bk = BKTree()
    bk.extend(records)
    t_bk = time.perf_counter() - t0
    t0 = time.perf_counter()
    vp = VPTree(records, seed=1)
    t_vp = time.perf_counter() - t0
    print(f"  BK-tree (SLD) built in {t_bk:.2f}s, VP-tree (NSLD) in {t_vp:.2f}s")

    # A new signup that is a fresh perturbation of the bad actor's name.
    signup = fraud.perturb("vladimir aleksandrov")
    query = tokenize(signup)
    print(f"\nnew signup: {signup!r}")

    print("\n5 nearest accounts (VP-tree, NSLD):")
    for item, distance in vp.nearest(query, 5):
        print(f"  {distance:.4f}  {item}")
    vp_evals = vp.last_query_evaluations

    print("\naccounts within SLD <= 4 (BK-tree):")
    for item, distance in bk.within(query, 4)[:8]:
        print(f"  {int(distance)}  {item}")
    bk_evals = bk.last_query_evaluations

    brute = len(records)
    print(
        f"\ndistance evaluations: VP-tree k-NN {vp_evals}/{brute} "
        f"({vp_evals / brute:.0%} of linear scan), "
        f"BK-tree range {bk_evals}/{brute} ({bk_evals / brute:.0%})"
    )

    # Sanity: index answers match a linear scan.
    best_brute = min(nsld(query, record) for record in records)
    best_index = vp.nearest(query, 1)[0][1]
    assert abs(best_brute - best_index) < 1e-12
    print("index results verified against linear scan.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
