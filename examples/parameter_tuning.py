"""Tuning the join parameters (T, M) against a labelled sample.

Footnote 5 of the paper: per geo-location, "a gradient descent search is
performed to set these parameters.  At each ... evaluation, a sample of
the clusters is evaluated by the operations team ... The values of 0.1 and
1,000 constitute a reasonable starting point".  Here, planted fraud rings
play the operations team: the tuner coordinate-descends over a (T, M) grid
maximising F-beta of the discovered pairs against the ring ground truth.

Run:  python examples/parameter_tuning.py
"""

from repro.analysis.tuning import tune_parameters
from repro.data import corpus_with_rings
from repro.tokenize import tokenize


def ring_pairs(rings):
    pairs = set()
    for ring in rings:
        members = sorted(ring)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pairs.add((members[i], members[j]))
    return pairs


def main(n_background: int = 250, n_rings: int = 8) -> None:
    names, rings = corpus_with_rings(n_background, n_rings, 5, seed=21, max_edits=2)
    records = [tokenize(name) for name in names]
    truth = ring_pairs(rings)
    print(f"corpus: {len(records)} accounts, {len(rings)} rings, "
          f"{len(truth)} ground-truth pairs")

    for beta, audience in ((1.0, "balanced"), (2.0, "abuse team (recall-leaning)")):
        result = tune_parameters(
            records,
            truth,
            thresholds=(0.05, 0.1, 0.15, 0.2, 0.25),
            max_frequencies=(20, 50, 100, None),
            beta=beta,
        )
        print(f"\nobjective F{beta:g} ({audience}):")
        print(
            f"  best: T = {result.threshold}, M = "
            f"{result.max_token_frequency}, score = {result.score:.3f} "
            f"({result.evaluations} evaluations)"
        )
        print("  search trace (T, M, score):")
        for threshold, max_frequency, score in result.trace[:8]:
            print(f"    {threshold:<5} {str(max_frequency):<5} {score:.3f}")


if __name__ == "__main__":
    main()
