"""The declarative front door: specs in, uniform envelopes out.

One :class:`repro.Session` serves every request shape against a resident
corpus: a join under any registered algorithm (the paper's TSJ pipeline
is just the default choice), top-k and range search over the resident
:class:`repro.service.SimilarityIndex`, and bare comparisons.  Requests
and results are plain JSON on the wire -- exactly what the CLI's
``run --spec spec.json`` / ``--json`` modes speak, and what a future
server/router would ship between processes.

Run:  python examples/declarative_api.py [corpus_size]
"""

import sys

from repro import (
    CompareSpec,
    JoinSpec,
    ResultSet,
    Session,
    TopKSpec,
    WithinSpec,
    spec_from_json,
)
from repro.api import join_algorithms, search_methods
from repro.data import FraudRingGenerator, NameGenerator


def main(corpus_size: int = 400) -> None:
    generator = NameGenerator(seed=13)
    names = generator.generate(corpus_size)
    fraud = FraudRingGenerator(seed=14, max_edits=2)
    names.extend(fraud.make_ring("vladimir aleksandrov", 5))

    # One session owns the tokenizer and the resident corpus: every spec
    # below reuses the same tokenization and the same serving index.
    session = Session(names)
    print(f"registered join algorithms: {', '.join(join_algorithms())}")
    print(f"registered search methods:  {', '.join(search_methods())}")

    # ------------------------------------------------------------------
    # 1. Joins are one algorithm choice in a spec.  Same corpus, same
    #    session -- different algorithms, uniform envelopes.
    # ------------------------------------------------------------------
    print("\n== joins ==")
    for spec in (
        JoinSpec(algorithm="tsj", threshold=0.15),
        JoinSpec(algorithm="quickjoin", threshold=0.15),
        JoinSpec(algorithm="passjoin", threshold=2),
    ):
        result = session.run(spec)
        simulated = (
            f", {result.simulated_seconds:.0f}s simulated"
            if result.simulated_seconds is not None
            else ""
        )
        print(
            f"  {spec.algorithm:10s} {len(result.pairs):3d} similar pairs "
            f"({result.score_kind}){simulated}; "
            f"{len(result.clusters)} clusters"
        )

    # ------------------------------------------------------------------
    # 2. Search specs hit the resident index (built once, reused).
    # ------------------------------------------------------------------
    print("\n== search ==")
    signup = fraud.perturb("vladimir aleksandrov")
    topk = session.run(TopKSpec(queries=(signup,), k=3))
    print(f"  top-3 for new signup {signup!r}:")
    for name, distance in topk.matches[0]:
        print(f"    {distance:.4f}  {name}")
    print(
        f"  (index built once in {topk.build_seconds:.3f}s, "
        f"query served in {topk.query_seconds:.3f}s)"
    )
    within = session.run(WithinSpec(queries=(signup,), radius=0.25))
    print(f"  {len(within.matches[0])} accounts within NSLD 0.25")

    compare = session.run(CompareSpec(name_a=signup, name_b=names[-1]))
    print(f"  NSLD(signup, ring member) = {compare.value:.4f}")

    # ------------------------------------------------------------------
    # 3. The wire format: specs and envelopes round-trip through JSON.
    # ------------------------------------------------------------------
    print("\n== wire format ==")
    spec = JoinSpec(algorithm="tsj", threshold=0.15)
    wire = spec.to_json()
    print(f"  spec on the wire: {wire}")
    assert spec_from_json(wire) == spec
    envelope = session.run(spec)
    restored = ResultSet.from_json(envelope.to_json())
    assert restored == envelope
    print(
        f"  envelope round-trips: {len(envelope.to_json())} JSON bytes, "
        f"{len(restored.pairs)} pairs intact"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
