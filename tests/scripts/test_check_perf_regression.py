"""Tests for the CI perf gate itself (``scripts/check_perf_regression.py``).

The gate is what keeps the perf trajectory honest, so its pass / fail /
missing-file / ``--relative`` paths get the same coverage as product
code.  The script is not a package; it is loaded straight from its file
path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parent.parent.parent
    / "scripts"
    / "check_perf_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_report(
    path: Path,
    pairs_per_sec: dict[str, float],
    speedup_vs_dp: dict[str, float] | None = None,
    gated: list[str] | None = None,
) -> Path:
    report: dict = {"pairs_per_sec": pairs_per_sec}
    if speedup_vs_dp is not None:
        report["speedup_vs_dp"] = speedup_vs_dp
    if gated is not None:
        report["gated"] = gated
    path.write_text(json.dumps(report), encoding="utf-8")
    return path


BASE = {"dp": 1000.0, "bitparallel": 7000.0}


class TestAbsoluteMode:
    def test_passes_when_rates_hold(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(
            tmp_path / "cur.json", {"dp": 980.0, "bitparallel": 7100.0}
        )
        assert gate.main(["prog", str(current), str(baseline)]) == 0
        assert "no perf regression" in capsys.readouterr().out

    def test_small_dip_within_tolerance_passes(self, gate, tmp_path):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(
            tmp_path / "cur.json", {"dp": 750.0, "bitparallel": 5000.0}
        )
        assert gate.main(["prog", str(current), str(baseline)]) == 0

    def test_fails_on_regression(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(
            tmp_path / "cur.json", {"dp": 990.0, "bitparallel": 900.0}
        )
        assert gate.main(["prog", str(current), str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "perf regression detected" in out
        assert "bitparallel" in out

    def test_fails_on_missing_series(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(tmp_path / "cur.json", {"dp": 1000.0})
        assert gate.main(["prog", str(current), str(baseline)]) == 1
        assert "missing from the fresh bench" in capsys.readouterr().out

    def test_gated_list_filters_baseline_series(self, gate, tmp_path):
        """Series outside the baseline's ``gated`` list are trajectory-only
        and must not fail the gate."""
        baseline = write_report(
            tmp_path / "base.json",
            {"dp": 1000.0, "batched_mp2": 9000.0},
            gated=["dp"],
        )
        current = write_report(
            tmp_path / "cur.json", {"dp": 1000.0, "batched_mp2": 10.0}
        )
        assert gate.main(["prog", str(current), str(baseline)]) == 0


class TestMissingFiles:
    def test_missing_baseline_is_not_an_error(self, gate, tmp_path, capsys):
        current = write_report(tmp_path / "cur.json", BASE)
        missing = tmp_path / "nope.json"
        assert gate.main(["prog", str(current), str(missing)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_missing_current_fails(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        missing = tmp_path / "nope.json"
        assert gate.main(["prog", str(missing), str(baseline)]) == 1
        assert "no fresh bench" in capsys.readouterr().out


class TestRelativeMode:
    def test_relative_compares_speedups_not_rates(self, gate, tmp_path):
        """A uniformly slower machine passes ``--relative``: the kernels'
        ratio is what must hold, not the absolute pairs/sec."""
        baseline = write_report(
            tmp_path / "base.json",
            BASE,
            speedup_vs_dp={"dp": 1.0, "bitparallel": 7.0},
        )
        current = write_report(
            tmp_path / "cur.json",
            {"dp": 100.0, "bitparallel": 700.0},  # 10x slower machine
            speedup_vs_dp={"dp": 1.0, "bitparallel": 7.0},
        )
        assert gate.main(["prog", "--relative", str(current), str(baseline)]) == 0

    def test_relative_catches_lost_fast_path(self, gate, tmp_path, capsys):
        baseline = write_report(
            tmp_path / "base.json",
            BASE,
            speedup_vs_dp={"dp": 1.0, "bitparallel": 7.0},
        )
        current = write_report(
            tmp_path / "cur.json",
            {"dp": 1000.0, "bitparallel": 1100.0},
            speedup_vs_dp={"dp": 1.0, "bitparallel": 1.1},
        )
        assert gate.main(["prog", "--relative", str(current), str(baseline)]) == 1
        assert "x vs dp" in capsys.readouterr().out

    def test_relative_flag_position_independent(self, gate, tmp_path):
        baseline = write_report(
            tmp_path / "base.json",
            BASE,
            speedup_vs_dp={"dp": 1.0, "bitparallel": 7.0},
        )
        current = write_report(
            tmp_path / "cur.json",
            BASE,
            speedup_vs_dp={"dp": 1.0, "bitparallel": 7.0},
        )
        assert gate.main(["prog", str(current), str(baseline), "--relative"]) == 0


class TestSeriesOverride:
    def test_series_flag_selects_custom_series(self, gate, tmp_path, capsys):
        """``--series`` gates an arbitrary series (the candidate-pipeline
        bench ships ``speedup_vs_dict``)."""
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps({"speedup_vs_dict": {"passjoin": 1.4, "qgram": 1.2}}),
            encoding="utf-8",
        )
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps({"speedup_vs_dict": {"passjoin": 1.5, "qgram": 1.1}}),
            encoding="utf-8",
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--relative",
                    "--series",
                    "speedup_vs_dict",
                    str(current),
                    str(baseline),
                ]
            )
            == 0
        )
        assert "speedup_vs_dict" in capsys.readouterr().out

    def test_series_flag_without_value_fails_cleanly(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(tmp_path / "cur.json", BASE)
        assert gate.main(["prog", str(current), str(baseline), "--series"]) == 1
        assert "--series requires a value" in capsys.readouterr().out

    def test_unknown_series_fails_cleanly(self, gate, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", BASE)
        current = write_report(tmp_path / "cur.json", BASE)
        assert (
            gate.main(["prog", "--series", "nope", str(current), str(baseline)]) == 1
        )
        assert "no series 'nope'" in capsys.readouterr().out

    def test_series_flag_catches_regression(self, gate, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps({"speedup_vs_dict": {"passjoin": 1.4}}), encoding="utf-8"
        )
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps({"speedup_vs_dict": {"passjoin": 0.6}}), encoding="utf-8"
        )
        assert (
            gate.main(
                ["prog", "--series", "speedup_vs_dict", str(current), str(baseline)]
            )
            == 1
        )


class TestRepeatedSeries:
    """One invocation gating several series of the same bench JSON."""

    def write_multi(self, path: Path, speedups, hit_rates) -> Path:
        path.write_text(
            json.dumps(
                {
                    "speedup_vs_rebuild": speedups,
                    "resident_hit_rate": hit_rates,
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_all_series_pass(self, gate, tmp_path, capsys):
        baseline = self.write_multi(
            tmp_path / "base.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        current = self.write_multi(
            tmp_path / "cur.json", {"join_x10": 9.5}, {"join": 0.9}
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    "--series",
                    "resident_hit_rate",
                    str(current),
                    str(baseline),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "-- series speedup_vs_rebuild" in out
        assert "-- series resident_hit_rate" in out

    def test_any_series_regression_fails(self, gate, tmp_path, capsys):
        """A healthy first series must not mask a regressed second one."""
        baseline = self.write_multi(
            tmp_path / "base.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        current = self.write_multi(
            tmp_path / "cur.json", {"join_x10": 9.5}, {"join": 0.1}
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    "--series",
                    "resident_hit_rate",
                    str(current),
                    str(baseline),
                ]
            )
            == 1
        )
        assert "perf regression detected" in capsys.readouterr().out

    def test_missing_series_fails_cleanly(self, gate, tmp_path, capsys):
        baseline = self.write_multi(
            tmp_path / "base.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        current = self.write_multi(
            tmp_path / "cur.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    "--series",
                    "nope",
                    str(current),
                    str(baseline),
                ]
            )
            == 1
        )
        assert "no series 'nope'" in capsys.readouterr().out

    def test_single_series_output_unchanged(self, gate, tmp_path, capsys):
        """No ``-- series`` headers when only one series is gated."""
        baseline = self.write_multi(
            tmp_path / "base.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        current = self.write_multi(
            tmp_path / "cur.json", {"join_x10": 9.0}, {"join": 0.9}
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    str(current),
                    str(baseline),
                ]
            )
            == 0
        )
        assert "-- series" not in capsys.readouterr().out

    def test_series_fully_filtered_by_gated_fails(self, gate, tmp_path, capsys):
        """A requested series whose keys are all outside 'gated' must not
        pass vacuously -- that is a disabled gate, not a green one."""
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(
                {
                    "gated": ["join_x10"],  # no resident_hit_rate keys
                    "speedup_vs_rebuild": {"join_x10": 9.0},
                    "resident_hit_rate": {"join": 0.9},
                }
            ),
            encoding="utf-8",
        )
        current = self.write_multi(
            tmp_path / "cur.json", {"join_x10": 9.0}, {"join": 0.0}
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    "--series",
                    "resident_hit_rate",
                    str(current),
                    str(baseline),
                ]
            )
            == 1
        )
        assert "not actually gated" in capsys.readouterr().out

    def test_gated_list_applies_per_series(self, gate, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(
                {
                    "gated": ["join_x10", "join"],
                    "speedup_vs_rebuild": {"join_x10": 9.0, "extra": 99.0},
                    "resident_hit_rate": {"join": 0.9, "extra": 1.0},
                }
            ),
            encoding="utf-8",
        )
        current = self.write_multi(
            tmp_path / "cur.json",
            {"join_x10": 9.0, "extra": 1.0},  # "extra" collapsed: not gated
            {"join": 0.9, "extra": 0.0},
        )
        assert (
            gate.main(
                [
                    "prog",
                    "--series",
                    "speedup_vs_rebuild",
                    "--series",
                    "resident_hit_rate",
                    str(current),
                    str(baseline),
                ]
            )
            == 0
        )


class TestRepoBaseline:
    def test_committed_baseline_is_wellformed(self, gate):
        """The committed baseline must always carry the series and the
        gated list the gate reads."""
        baseline = json.loads(gate.DEFAULT_BASELINE.read_text(encoding="utf-8"))
        assert set(baseline["gated"]) <= set(baseline["pairs_per_sec"])
        assert set(baseline["gated"]) <= set(baseline["speedup_vs_dp"])

    def test_committed_candidates_baseline_is_wellformed(self, gate):
        path = (
            gate.DEFAULT_BASELINE.parent / "BENCH_candidates_baseline.json"
        )
        baseline = json.loads(path.read_text(encoding="utf-8"))
        assert set(baseline["gated"]) <= set(baseline["speedup_vs_dict"])
        for family in baseline["gated"]:
            assert baseline["speedup_vs_dict"][family] > 0

    def test_committed_query_baseline_is_wellformed(self, gate):
        """The query-serving baseline must carry both gated series and
        record the acceptance bar: >= 5x over rebuild-per-call."""
        path = gate.DEFAULT_BASELINE.parent / "BENCH_query_baseline.json"
        baseline = json.loads(path.read_text(encoding="utf-8"))
        for series in ("speedup_vs_rebuild", "resident_hit_rate"):
            assert series in baseline
        for family, speedup in baseline["speedup_vs_rebuild"].items():
            assert speedup >= 5.0, f"{family} below the 5x acceptance bar"
        for family, rate in baseline["resident_hit_rate"].items():
            assert 0.0 < rate <= 1.0
