"""Property tests for the serving layer's :class:`SimilarityIndex`.

The contracts under test are the ones the serving layer advertises:

* ``topk`` / ``within`` agree exactly with the brute-force NSLD oracle
  (every record scored with :func:`repro.distances.setwise.nsld`, ties
  broken by record id) across K, radius and corpus shape;
* ``append`` + query equals rebuild + query;
* ``join`` is byte-identical to :func:`repro.core.nsld_join` -- same
  pair triples, same counters, same simulated seconds -- and repeated
  joins are answered from the bounded LRU result cache;
* snapshots survive pickling (the pool-broadcast payload).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import nsld_join
from repro.data import evaluation_corpus
from repro.distances.setwise import nsld, sld
from repro.knn import FuzzyMatchIndex
from repro.service import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES, SimilarityIndex
from repro.tokenize import tokenize

NAMES = [
    "barak obama",
    "borak obama",
    "john smith",
    "jon smith",
    "smith, john",
    "mary williams",
    "ann lee",
    "ann lee",  # duplicate record
    "a",
    "!!!",  # tokenizes to the empty record
]

QUERIES = ["barak obana", "john smith", "ann leex", "zzz qqq", "a", "...", ""]


def oracle_topk(names, query, k):
    query_record = tokenize(query)
    scored = sorted(
        (nsld(query_record, tokenize(name)), index)
        for index, name in enumerate(names)
    )
    return [(names[index], distance) for distance, index in scored[:k]]


def oracle_within(names, query, radius):
    query_record = tokenize(query)
    scored = sorted(
        (distance, index)
        for index, name in enumerate(names)
        if (distance := nsld(query_record, tokenize(name))) <= radius
    )
    return [(names[index], distance) for distance, index in scored]


#: Hypothesis "names": 1-3 short tokens over a tiny alphabet.
def names_strategy(min_size=0, max_size=8):
    token = st.text(alphabet="ab", min_size=1, max_size=4)
    name = st.lists(token, min_size=1, max_size=3).map(" ".join)
    return st.lists(name, min_size=min_size, max_size=max_size)


class TestTopKOracle:
    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_bruteforce(self, query, k):
        index = SimilarityIndex(NAMES)
        assert index.topk([query], k=k)[0] == oracle_topk(NAMES, query, k)

    def test_corpus_scale(self):
        names, _ = evaluation_corpus(60, seed=13)
        index = SimilarityIndex(names)
        for query in [names[7], names[30] + "x", "barak obana"]:
            for k in (1, 5, 12):
                assert index.topk([query], k=k)[0] == oracle_topk(
                    names, query, k
                )

    def test_batch_aligned_with_queries(self):
        index = SimilarityIndex(NAMES)
        results = index.topk(QUERIES, k=2)
        assert len(results) == len(QUERIES)
        for query, result in zip(QUERIES, results):
            assert result == oracle_topk(NAMES, query, 2)

    def test_single_string_treated_as_batch_of_one(self):
        index = SimilarityIndex(NAMES)
        assert index.topk("john smith", k=1) == [
            oracle_topk(NAMES, "john smith", 1)
        ]

    def test_k_larger_than_collection(self):
        index = SimilarityIndex(NAMES[:3])
        assert len(index.topk(["x"], k=50)[0]) == 3

    def test_empty_collection(self):
        index = SimilarityIndex([])
        assert index.topk(["anything"], k=3) == [[]]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SimilarityIndex(NAMES).topk(["x"], k=0)

    def test_boundary_tie_between_verify_paths(self):
        """Regression (hypothesis-found): the single-token batched path
        and the Hungarian path must agree when a distance ties with the
        search radius exactly, so the (distance, id) tie-break holds."""
        index = SimilarityIndex(["b", "a a a"])
        assert index.topk(["a"], k=1)[0] == [("b", 2.0 / 3.0)]

    @settings(max_examples=40, deadline=None)
    @given(names=names_strategy(), query=st.text(alphabet="ab ", max_size=10),
           k=st.integers(1, 6))
    def test_property_matches_bruteforce(self, names, query, k):
        index = SimilarityIndex(names)
        assert index.topk([query], k=k)[0] == oracle_topk(names, query, k)


class TestWithinOracle:
    @pytest.mark.parametrize("radius", [0.0, 0.05, 0.15, 0.5, 0.99, 1.0])
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_bruteforce(self, query, radius):
        index = SimilarityIndex(NAMES)
        assert index.within([query], radius=radius)[0] == oracle_within(
            NAMES, query, radius
        )

    def test_radius_one_returns_everything(self):
        index = SimilarityIndex(NAMES)
        assert len(index.within(["no such name"], radius=1.0)[0]) == len(NAMES)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SimilarityIndex(NAMES).within(["x"], radius=-0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        names=names_strategy(),
        query=st.text(alphabet="ab ", max_size=10),
        radius=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_property_matches_bruteforce(self, names, query, radius):
        index = SimilarityIndex(names)
        assert index.within([query], radius=radius)[0] == oracle_within(
            names, query, radius
        )


class TestAppend:
    def test_append_equals_rebuild(self):
        names, _ = evaluation_corpus(40, seed=3)
        grown = SimilarityIndex(names[:20])
        grown.append(names[20:])
        fresh = SimilarityIndex(names)
        for query in [names[5], names[35], "barak obana"]:
            assert grown.topk([query], k=6) == fresh.topk([query], k=6)
            assert grown.within([query], radius=0.3) == fresh.within(
                [query], radius=0.3
            )
        assert grown.join(engine="serial").pairs == fresh.join(
            engine="serial"
        ).pairs

    def test_append_invalidates_cached_results(self):
        index = SimilarityIndex(["ann lee", "bob stone"])
        before = index.topk(["ann leex"], k=2)[0]
        index.append(["ann leex"])
        after = index.topk(["ann leex"], k=2)[0]
        assert after != before
        assert after[0] == ("ann leex", 0.0)

    def test_incremental_structures_grow_in_place(self):
        index = SimilarityIndex(["ann lee"])
        vocab, postings = index.vocab, index.token_postings
        index.append(["bob stone", "ann stone"])
        # Same objects, extended -- no rebuild.
        assert index.vocab is vocab
        assert index.token_postings is postings
        assert len(index) == 3

    @settings(max_examples=30, deadline=None)
    @given(
        first=names_strategy(),
        second=names_strategy(),
        query=st.text(alphabet="ab ", max_size=8),
    )
    def test_property_append_equals_rebuild(self, first, second, query):
        grown = SimilarityIndex(first)
        grown.append(second)
        fresh = SimilarityIndex(first + second)
        assert grown.topk([query], k=4) == fresh.topk([query], k=4)


class TestJoin:
    def test_byte_identical_to_nsld_join(self):
        names, _ = evaluation_corpus(50, seed=9)
        index = SimilarityIndex(names)
        resident = index.join(threshold=0.1, engine="serial")
        rebuilt = nsld_join(names, threshold=0.1, engine="serial")
        assert resident.pairs == rebuilt.pairs
        assert resident.clusters == rebuilt.clusters
        assert resident.index_pairs == rebuilt.index_pairs
        assert resident.simulated_seconds == rebuilt.simulated_seconds
        assert resident.counters == rebuilt.counters

    def test_repeated_join_hits_cache(self):
        index = SimilarityIndex(["ann lee", "ann leex", "bob stone"])
        first = index.join(threshold=0.2, engine="serial")
        hits_before = index.counters[COUNTER_CACHE_HITS]
        second = index.join(threshold=0.2, engine="serial")
        assert second is first  # the cached object
        assert index.counters[COUNTER_CACHE_HITS] == hits_before + 1

    def test_engine_excluded_from_cache_key(self):
        index = SimilarityIndex(["ann lee", "ann leex", "bob stone"])
        serial = index.join(threshold=0.2, engine="serial")
        assert index.join(threshold=0.2, engine="auto") is serial

    def test_distinct_parameters_cached_separately(self):
        index = SimilarityIndex(["ann lee", "ann leex", "bob stone"])
        loose = index.join(threshold=0.3, engine="serial")
        tight = index.join(threshold=0.01, engine="serial")
        assert loose.pairs != tight.pairs

    def test_nsld_join_index_entry_point(self):
        names = ["barak obama", "borak obama", "john smith"]
        index = SimilarityIndex(names)
        via_index = nsld_join(index=index, threshold=0.15, engine="serial")
        direct = nsld_join(names, threshold=0.15, engine="serial")
        assert via_index.pairs == direct.pairs
        assert via_index.simulated_seconds == direct.simulated_seconds

    def test_nsld_join_rejects_names_and_index(self):
        index = SimilarityIndex(["a b"])
        with pytest.raises(ValueError):
            nsld_join(["a b"], index=index)
        with pytest.raises(ValueError):
            nsld_join()


class TestResultCache:
    def test_repeated_queries_hit(self):
        index = SimilarityIndex(NAMES)
        index.topk(["barak obana"], k=3)
        misses = index.counters[COUNTER_CACHE_MISSES]
        index.topk(["barak obana"], k=3)
        assert index.counters[COUNTER_CACHE_HITS] >= 1
        assert index.counters[COUNTER_CACHE_MISSES] == misses

    def test_cache_capacity_bounded(self):
        index = SimilarityIndex(NAMES, cache_size=4)
        for i in range(50):
            index.topk([f"query {i}"], k=1)
        assert len(index.result_cache) <= 4

    def test_cache_disabled(self):
        index = SimilarityIndex(NAMES, cache_size=0)
        index.topk(["x"], k=1)
        index.topk(["x"], k=1)
        assert index.counters[COUNTER_CACHE_HITS] == 0

    def test_mutating_a_result_does_not_corrupt_the_cache(self):
        index = SimilarityIndex(NAMES)
        first = index.topk(["barak obana"], k=3)[0]
        expected = list(first)
        first.clear()  # the caller's copy, never the cached list
        assert index.topk(["barak obana"], k=3)[0] == expected
        ranged = index.within(["john smith"], radius=0.2)[0]
        expected_range = list(ranged)
        ranged.reverse()
        assert index.within(["john smith"], radius=0.2)[0] == expected_range


class TestServingBackends:
    def test_vptree_matches_oracle_distances(self):
        names, _ = evaluation_corpus(30, seed=21)
        index = SimilarityIndex(names)
        query = names[4] + "x"
        got = index.topk([query], k=5, method="vptree")[0]
        want = oracle_topk(names, query, 5)
        assert [distance for _, distance in got] == [
            distance for _, distance in want
        ]

    def test_bktree_serves_sld(self):
        index = SimilarityIndex(NAMES)
        got = index.topk(["john smith"], k=2, method="bktree")[0]
        assert got[0][1] == 0.0  # exact match at SLD 0
        query_record = tokenize("john smith")
        for name, distance in got:
            assert distance == float(sld(query_record, tokenize(name)))

    def test_fuzzymatch_matches_direct_index(self):
        index = SimilarityIndex(NAMES)
        got = index.topk(["john smith"], k=3, method="fuzzymatch")[0]
        direct = FuzzyMatchIndex(
            [list(tokenize(name).tokens) for name in NAMES]
        ).query(list(tokenize("john smith").tokens), k=3)
        assert got == [
            (" ".join(tokens), score) for tokens, score in direct
        ]

    def test_within_on_metric_trees(self):
        names, _ = evaluation_corpus(25, seed=2)
        index = SimilarityIndex(names)
        query = names[3]
        cascade = index.within([query], radius=0.25)[0]
        vptree = index.within([query], radius=0.25, method="vptree")[0]
        assert sorted(cascade) == sorted(vptree)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            SimilarityIndex(NAMES).topk(["x"], k=1, method="nope")

    def test_fuzzymatch_within_rejected(self):
        with pytest.raises(ValueError):
            SimilarityIndex(NAMES).within(["x"], radius=0.2, method="fuzzymatch")

    def test_prepare_builds_backends_eagerly(self):
        index = SimilarityIndex(NAMES).prepare("vptree", "cascade")
        assert "vptree" in index._knn


class TestSnapshotPickling:
    def test_roundtrip_serves_identically(self):
        names, _ = evaluation_corpus(30, seed=5)
        index = SimilarityIndex(names)
        index.topk([names[2]], k=3)  # warm caches and masks
        clone = pickle.loads(pickle.dumps(index))
        for query in [names[2], "barak obana"]:
            assert clone.topk([query], k=4) == index.topk([query], k=4)

    def test_roundtrip_after_backend_build(self):
        index = SimilarityIndex(NAMES).prepare("vptree", "fuzzymatch")
        clone = pickle.loads(pickle.dumps(index))  # closures dropped
        assert clone.topk(["john smith"], k=1, method="vptree") == index.topk(
            ["john smith"], k=1, method="vptree"
        )


class TestCounters:
    def test_canonical_counters_accumulate(self):
        index = SimilarityIndex(NAMES)
        index.topk(["barak obana"], k=3)
        counters = index.counters
        assert counters["candidates_generated"] > 0
        assert counters["pairs_verified"] > 0
        assert COUNTER_CACHE_MISSES in counters

    def test_stats_shape(self):
        index = SimilarityIndex(NAMES)
        stats = index.stats()
        assert stats["records"] == len(NAMES)
        assert stats["distinct_tokens"] == len(index.vocab)
