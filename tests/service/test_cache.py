"""Tests for the serving layer's bounded LRU result cache."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import COUNTER_CACHE_HITS, COUNTER_CACHE_MISSES, LRUCache


class TestLRUCache:
    def test_capacity_bound_holds(self):
        cache = LRUCache(3)
        for value in range(10):
            cache.put(value, value)
        assert len(cache) == 3

    def test_evicts_least_recently_used_not_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now the LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_hit_miss_counters(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats() == {
            COUNTER_CACHE_HITS: 1,
            COUNTER_CACHE_MISSES: 1,
        }

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 2  # both gets missed

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_default_sentinel(self):
        cache = LRUCache(2)
        sentinel = object()
        assert cache.get("nope", sentinel) is sentinel

    def test_pickle_roundtrip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1
        assert clone.capacity == 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 99)), max_size=60
        ),
        st.integers(1, 5),
    )
    def test_matches_reference_lru(self, operations, capacity):
        """The cache agrees with a straightforward ordered-list LRU model."""
        cache = LRUCache(capacity)
        model: list[tuple[int, int]] = []  # (key, value), LRU first

        def model_get(key):
            for position, (existing, value) in enumerate(model):
                if existing == key:
                    model.append(model.pop(position))
                    return value
            return None

        def model_put(key, value):
            for position, (existing, _) in enumerate(model):
                if existing == key:
                    model.pop(position)
                    break
            else:
                if len(model) >= capacity:
                    model.pop(0)
            model.append((key, value))

        for key, value in operations:
            if value % 2:
                assert cache.get(key) == model_get(key)
            else:
                cache.put(key, value)
                model_put(key, value)
        assert len(cache) == len(model)
