"""The ``vector`` array probe vs the scalar cascade: identical serving.

:meth:`SimilarityIndex._within_ids` swaps the per-candidate cascade loop
for the array probe under the ``vector`` backend.  The contract is
*counter-identical* equivalence: same results, same cumulative cascade /
verification counters, through ``topk``, ``within``, append-then-query
and pickle round-trips.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.accel import numpy_available
from repro.data import NameGenerator
from repro.service import SimilarityIndex

pytestmark = [
    pytest.mark.tier1,
    pytest.mark.skipif(not numpy_available(), reason="vector backend needs numpy"),
]


@pytest.fixture(scope="module")
def names():
    return NameGenerator(seed=3).generate(250)


@pytest.fixture(scope="module")
def queries(names):
    rng = random.Random(9)
    picked = [names[index] for index in rng.sample(range(len(names)), 15)]
    return picked + ["zzz qqq", "a", "", "barak obama jr"]


def test_results_and_counters_match_scalar(names, queries):
    scalar = SimilarityIndex(names, backend="bitparallel")
    vectorized = SimilarityIndex(names, backend="vector")
    for query in queries:
        for radius in (0.0, 0.05, 0.15, 0.4, 1.0, 2.0):
            assert scalar.within([query], radius) == vectorized.within(
                [query], radius
            ), (query, radius)
        for k in (1, 3, 10):
            assert scalar.topk([query], k=k) == vectorized.topk([query], k=k)
    assert scalar.counters == vectorized.counters


def test_single_token_collections_match(names):
    """Single-token queries route through the batched NLD group."""
    tokens = [name.split()[0] for name in names[:60]]
    scalar = SimilarityIndex(tokens, backend="bitparallel")
    vectorized = SimilarityIndex(tokens, backend="vector")
    for query in tokens[:10] + ["zzzz", ""]:
        assert scalar.within([query], 0.3) == vectorized.within([query], 0.3)
        assert scalar.topk([query], k=4) == vectorized.topk([query], k=4)
    assert scalar.counters == vectorized.counters


def test_append_invalidates_probe_arrays(names, queries):
    scalar = SimilarityIndex(names[:100], backend="bitparallel")
    vectorized = SimilarityIndex(names[:100], backend="vector")
    for index in (scalar, vectorized):
        index.within([queries[0]], 0.2)  # force the lazy build pre-append
        index.append(names[100:150])
    for query in queries[:8]:
        assert scalar.within([query], 0.25) == vectorized.within([query], 0.25)
        assert scalar.topk([query], k=5) == vectorized.topk([query], k=5)
    assert scalar.counters == vectorized.counters


def test_pickle_roundtrip_rebuilds_arrays(names, queries):
    vectorized = SimilarityIndex(names[:80], backend="vector")
    vectorized.within([queries[0]], 0.2)  # build the arrays pre-pickle
    clone = pickle.loads(pickle.dumps(vectorized))
    for query in queries[:6]:
        assert clone.within([query], 0.25) == vectorized.within([query], 0.25)
        assert clone.topk([query], k=3) == vectorized.topk([query], k=3)


def test_matches_bruteforce_oracle(names):
    """The vector probe agrees with brute-force NSLD, not just the scalar
    probe: guards against a shared bug in both cascade paths."""
    from repro.distances import nsld
    from repro.tokenize import tokenize

    subset = names[:60]
    vectorized = SimilarityIndex(subset, backend="vector")
    records = [tokenize(name) for name in subset]
    rng = random.Random(5)
    for query in [subset[i] for i in rng.sample(range(len(subset)), 6)]:
        query_record = tokenize(query)
        for radius in (0.1, 0.35):
            expected = sorted(
                (nsld(query_record, record), index)
                for index, record in enumerate(records)
                if nsld(query_record, record) <= radius
            )
            got = vectorized.within([query], radius)[0]
            assert got == [
                (subset[index], distance) for distance, index in expected
            ]
