"""Pool-shared snapshot serving must equal in-process serving.

A serve task is a pure function of the published snapshot and the query
batch, so fanning a batch over the shared worker pool may change
wall-clock only -- never a result.  These tests pin that, plus the
worker-initializer broadcast machinery in :mod:`repro.runtime.pool`
(the spawn-platform fallback path: a pool that already exists when a
snapshot is published must be rebuilt so every worker receives it).

Pool execution needs a usable fork platform (the same gate the rest of
the runtime suite uses); the equivalence itself is platform-independent.
"""

from __future__ import annotations

import pytest

from repro.data import evaluation_corpus
from repro.runtime import fork_is_default, shared_pool, shutdown_shared_pool
from repro.runtime.pool import (
    register_worker_initializer,
    unregister_worker_initializer,
)
from repro.service import SimilarityIndex
from repro.service.sharing import publish_snapshot, resolve_snapshot

pool_required = pytest.mark.skipif(
    not fork_is_default(),
    reason="shared-pool tests need a fork-default platform",
)

#: Set in workers by the initializer-broadcast test.
_PROBE_VALUE: str | None = None


def _set_probe(value: str) -> None:
    global _PROBE_VALUE
    _PROBE_VALUE = value


def _read_probe(_: int) -> str | None:
    return _PROBE_VALUE


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a live pool."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


@pool_required
class TestPooledServing:
    def test_topk_identical_to_in_process(self):
        names, _ = evaluation_corpus(50, seed=17)
        index = SimilarityIndex(names)
        queries = names[::7] + ["barak obana"]
        serial = index.topk(queries, k=4)
        pooled = index.topk(queries, k=4, processes=2)
        assert pooled == serial

    def test_within_identical_to_in_process(self):
        names, _ = evaluation_corpus(40, seed=29)
        index = SimilarityIndex(names)
        queries = names[::5]
        serial = index.within(queries, radius=0.2)
        pooled = index.within(queries, radius=0.2, processes=2)
        assert pooled == serial

    def test_preexisting_pool_receives_snapshot(self):
        """Publishing after pool creation triggers the rebuild/broadcast."""
        names, _ = evaluation_corpus(30, seed=31)
        shared_pool(2)  # pool exists before the snapshot does
        index = SimilarityIndex(names)
        queries = names[::4]
        assert index.topk(queries, k=3, processes=2) == index.topk(
            queries, k=3
        )

    def test_append_republishes(self):
        names, _ = evaluation_corpus(30, seed=37)
        index = SimilarityIndex(names)
        index.topk(names[:4], k=2, processes=2)  # publish v1
        index.append(["completely new name"])
        pooled = index.topk(["completely new name"], k=1, processes=2)
        assert pooled[0][0] == ("completely new name", 0.0)

    def test_counter_deltas_merged_back(self):
        names, _ = evaluation_corpus(30, seed=41)
        index = SimilarityIndex(names)
        before = dict(index.counters)
        index.topk(names[::3], k=3, processes=2)
        after = index.counters
        assert after["pairs_verified"] > before["pairs_verified"]

    def test_pickled_clone_does_not_evict_original(self):
        """Clones get fresh publish identities: serving a pickled copy
        must not withdraw the original's publication."""
        import pickle

        names, _ = evaluation_corpus(30, seed=43)
        index = SimilarityIndex(names)
        clone = pickle.loads(pickle.dumps(index))
        assert clone.share_key != index.share_key
        queries = names[:4]
        first = index.topk(queries, k=2, processes=2)
        assert clone.topk(queries, k=2, processes=2) == first
        # The original's cached publication token must still resolve.
        assert index.topk(names[4:8], k=2, processes=2) == index.topk(
            names[4:8], k=2
        )

    def test_single_query_stays_in_process(self):
        """No pool spin-up for a batch of one."""
        index = SimilarityIndex(["ann lee", "bob stone"])
        assert index.topk(["ann lee"], k=1, processes=4)[0][0][0] == "ann lee"
        from repro.runtime import shared_pool_size

        assert shared_pool_size() == 0


@pool_required
class TestWorkerInitializers:
    def test_initializer_runs_in_new_workers(self):
        register_worker_initializer("test:probe", _set_probe, ("hello",))
        try:
            results = shared_pool(2).map(_read_probe, range(4))
            assert set(results) == {"hello"}
        finally:
            unregister_worker_initializer("test:probe")

    def test_registration_rebuilds_live_pool(self):
        pool = shared_pool(2)
        assert pool.map(_read_probe, [0]) == [None]
        register_worker_initializer("test:probe", _set_probe, ("later",))
        try:
            assert shared_pool(2).map(_read_probe, [0]) == ["later"]
        finally:
            unregister_worker_initializer("test:probe")

    def test_same_key_replaces(self):
        register_worker_initializer("test:probe", _set_probe, ("first",))
        register_worker_initializer("test:probe", _set_probe, ("second",))
        try:
            assert shared_pool(2).map(_read_probe, [0]) == ["second"]
        finally:
            unregister_worker_initializer("test:probe")


class TestRegistry:
    def test_publish_and_resolve(self):
        index = SimilarityIndex(["ann lee"])
        token = publish_snapshot(index)
        try:
            assert resolve_snapshot(token) is index
        finally:
            index.unpublish()

    def test_unknown_token_raises(self):
        with pytest.raises(RuntimeError):
            resolve_snapshot("simindex-0-999999")

    def test_ensure_published_is_idempotent(self):
        index = SimilarityIndex(["ann lee"])
        token = index.ensure_published()
        try:
            assert index.ensure_published() == token
        finally:
            index.unpublish()

    def test_unpublish_frees_registry_entry(self):
        index = SimilarityIndex(["ann lee"])
        token = index.ensure_published()
        index.unpublish()
        with pytest.raises(RuntimeError):
            resolve_snapshot(token)
        # Safe to repeat, and a later serve can re-publish.
        index.unpublish()
        assert index.ensure_published() != token
        index.unpublish()

    def test_republication_replaces_previous_token(self):
        """One live registry entry per index, however often it republishes."""
        index = SimilarityIndex(["ann lee"])
        first = publish_snapshot(index)
        second = publish_snapshot(index)
        try:
            assert resolve_snapshot(second) is index
            with pytest.raises(RuntimeError):
                resolve_snapshot(first)
        finally:
            index.unpublish()

    def test_append_withdraws_publication(self):
        index = SimilarityIndex(["ann lee"])
        token = index.ensure_published()
        index.append(["bob stone"])
        with pytest.raises(RuntimeError):
            resolve_snapshot(token)
