"""Tests for ROC, recall, and similarity-graph clustering analytics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    auc,
    cluster_pairs,
    join_quality,
    pair_recall,
    ring_detection_report,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_separation(self):
        fpr, tpr, _ = roc_curve([0.9, 0.8, 0.2, 0.1], [True, True, False, False])
        assert auc(fpr, tpr) == 1.0

    def test_random_scores_diagonalish(self):
        # Inverted labels: worst possible ranking -> AUC 0.
        fpr, tpr, _ = roc_curve([0.9, 0.8, 0.2, 0.1], [False, False, True, True])
        assert auc(fpr, tpr) == 0.0

    def test_curve_endpoints(self):
        fpr, tpr, _ = roc_curve([0.5, 0.4, 0.3], [True, False, True])
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)

    def test_ties_collapse_to_one_point(self):
        fpr, tpr, thresholds = roc_curve([0.5, 0.5, 0.5], [True, False, True])
        assert len(fpr) == 2  # origin plus the single tied threshold

    def test_monotone(self):
        scores = [0.1 * i for i in range(10)]
        labels = [i % 3 == 0 for i in range(10)]
        fpr, tpr, _ = roc_curve(scores, labels)
        assert all(a <= b for a, b in zip(fpr, fpr[1:]))
        assert all(a <= b for a, b in zip(tpr, tpr[1:]))

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve([0.1, 0.2], [True, True])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            roc_curve([0.1], [True, False])

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.booleans()),
            min_size=2,
            max_size=30,
        ).filter(lambda items: len({label for _, label in items}) == 2)
    )
    def test_auc_in_unit_interval(self, items):
        scores = [score for score, _ in items]
        labels = [label for _, label in items]
        fpr, tpr, _ = roc_curve(scores, labels)
        assert -1e-9 <= auc(fpr, tpr) <= 1 + 1e-9


class TestAuc:
    def test_diagonal(self):
        assert auc([0.0, 1.0], [0.0, 1.0]) == 0.5

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            auc([0.0], [0.0])


class TestRecall:
    def test_pair_recall_orientation_insensitive(self):
        assert pair_recall([(1, 0)], [(0, 1)]) == 1.0

    def test_empty_reference(self):
        assert pair_recall([(0, 1)], []) == 1.0

    def test_partial(self):
        assert pair_recall([(0, 1)], [(0, 1), (2, 3)]) == 0.5

    def test_join_quality(self):
        quality = join_quality([(0, 1), (4, 5)], [(0, 1), (2, 3)])
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.f1 == 0.5

    def test_join_quality_empty_found(self):
        quality = join_quality([], [(0, 1)])
        assert quality.precision == 1.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0


class TestClustering:
    def test_components(self):
        clusters = cluster_pairs([(0, 1), (1, 2), (5, 6)])
        assert clusters == [{0, 1, 2}, {5, 6}]

    def test_min_size(self):
        clusters = cluster_pairs([(0, 1), (1, 2), (5, 6)], min_size=3)
        assert clusters == [{0, 1, 2}]

    def test_empty(self):
        assert cluster_pairs([]) == []

    def test_chain_merges(self):
        clusters = cluster_pairs([(0, 1), (2, 3), (1, 2)])
        assert clusters == [{0, 1, 2, 3}]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            max_size=40,
        )
    )
    def test_partition_property(self, pairs):
        clusters = cluster_pairs(pairs)
        seen: set[int] = set()
        for cluster in clusters:
            assert len(cluster & seen) == 0  # disjoint
            seen |= cluster
        # Every edge's endpoints are in the same cluster.
        for a, b in pairs:
            if a == b:
                continue
            owner_a = next((c for c in clusters if a in c), None)
            owner_b = next((c for c in clusters if b in c), None)
            assert owner_a is owner_b and owner_a is not None


class TestNetworkxExport:
    def test_graph_structure(self):
        nx = pytest.importorskip("networkx")
        from repro.analysis.graphs import to_networkx

        graph = to_networkx([(0, 1), (1, 2)])
        assert set(graph.nodes) == {0, 1, 2}
        assert graph.number_of_edges() == 2

    def test_distance_attributes(self):
        pytest.importorskip("networkx")
        from repro.analysis.graphs import to_networkx

        graph = to_networkx([(1, 0)], distances={(0, 1): 0.25})
        assert graph.edges[1, 0]["distance"] == 0.25

    def test_components_agree_with_union_find(self):
        nx = pytest.importorskip("networkx")
        from repro.analysis.graphs import to_networkx

        pairs = [(0, 1), (1, 2), (5, 6), (8, 9), (9, 10)]
        graph = to_networkx(pairs)
        nx_components = {frozenset(c) for c in nx.connected_components(graph)}
        uf_components = {frozenset(c) for c in cluster_pairs(pairs)}
        assert nx_components == uf_components


class TestRingDetection:
    def test_full_recovery(self):
        rings = [{0, 1, 2}, {5, 6}]
        clusters = [{0, 1, 2}, {5, 6}]
        report = ring_detection_report(clusters, rings)
        assert report.ring_recall == 1.0
        assert report.member_recall == 1.0

    def test_partial_recovery(self):
        rings = [{0, 1, 2, 3}, {8, 9}]
        clusters = [{0, 1}]  # half of ring 1, nothing of ring 2
        report = ring_detection_report(clusters, rings)
        assert report.rings_detected == 1
        assert report.ring_recall == 0.5
        assert report.members_recovered == 2

    def test_singleton_overlap_not_detected(self):
        report = ring_detection_report([{0, 7}], [{0, 1, 2}])
        assert report.rings_detected == 0

    def test_no_rings(self):
        report = ring_detection_report([{1, 2}], [])
        assert report.ring_recall == 1.0
