"""Tests for the (T, M) parameter tuner (footnote 5 of the paper)."""

from __future__ import annotations

import pytest

from repro.analysis.tuning import TuningResult, tune_parameters
from repro.data import corpus_with_rings
from repro.tokenize import tokenize


def ring_truth_pairs(rings):
    pairs = set()
    for ring in rings:
        members = sorted(ring)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pairs.add((members[i], members[j]))
    return pairs


class TestTuneParameters:
    def test_finds_a_threshold_that_detects_rings(self):
        names, rings = corpus_with_rings(60, 4, 4, seed=5, max_edits=1)
        records = [tokenize(name) for name in names]
        truth = ring_truth_pairs(rings)
        result = tune_parameters(
            records,
            truth,
            thresholds=(0.01, 0.1, 0.2),
            max_frequencies=(None,),
        )
        assert isinstance(result, TuningResult)
        # A tiny threshold misses edited variants; the tuner moves off it.
        assert result.threshold > 0.01
        assert result.score > 0.3

    def test_trace_records_every_evaluation(self):
        names, rings = corpus_with_rings(30, 2, 3, seed=1)
        records = [tokenize(name) for name in names]
        result = tune_parameters(
            records,
            ring_truth_pairs(rings),
            thresholds=(0.05, 0.15),
            max_frequencies=(None,),
        )
        assert result.evaluations == len(result.trace)
        assert result.evaluations <= 2  # grid has only two points

    def test_custom_join_function(self):
        calls = []

        def fake_join(records, threshold, max_frequency):
            calls.append((threshold, max_frequency))
            return {(0, 1)} if threshold >= 0.2 else set()

        result = tune_parameters(
            ["r0", "r1"],
            [(0, 1)],
            thresholds=(0.1, 0.2),
            max_frequencies=(None,),
            run_join=fake_join,
        )
        assert result.threshold == 0.2
        assert result.score == 1.0
        assert calls  # the override was used

    def test_beta_shifts_preference(self):
        # A config with precision 1/recall 0.5 vs precision 0.5/recall 1.
        def fake_join(records, threshold, max_frequency):
            if threshold == 0.1:
                return {(0, 1)}  # precision 1, recall 0.5
            return {(0, 1), (2, 3), (4, 5), (6, 7)}  # precision 0.5, recall 1

        truth = [(0, 1), (2, 3)]
        precise = tune_parameters(
            ["x"] * 8, truth, thresholds=(0.1, 0.3),
            max_frequencies=(None,), beta=0.25, run_join=fake_join,
        )
        recall_leaning = tune_parameters(
            ["x"] * 8, truth, thresholds=(0.1, 0.3),
            max_frequencies=(None,), beta=4.0, run_join=fake_join,
        )
        assert precise.threshold == 0.1
        assert recall_leaning.threshold == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_parameters([], [], thresholds=(), max_frequencies=(None,))
        with pytest.raises(ValueError):
            tune_parameters([], [], beta=0.0)
