"""Tests for the TokenizedString value type."""

from __future__ import annotations

import pickle
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tokenize import TokenizedString
from tests.conftest import nonempty_strings


class TestConstruction:
    def test_order_canonicalised(self):
        assert TokenizedString(["b", "a"]) == TokenizedString(["a", "b"])

    def test_duplicates_preserved(self):
        ts = TokenizedString(["ann", "ann"])
        assert ts.token_count == 2
        assert ts.token_multiset() == Counter({"ann": 2})

    def test_empty_tokens_dropped(self):
        ts = TokenizedString(["", "a", ""])
        assert ts.tokens == ("a",)

    def test_from_text(self):
        assert TokenizedString.from_text("barak  obama") == TokenizedString(
            ["barak", "obama"]
        )

    def test_empty(self):
        ts = TokenizedString()
        assert ts.token_count == 0
        assert ts.aggregate_length == 0
        assert len(ts) == 0


class TestStatistics:
    def test_aggregate_length(self):
        assert TokenizedString(["chan", "kalan"]).aggregate_length == 9

    def test_token_count(self):
        assert TokenizedString(["a", "bb", "ccc"]).token_count == 3

    def test_length_histogram(self):
        ts = TokenizedString(["a", "bb", "cc", "ddd"])
        assert ts.length_histogram == {1: 1, 2: 2, 3: 1}

    def test_distinct_tokens(self):
        ts = TokenizedString(["x", "x", "y"])
        assert ts.distinct_tokens() == frozenset({"x", "y"})

    @given(st.lists(nonempty_strings(), max_size=6))
    def test_histogram_consistent_with_lengths(self, tokens):
        ts = TokenizedString(tokens)
        hist = ts.length_histogram
        assert sum(hist.values()) == ts.token_count
        assert sum(k * v for k, v in hist.items()) == ts.aggregate_length


class TestValueSemantics:
    def test_hashable_and_equal(self):
        a = TokenizedString(["x", "y"])
        b = TokenizedString(["y", "x"])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        assert TokenizedString(["a"]) < TokenizedString(["b"])

    def test_immutability(self):
        ts = TokenizedString(["a"])
        with pytest.raises(AttributeError):
            ts.tokens = ("b",)

    def test_contains(self):
        ts = TokenizedString(["ann", "lee"])
        assert "ann" in ts
        assert "bob" not in ts

    def test_iteration(self):
        assert list(TokenizedString(["b", "a"])) == ["a", "b"]

    def test_str_and_repr(self):
        ts = TokenizedString(["obama", "barak"])
        assert str(ts) == "barak obama"
        assert "barak" in repr(ts)

    def test_picklable(self):
        ts = TokenizedString(["ann", "lee"])
        assert pickle.loads(pickle.dumps(ts)) == ts

    def test_not_equal_to_other_types(self):
        assert TokenizedString(["a"]) != ("a",)
