"""Tests for the whitespace+punctuation tokenizer."""

from __future__ import annotations

from repro.tokenize import TokenizedString, Tokenizer, tokenize


class TestDefaultTokenizer:
    def test_whitespace_split(self):
        assert tokenize("barak obama") == TokenizedString(["barak", "obama"])

    def test_punctuation_split(self):
        """Sec. V: names were tokenized on whitespace and punctuation."""
        assert tokenize("Obamma, Boraak H.") == TokenizedString(
            ["obamma", "boraak", "h"]
        )

    def test_case_folding(self):
        assert tokenize("Barak OBAMA") == tokenize("barak obama")

    def test_mixed_separators(self):
        assert tokenize("a-b_c.d e") == TokenizedString(["a", "b", "c", "d", "e"])

    def test_empty_string(self):
        assert tokenize("") == TokenizedString()

    def test_only_separators(self):
        assert tokenize(" ,.-_ ") == TokenizedString()

    def test_repeated_separators_collapse(self):
        assert tokenize("a,,,   b") == TokenizedString(["a", "b"])


class TestConfiguration:
    def test_case_preserving(self):
        tok = Tokenizer(lowercase=False)
        assert tok("Barak Obama") == TokenizedString(["Barak", "Obama"])

    def test_min_token_length(self):
        tok = Tokenizer(min_token_length=2)
        assert tok("j p morgan") == TokenizedString(["morgan"])

    def test_extra_separators(self):
        tok = Tokenizer(extra_separators="0")
        assert tok("a0b") == TokenizedString(["a", "b"])

    def test_callable_and_method_agree(self):
        tok = Tokenizer()
        assert tok("x y") == tok.tokenize("x y")

    def test_tokenizers_are_value_objects(self):
        assert Tokenizer() == Tokenizer()
        assert Tokenizer(lowercase=False) != Tokenizer()
