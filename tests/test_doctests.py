"""Run the docstring examples of every public module as tests."""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.api",
    "repro.api.errors",
    "repro.api.registry",
    "repro.api.specs",
    "repro.api.session",
    "repro.accel.myers",
    "repro.accel.vocab",
    "repro.accel.verify",
    "repro.distances.levenshtein",
    "repro.distances.normalized",
    "repro.distances.assignment",
    "repro.distances.setwise",
    "repro.distances.jaro",
    "repro.distances.set_measures",
    "repro.distances.fuzzy_set_measures",
    "repro.distances.fms",
    "repro.distances.conversions",
    "repro.tokenize.tokenized_string",
    "repro.mapreduce.hashing",
    "repro.mapreduce.shuffle",
    "repro.mapreduce.sketches",
    "repro.candidates.interning",
    "repro.candidates.cascade",
    "repro.candidates.dedup",
    "repro.candidates.verify",
    "repro.joins.passjoin",
    "repro.joins.qgram",
    "repro.joins.prefix_filter",
    "repro.joins.mgjoin",
    "repro.knn.bktree",
    "repro.knn.vptree",
    "repro.service.cache",
    "repro.service.index",
    "repro.analysis.roc",
    "repro.analysis.recall",
    "repro.analysis.graphs",
    "repro.tsj.framework",
    "repro.data.names",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
