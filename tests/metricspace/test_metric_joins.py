"""Tests for the metric-space joins: exactness against the NSLD oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.naive import naive_nsld_self_join
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.metricspace import HMJ, MRMAPSS, ClusterJoin, farthest_point_pivots, sample_pivots
from repro.tokenize import TokenizedString, tokenize
from tests.conftest import tokenized_strings

record_lists = st.lists(tokenized_strings(3, 5), min_size=2, max_size=12)
thresholds = st.sampled_from([0.05, 0.1, 0.2, 0.3])

NAMES = [
    "barak obama",
    "borak obama",
    "obamma boraak",
    "john smith",
    "jon smith",
    "smith john",
    "mary williams",
    "mary wiliams",
    "peter parker",
    "piter parker",
    "unrelated person",
    "another one",
]


def make_engine(n: int = 4) -> MapReduceEngine:
    return MapReduceEngine(ClusterConfig(n_machines=n))


class TestPivotSelection:
    def test_sample_deterministic(self):
        records = [tokenize(n) for n in NAMES]
        assert sample_pivots(records, 3, seed=7) == sample_pivots(records, 3, seed=7)

    def test_sample_size_capped(self):
        records = [tokenize("a b")]
        assert len(sample_pivots(records, 5)) == 1

    def test_sample_invalid_k(self):
        with pytest.raises(ValueError):
            sample_pivots([tokenize("a")], 0)

    def test_farthest_point_spread(self):
        from repro.distances import nsld

        records = [tokenize(n) for n in NAMES]
        pivots = farthest_point_pivots(records, 3, nsld, seed=1)
        assert len(pivots) == 3
        # Chosen pivots are pairwise distinct.
        assert len({p for p in pivots}) == 3

    def test_farthest_point_handles_duplicates(self):
        from repro.distances import nsld

        records = [tokenize("same name")] * 5
        pivots = farthest_point_pivots(records, 3, nsld)
        assert len(pivots) == 1  # everything coincides

    def test_farthest_point_empty(self):
        from repro.distances import nsld

        assert farthest_point_pivots([], 3, nsld) == []


class TestClusterJoin:
    def test_known_names(self):
        records = [tokenize(n) for n in NAMES]
        result = ClusterJoin(make_engine(), 0.2, seed=3).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, 0.2)

    def test_tiny_input(self):
        assert ClusterJoin(make_engine(), 0.1).self_join([]).pairs == set()
        assert (
            ClusterJoin(make_engine(), 0.1).self_join([tokenize("a b")]).pairs == set()
        )

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ClusterJoin(threshold=-0.1)

    @settings(max_examples=25, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=0, max_value=5))
    def test_exactness_property(self, records, threshold, seed):
        result = ClusterJoin(make_engine(), threshold, seed=seed).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, threshold)

    def test_pivot_count_override(self):
        records = [tokenize(n) for n in NAMES]
        result = ClusterJoin(make_engine(), 0.2, n_pivots=2).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, 0.2)


class TestMRMAPSS:
    def test_known_names(self):
        records = [tokenize(n) for n in NAMES]
        result = MRMAPSS(make_engine(), 0.2, seed=3).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, 0.2)

    def test_recursion_triggered(self):
        # Force recursion with a tiny partition limit.
        records = [tokenize(n) for n in NAMES] * 3
        joiner = MRMAPSS(
            make_engine(), 0.2, partition_limit=4, max_depth=3, branching=3
        )
        expected = naive_nsld_self_join(records, 0.2)
        result = joiner.self_join(records)
        assert result.pairs == expected
        assert len(result.pipeline.stages) > 2  # multiple split rounds ran

    def test_identical_records_no_infinite_loop(self):
        records = [tokenize("same name")] * 10
        joiner = MRMAPSS(make_engine(), 0.1, partition_limit=3)
        result = joiner.self_join(records)
        assert len(result.pairs) == 45  # all pairs identical

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=0, max_value=3))
    def test_exactness_property(self, records, threshold, seed):
        joiner = MRMAPSS(
            make_engine(), threshold, partition_limit=4, branching=3, seed=seed
        )
        assert joiner.self_join(records).pairs == naive_nsld_self_join(
            records, threshold
        )

    def test_invalid_partition_limit(self):
        with pytest.raises(ValueError):
            MRMAPSS(partition_limit=1)


class TestHMJ:
    def test_known_names(self):
        records = [tokenize(n) for n in NAMES]
        result = HMJ(make_engine(), 0.2, seed=3).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, 0.2)

    def test_grid_path_exercised(self):
        # Concentrated near-duplicates with a tiny partition limit push the
        # scatter heuristic towards the grid strategy.
        base = "jonathan smithson"
        records = [tokenize(base)] * 6 + [
            tokenize("jonathan smithsun"),
            tokenize("jonathan smithsen"),
            tokenize("jonatan smithson"),
        ]
        joiner = HMJ(
            make_engine(),
            0.1,
            partition_limit=3,
            max_depth=2,
            scatter_factor=100.0,  # force the grid choice
        )
        assert joiner.self_join(records).pairs == naive_nsld_self_join(records, 0.1)

    def test_requires_positive_threshold(self):
        with pytest.raises(ValueError):
            HMJ(threshold=0.0)

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=0, max_value=3))
    def test_exactness_property(self, records, threshold, seed):
        joiner = HMJ(
            make_engine(), threshold, partition_limit=4, branching=3, seed=seed
        )
        assert joiner.self_join(records).pairs == naive_nsld_self_join(
            records, threshold
        )

    @settings(max_examples=10, deadline=None)
    @given(record_lists)
    def test_grid_only_exactness(self, records):
        """Force every split to use the grid strategy."""
        joiner = HMJ(
            make_engine(),
            0.2,
            partition_limit=3,
            max_depth=3,
            scatter_factor=1e9,
        )
        assert joiner.self_join(records).pairs == naive_nsld_self_join(records, 0.2)

    def test_metrics_exposed(self):
        records = [tokenize(n) for n in NAMES]
        result = HMJ(make_engine(), 0.2).self_join(records)
        assert result.simulated_seconds() > 0
        assert result.pipeline.counters().get("metric-comparisons", 0) > 0
