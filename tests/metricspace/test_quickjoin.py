"""Tests for the serial QuickJoin baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.naive import naive_nsld_self_join
from repro.metricspace import QuickJoin
from repro.tokenize import tokenize
from tests.conftest import tokenized_strings

record_lists = st.lists(tokenized_strings(3, 5), min_size=0, max_size=14)
thresholds = st.sampled_from([0.05, 0.1, 0.2, 0.3])


class TestQuickJoin:
    def test_known_names(self):
        records = [
            tokenize(n)
            for n in [
                "barak obama", "borak obama", "john smith", "jon smith",
                "mary williams", "mary wiliams", "unrelated person",
            ]
        ]
        result = QuickJoin(0.2, seed=3).self_join(records)
        assert result == naive_nsld_self_join(records, 0.2)

    def test_small_inputs(self):
        assert QuickJoin(0.1).self_join([]) == set()
        assert QuickJoin(0.1).self_join([tokenize("a b")]) == set()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuickJoin(threshold=-0.1)
        with pytest.raises(ValueError):
            QuickJoin(small_limit=1)

    def test_identical_records(self):
        records = [tokenize("same name")] * 12
        result = QuickJoin(0.1, small_limit=4).self_join(records)
        assert len(result) == 66

    @settings(max_examples=40, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=0, max_value=4))
    def test_exactness_property(self, records, threshold, seed):
        joiner = QuickJoin(threshold, small_limit=4, seed=seed)
        assert joiner.self_join(records) == naive_nsld_self_join(
            records, threshold
        )

    def test_recursion_saves_comparisons(self):
        """On a spread-out corpus, partitioning beats the quadratic scan."""
        from repro.data import NameGenerator

        names = NameGenerator(seed=8).generate(300)
        records = [tokenize(n) for n in names]
        joiner = QuickJoin(0.05, small_limit=16, seed=2)
        expected = naive_nsld_self_join(records, 0.05)
        assert joiner.self_join(records) == expected
        quadratic = len(records) * (len(records) - 1) // 2
        assert joiner.last_join_evaluations < quadratic

    def test_agrees_with_distributed_joiners(self):
        from repro.mapreduce import ClusterConfig, MapReduceEngine
        from repro.metricspace import HMJ

        records = [tokenize(n) for n in [
            "ann lee", "anne lee", "ann leigh", "bob stone", "rob stone",
        ]]
        quick = QuickJoin(0.2, small_limit=2, seed=1).self_join(records)
        engine = MapReduceEngine(ClusterConfig(n_machines=4))
        hmj = HMJ(engine, 0.2, partition_limit=2, seed=1).self_join(records)
        assert quick == hmj.pairs
