"""Unit tests for the individual TSJ pipeline jobs."""

from __future__ import annotations

import pytest

from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.tokenize import TokenizedString, tokenize
from repro.tsj.jobs import (
    DedupFilterJob,
    SharedTokenCandidatesJob,
    TokenFrequencyJob,
    decode_histogram,
    encode_histogram,
)


def engine(n: int = 3) -> MapReduceEngine:
    return MapReduceEngine(ClusterConfig(n_machines=n))


class TestHistogramCodec:
    def test_roundtrip(self):
        histogram = {3: 2, 5: 1}
        assert decode_histogram(encode_histogram(histogram)) == histogram

    def test_canonical_order(self):
        assert encode_histogram({5: 1, 3: 2}) == ((3, 2), (5, 1))

    def test_empty(self):
        assert encode_histogram({}) == ()
        assert decode_histogram(()) == {}


class TestTokenFrequencyJob:
    def test_counts_distinct_per_record(self):
        records = [
            (0, TokenizedString(["ann", "ann", "lee"])),  # ann counted once
            (1, TokenizedString(["ann"])),
        ]
        result = engine().run(TokenFrequencyJob(), records)
        assert dict(result.outputs) == {"ann": 2, "lee": 1}

    def test_empty_records(self):
        result = engine().run(TokenFrequencyJob(), [(0, TokenizedString())])
        assert result.outputs == []


class TestSharedTokenCandidatesJob:
    def _run(self, records, threshold=0.3, frequent=frozenset(), **kwargs):
        job = SharedTokenCandidatesJob(threshold, frequent, **kwargs)
        return engine().run(job, list(enumerate(records))).outputs

    def test_pairs_sharing_a_token(self):
        outputs = self._run([tokenize("ann lee"), tokenize("ann wu")])
        pairs = {pair for pair, _ in outputs}
        assert pairs == {(0, 1)}

    def test_two_shared_tokens_two_instances(self):
        outputs = self._run([tokenize("ann lee"), tokenize("ann lee ku")])
        pairs = [pair for pair, _ in outputs]
        assert pairs.count((0, 1)) == 2  # one instance per shared token

    def test_frequent_tokens_skipped(self):
        outputs = self._run(
            [tokenize("ann lee"), tokenize("ann wu")],
            frequent=frozenset({"ann"}),
        )
        assert outputs == []

    def test_length_filter_prunes(self):
        # Aggregate lengths 4 vs 22: Lemma 6 bound 1 - 4/22 > 0.3.
        outputs = self._run(
            [
                TokenizedString(["ab", "cd"]),
                TokenizedString(["ab", "cdefghijklmnopqrstuv"]),
            ],
            threshold=0.3,
        )
        assert outputs == []

    def test_metadata_shape(self):
        outputs = self._run([tokenize("ann lee"), tokenize("ann wu")])
        (pair, (length_a, hist_a, length_b, hist_b, similar)), = outputs
        assert length_a == 6 and length_b == 5
        assert decode_histogram(hist_a) == {3: 2}
        assert similar == ((3, 3, 0),)  # the shared token "ann"

    def test_bipartite_mode(self):
        records = [tokenize("ann lee"), tokenize("ann wu"), tokenize("ann xi")]
        job = SharedTokenCandidatesJob(
            0.3, frozenset(), bipartite_boundary=1
        )
        outputs = engine().run(job, list(enumerate(records))).outputs
        pairs = {pair for pair, _ in outputs}
        # (1, 2) is a same-side P pair and must be excluded.
        assert pairs == {(0, 1), (0, 2)}


class TestDedupFilterJob:
    def _candidate(self, pair, record_a, record_b, similar):
        return (
            pair,
            (
                record_a.aggregate_length,
                encode_histogram(record_a.length_histogram),
                record_b.aggregate_length,
                encode_histogram(record_b.length_histogram),
                similar,
            ),
        )

    def test_duplicates_collapse_both_strategies(self):
        a, b = tokenize("ann lee"), tokenize("ann lee")
        candidate = self._candidate((0, 1), a, b, ((3, 3, 0),))
        for group_on_one in (False, True):
            job = DedupFilterJob(0.2, group_on_one=group_on_one)
            outputs = engine().run(job, [candidate, candidate]).outputs
            assert outputs == [(0, 1)]

    def test_similar_pairs_merge_before_filtering(self):
        # Two instances, one per similar token pair; the merged knowledge
        # (both tokens within LD 1) keeps the candidate alive at T = 0.2
        # where the pair's true NSLD is 2*2/(10+10+2) = 0.1818.
        a = TokenizedString(["abcde", "vwxyz"])
        b = TokenizedString(["abcdf", "vwxyw"])
        instance_1 = self._candidate((0, 1), a, b, ((5, 5, 1),))
        instance_2 = self._candidate((0, 1), a, b, ((5, 5, 1),))
        job = DedupFilterJob(0.2, group_on_one=False)
        outputs = engine().run(job, [instance_1, instance_2]).outputs
        assert outputs == [(0, 1)]
        # At T = 0.15 the merged lower bound (0.1818) correctly prunes.
        strict = DedupFilterJob(0.15, group_on_one=False)
        assert engine().run(strict, [instance_1, instance_2]).outputs == []

    def test_histogram_filter_prunes_far_pair(self):
        a = TokenizedString(["aaaa", "bbbb"])
        b = TokenizedString(["cccc", "dddd"])
        candidate = self._candidate((0, 1), a, b, ())
        strict = DedupFilterJob(0.05, group_on_one=False)
        assert engine().run(strict, [candidate]).outputs == []

    def test_filters_can_be_disabled(self):
        a = TokenizedString(["aaaa", "bbbb"])
        b = TokenizedString(["cccc", "dddd"])
        candidate = self._candidate((0, 1), a, b, ())
        lax = DedupFilterJob(
            0.05,
            group_on_one=False,
            use_length_filter=False,
            use_histogram_filter=False,
        )
        assert engine().run(lax, [candidate]).outputs == [(0, 1)]

    def test_group_on_one_counters(self):
        a, b = tokenize("ann lee"), tokenize("ann leo")
        candidate = self._candidate((0, 1), a, b, ((3, 3, 0),))
        job = DedupFilterJob(0.2, group_on_one=True)
        result = engine().run(job, [candidate] * 3)
        assert result.outputs == [(0, 1)]
        assert result.metrics.counters.get("candidates-verified") == 1
