"""Tests for the general R x P TSJ join (Sec. II-B)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.naive import naive_nsld_join
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.tokenize import TokenizedString, tokenize
from repro.tsj import TSJ, TSJConfig
from tests.conftest import tokenized_strings

record_lists = st.lists(tokenized_strings(3, 5), min_size=0, max_size=8)
thresholds = st.sampled_from([0.05, 0.1, 0.2, 0.3])


def run_join(r, p, **kwargs):
    engine = MapReduceEngine(ClusterConfig(n_machines=4))
    config = TSJConfig(**kwargs)
    return TSJ(config, engine).join(r, p)


class TestTwoSetJoin:
    def test_basic_cross_join(self):
        r = [tokenize("barak obama"), tokenize("john smith")]
        p = [tokenize("borak obama"), tokenize("mary lee")]
        result = run_join(r, p, threshold=0.15, max_token_frequency=None)
        assert result.pairs == {(0, 0)}

    def test_no_within_side_pairs(self):
        """Identical records on the same side must not pair."""
        r = [tokenize("ann lee"), tokenize("ann lee")]
        p = [tokenize("bob stone")]
        result = run_join(r, p, threshold=0.1, max_token_frequency=None)
        assert result.pairs == set()

    def test_cross_side_duplicates_found(self):
        r = [tokenize("ann lee")]
        p = [tokenize("ann lee"), tokenize("lee ann")]
        result = run_join(r, p, threshold=0.05, max_token_frequency=None)
        assert result.pairs == {(0, 0), (0, 1)}

    def test_empty_records_pair_across_sides_only(self):
        r = [TokenizedString(), TokenizedString()]
        p = [TokenizedString()]
        result = run_join(r, p, threshold=0.1)
        assert result.pairs == {(0, 0), (1, 0)}

    def test_empty_sides(self):
        assert run_join([], [tokenize("a b")], threshold=0.1).pairs == set()
        assert run_join([tokenize("a b")], [], threshold=0.1).pairs == set()

    def test_similar_token_path(self):
        """A pair with every token edited needs the fuzzy token join."""
        r = [TokenizedString(["chan", "kalan"])]
        p = [TokenizedString(["chank", "alan"])]
        result = run_join(r, p, threshold=0.25, max_token_frequency=None)
        assert result.pairs == {(0, 0)}
        exact = run_join(
            r, p, threshold=0.25, max_token_frequency=None, matching="exact"
        )
        assert exact.pairs == set()

    @settings(max_examples=30, deadline=None)
    @given(record_lists, record_lists, thresholds)
    def test_matches_oracle(self, r, p, threshold):
        result = run_join(r, p, threshold=threshold, max_token_frequency=None)
        assert result.pairs == naive_nsld_join(r, p, threshold)

    @settings(max_examples=15, deadline=None)
    @given(record_lists, record_lists, thresholds)
    def test_dedup_strategies_agree(self, r, p, threshold):
        one = run_join(
            r, p, threshold=threshold, max_token_frequency=None, dedup="one"
        )
        both = run_join(
            r, p, threshold=threshold, max_token_frequency=None, dedup="both"
        )
        assert one.pairs == both.pairs

    def test_distances_reported(self):
        r = [tokenize("thomson tom")]
        p = [tokenize("thompson tom")]
        result = run_join(r, p, threshold=0.1, max_token_frequency=None)
        assert result.distances[(0, 0)] == 2 / (10 + 11 + 1)
