"""Integration tests for the TSJ framework against the brute-force oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.naive import naive_nsld_self_join
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.tokenize import TokenizedString, tokenize
from repro.tsj import TSJ, TSJConfig
from tests.conftest import tokenized_strings

record_lists = st.lists(tokenized_strings(3, 5), min_size=0, max_size=10)
thresholds = st.sampled_from([0.05, 0.1, 0.15, 0.2, 0.3])


def run_tsj(records, **kwargs) -> set:
    engine = MapReduceEngine(ClusterConfig(n_machines=4))
    config = TSJConfig(**kwargs)
    return TSJ(config, engine).self_join(records)


NAMES = [
    "barak obama",
    "borak obama",
    "obamma boraak h",
    "john smith",
    "jon smith",
    "smith john",
    "mary williams",
    "mary wiliams",
    "unrelated person",
]


class TestTSJKnownCases:
    def test_fraud_ring_names(self):
        records = [tokenize(name) for name in NAMES]
        result = run_tsj(records, threshold=0.2, max_token_frequency=None)
        expected = naive_nsld_self_join(records, 0.2)
        assert result.pairs == expected
        # Token-shuffled duplicates are distance 0.
        assert (3, 5) in result.pairs
        assert result.distances[(3, 5)] == 0.0

    def test_paper_example_tokens(self):
        records = [
            TokenizedString(["chan", "kalan"]),
            TokenizedString(["chank", "alan"]),
            TokenizedString(["alan"]),
        ]
        result = run_tsj(records, threshold=0.2, max_token_frequency=None)
        assert result.pairs == {(0, 1)}
        assert result.distances[(0, 1)] == pytest.approx(0.2)

    def test_empty_input(self):
        result = run_tsj([], threshold=0.1)
        assert result.pairs == set()

    def test_single_record(self):
        result = run_tsj([tokenize("barak obama")], threshold=0.1)
        assert result.pairs == set()

    def test_empty_records_pair_together(self):
        records = [TokenizedString(), tokenize("ann lee"), TokenizedString()]
        result = run_tsj(records, threshold=0.1)
        assert result.pairs == {(0, 2)}
        assert result.distances[(0, 2)] == 0.0

    def test_identical_records(self):
        records = [tokenize("ann lee")] * 3
        result = run_tsj(records, threshold=0.05, max_token_frequency=None)
        assert result.pairs == {(0, 1), (0, 2), (1, 2)}


class TestTSJExactness:
    """The lossless configuration returns exactly the NSLD-join result."""

    @settings(max_examples=40, deadline=None)
    @given(record_lists, thresholds)
    def test_matches_oracle(self, records, threshold):
        result = run_tsj(records, threshold=threshold, max_token_frequency=None)
        assert result.pairs == naive_nsld_self_join(records, threshold)

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds)
    def test_both_dedup_strategies_agree(self, records, threshold):
        one = run_tsj(
            records, threshold=threshold, max_token_frequency=None, dedup="one"
        )
        both = run_tsj(
            records, threshold=threshold, max_token_frequency=None, dedup="both"
        )
        assert one.pairs == both.pairs

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds)
    def test_filters_do_not_change_results(self, records, threshold):
        filtered = run_tsj(records, threshold=threshold, max_token_frequency=None)
        unfiltered = run_tsj(
            records,
            threshold=threshold,
            max_token_frequency=None,
            use_length_filter=False,
            use_histogram_filter=False,
        )
        assert filtered.pairs == unfiltered.pairs

    def test_machine_count_invariant(self):
        records = [tokenize(name) for name in NAMES]
        few = TSJ(
            TSJConfig(threshold=0.2, max_token_frequency=None),
            MapReduceEngine(ClusterConfig(n_machines=1)),
        ).self_join(records)
        many = TSJ(
            TSJConfig(threshold=0.2, max_token_frequency=None),
            MapReduceEngine(ClusterConfig(n_machines=32)),
        ).self_join(records)
        assert few.pairs == many.pairs


class TestTSJApproximations:
    """Approximations only lose pairs (precision 1.0), Sec. V-B."""

    @settings(max_examples=30, deadline=None)
    @given(record_lists, thresholds)
    def test_greedy_aligning_subset(self, records, threshold):
        exact = run_tsj(records, threshold=threshold, max_token_frequency=None)
        greedy = run_tsj(
            records,
            threshold=threshold,
            max_token_frequency=None,
            aligning="greedy",
        )
        assert greedy.pairs <= exact.pairs

    @settings(max_examples=30, deadline=None)
    @given(record_lists, thresholds)
    def test_exact_matching_subset(self, records, threshold):
        fuzzy = run_tsj(records, threshold=threshold, max_token_frequency=None)
        exact_match = run_tsj(
            records,
            threshold=threshold,
            max_token_frequency=None,
            matching="exact",
        )
        assert exact_match.pairs <= fuzzy.pairs

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=1, max_value=4))
    def test_frequency_cap_subset(self, records, threshold, cap):
        lossless = run_tsj(records, threshold=threshold, max_token_frequency=None)
        capped = run_tsj(records, threshold=threshold, max_token_frequency=cap)
        assert capped.pairs <= lossless.pairs

    @settings(max_examples=20, deadline=None)
    @given(record_lists, thresholds, st.integers(min_value=1, max_value=3))
    def test_exact_subset_of_fuzzy_under_frequency_cap(
        self, records, threshold, cap
    ):
        """Regression: with M dropping tokens, the Lemma 10 filter must
        not make fuzzy matching lose pairs that exact matching keeps."""
        fuzzy = run_tsj(records, threshold=threshold, max_token_frequency=cap)
        exact = run_tsj(
            records,
            threshold=threshold,
            max_token_frequency=cap,
            matching="exact",
        )
        assert exact.pairs <= fuzzy.pairs

    def test_exact_matching_still_finds_shared_token_pairs(self):
        records = [tokenize("barak obama"), tokenize("barak obamma")]
        result = run_tsj(
            records, threshold=0.2, max_token_frequency=None, matching="exact"
        )
        assert result.pairs == {(0, 1)}

    def test_exact_matching_misses_all_tokens_edited(self):
        """Every token edited: no shared token, fuzzy-only discovery."""
        records = [
            TokenizedString(["chan", "kalan"]),
            TokenizedString(["chank", "alan"]),
        ]
        fuzzy = run_tsj(records, threshold=0.2, max_token_frequency=None)
        exact = run_tsj(
            records, threshold=0.2, max_token_frequency=None, matching="exact"
        )
        assert fuzzy.pairs == {(0, 1)}
        assert exact.pairs == set()

    def test_frequency_cap_drops_popular_token_pairs(self):
        # "john" appears in 3 records: with M=2 it is dropped and the pair
        # ("john x", "john y") disappears unless another token links them.
        records = [
            tokenize("john aa"),
            tokenize("john bb"),
            tokenize("john cc"),
        ]
        lossless = run_tsj(records, threshold=0.4, max_token_frequency=None)
        capped = run_tsj(records, threshold=0.4, max_token_frequency=2)
        assert capped.pairs < lossless.pairs or lossless.pairs == set()


class TestTSJMetricsAndConfig:
    def test_pipeline_metrics_exposed(self):
        records = [tokenize(name) for name in NAMES]
        result = run_tsj(records, threshold=0.2, max_token_frequency=None)
        assert result.simulated_seconds() > 0
        counters = result.counters()
        assert counters.get("verifications", 0) >= len(result.pairs)

    def test_exact_matching_runs_fewer_stages(self):
        records = [tokenize(name) for name in NAMES]
        fuzzy = run_tsj(records, threshold=0.2)
        exact = run_tsj(records, threshold=0.2, matching="exact")
        assert len(exact.pipeline.stages) < len(fuzzy.pipeline.stages)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TSJConfig(threshold=1.0)
        with pytest.raises(ValueError):
            TSJConfig(threshold=-0.1)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            TSJConfig(max_token_frequency=0)

    def test_string_config_coercion(self):
        config = TSJConfig(matching="exact", aligning="greedy", dedup="both")
        assert config.matching.value == "exact"
        assert config.aligning.value == "greedy"
        assert config.dedup.value == "both"

    def test_is_lossless(self):
        assert TSJConfig(max_token_frequency=None).is_lossless
        assert not TSJConfig().is_lossless
        assert not TSJConfig(
            max_token_frequency=None, aligning="greedy"
        ).is_lossless
