"""The HTTP service end to end: a live server, the SDK, the wire format.

The acceptance property of this layer: for every registered join
algorithm and every search method, ``ServiceClient.run(spec)`` against a
live server returns a :class:`repro.api.ResultSet` equal -- pairs,
clusters, counters, simulated seconds -- to in-process
``Session.run(spec)``; only the wall-clock split may differ.  On top of
that: auth, the uniform error envelope on every 4xx/5xx (never a
traceback), and the metrics endpoint.
"""

from __future__ import annotations

import http.client
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JoinSpec, ResultSet, Session, TopKSpec, WithinSpec
from repro.api.errors import (
    WIRE_VERSION,
    ApiError,
    AuthError,
    NotFoundError,
    ValidationError,
)
from repro.api.registry import join_algorithms, resolve_search, search_methods
from repro.client import ServiceClient
from repro.data import evaluation_corpus
from repro.server import ReproServer

pytestmark = pytest.mark.tier1

TOKEN = "test-token"

NAMES, _ = evaluation_corpus(30, ring_fraction=0.4, ring_size=4, seed=7)

#: Native thresholds per threshold kind (mirrors the registry-
#: completeness oracle): NSLD for the fuzzy joins, integer edit distance
#: for the LD family, Jaccard similarity for the set joins.
THRESHOLDS = {"nsld": 0.15, "nld": 0.15, "ld": 2, "jaccard": 0.5}


@pytest.fixture(scope="module")
def server():
    with ReproServer(token=TOKEN) as live:
        yield live


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(server.url, token=TOKEN) as sdk:
        yield sdk


def wire_equal(remote: ResultSet, local: ResultSet) -> bool:
    """Envelope equality up to the wall-clock split (the only fields a
    network hop may legitimately change)."""
    remote_dict, local_dict = remote.to_dict(), local.to_dict()
    for volatile in ("build_seconds", "query_seconds"):
        remote_dict.pop(volatile)
        local_dict.pop(volatile)
    return remote_dict == local_dict


def raw_request(server, method, path, body=None, token=TOKEN, headers=None):
    """A raw HTTP exchange, bypassing the SDK's conveniences."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        sent = dict(headers or {})
        if token is not None:
            sent["Authorization"] = f"Bearer {token}"
        connection.request(method, path, body=body, headers=sent)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestHealthAndAuth:
    def test_health_open_and_versioned(self, server):
        # No token on purpose: load balancers probe unauthenticated.
        status, body = raw_request(server, "GET", "/v1/health", token=None)
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == WIRE_VERSION

    def test_data_endpoints_require_token(self, server):
        unauthenticated = ServiceClient(server.url)
        with pytest.raises(AuthError):
            unauthenticated.metrics()
        with pytest.raises(AuthError):
            unauthenticated.run(JoinSpec(names=("a", "b")))

    def test_wrong_token_rejected(self, server):
        status, body = raw_request(
            server, "GET", "/v1/metrics", token="wrong-token"
        )
        assert status == 401
        assert json.loads(body)["error"]["type"] == "auth"


class TestJoinEquivalence:
    @pytest.mark.parametrize("algorithm", join_algorithms())
    def test_remote_equals_in_process(self, client, algorithm):
        from repro.api.registry import resolve_join

        threshold = THRESHOLDS[resolve_join(algorithm).threshold_kind]
        spec = JoinSpec(algorithm=algorithm, threshold=threshold, names=NAMES)
        remote = client.run(spec)
        local = Session().run(spec)
        assert wire_equal(remote, local)
        assert remote.request == spec.to_dict()

    def test_join_endpoint_defaults_the_type(self, client):
        # /v1/join accepts a tag-less JoinSpec payload.
        spec = JoinSpec(threshold=0.2, names=NAMES)
        remote = client.join(NAMES, threshold=0.2)
        assert wire_equal(remote, Session().run(spec))


class TestSearchEquivalence:
    @pytest.mark.parametrize("method", search_methods())
    def test_topk_remote_equals_in_process(self, client, method):
        # A corpus unique per method: the server session is shared, and
        # cache counters must match a fresh in-process session's.
        names = tuple(f"{name} {method}" for name in NAMES)
        spec = TopKSpec(queries=(names[0], "zz zz"), k=3, method=method, names=names)
        assert wire_equal(client.run(spec), Session().run(spec))

    @pytest.mark.parametrize(
        "method",
        [m for m in search_methods() if resolve_search(m).supports_within],
    )
    def test_within_remote_equals_in_process(self, client, method):
        names = tuple(f"{name} {method} w" for name in NAMES)
        spec = WithinSpec(
            queries=(names[1], names[2]), radius=0.3, method=method, names=names
        )
        assert wire_equal(client.run(spec), Session().run(spec))

    def test_knn_endpoint(self, client):
        names = tuple(f"{name} knn" for name in NAMES)
        remote = client.knn((names[0],), k=2, names=names)
        local = Session().run(
            TopKSpec(queries=(names[0],), k=2, method="vptree", names=names)
        )
        assert wire_equal(remote, local)

    def test_compare_via_run(self, client):
        spec_payload = {"type": "compare", "name_a": "jon", "name_b": "john"}
        remote = client.run(spec_payload)
        local = Session().run(
            __import__("repro").CompareSpec(name_a="jon", name_b="john")
        )
        assert remote.value == local.value


@settings(max_examples=8, deadline=None)
@given(
    names=st.lists(
        st.text(alphabet="ab ", min_size=1, max_size=8).filter(str.strip),
        min_size=2,
        max_size=8,
        unique=True,
    ),
    threshold=st.sampled_from([0.1, 0.25, 0.5]),
    k=st.integers(min_value=1, max_value=3),
)
def test_property_remote_equals_in_process(live_service, names, threshold, k):
    """run(spec) over HTTP == Session.run(spec), property-tested."""
    client, _ = live_service
    join = JoinSpec(
        algorithm="naive", threshold=threshold, names=names, params={}
    )
    assert wire_equal(client.run(join), Session().run(join))
    topk = TopKSpec(queries=(names[0],), k=k, names=names)
    assert wire_equal(client.run(topk), Session().run(topk))


@pytest.fixture(scope="module")
def live_service():
    # hypothesis forbids function-scoped fixtures; share one server.
    with ReproServer(token=TOKEN) as live:
        with ServiceClient(live.url, token=TOKEN) as sdk:
            yield sdk, live


class TestMalformedPayloads:
    """Every bad request answers the envelope -- never a traceback."""

    def assert_error(self, server, body, *, expect_type="validation", path="/v1/run"):
        status, raw = raw_request(server, "POST", path, body=body)
        payload = json.loads(raw)
        assert status == 400, payload
        assert set(payload) == {"error"}
        assert payload["error"]["type"] == expect_type
        assert "message" in payload["error"]
        return payload["error"]["message"]

    def test_invalid_json(self, server):
        message = self.assert_error(server, b"{not json")
        assert "not valid JSON" in message

    def test_empty_body(self, server):
        self.assert_error(server, b"")

    def test_non_object_body(self, server):
        message = self.assert_error(server, b"[1, 2, 3]")
        assert "JSON object" in message

    def test_run_requires_type(self, server):
        message = self.assert_error(server, b"{}")
        assert '"type"' in message

    def test_unknown_type(self, server):
        message = self.assert_error(server, b'{"type": "sort"}')
        assert "unknown spec type" in message

    def test_unknown_field(self, server):
        self.assert_error(server, b'{"type": "join", "thresold": 0.1}')

    def test_unknown_version(self, server):
        message = self.assert_error(server, b'{"type": "join", "version": 99}')
        assert "wire format version 99" in message

    def test_bad_param_shape(self, server):
        self.assert_error(server, b'{"type": "join", "names": 42}')

    def test_endpoint_type_mismatch(self, server):
        message = self.assert_error(
            server, b'{"type": "compare"}', path="/v1/join"
        )
        assert "/v1/run" in message

    def test_unknown_route_404(self, server):
        status, raw = raw_request(server, "POST", "/v2/join", body=b"{}")
        assert status == 404
        assert json.loads(raw)["error"]["type"] == "not_found"

    def test_wrong_method_405(self, server):
        status, raw = raw_request(server, "GET", "/v1/join")
        assert status == 405
        assert json.loads(raw)["error"]["type"] == "method_not_allowed"

    def test_internal_errors_are_enveloped_500s(self, server):
        # A well-formed spec whose params the algorithm rejects: the
        # failure happens inside the runner, past validation.
        body = json.dumps(
            {"type": "join", "names": list(NAMES), "params": {"bogus_kw": 1}}
        ).encode()
        status, raw = raw_request(server, "POST", "/v1/run", body=body)
        payload = json.loads(raw)
        assert status == 500
        assert payload["error"]["type"] == "internal"
        assert "Traceback" not in raw.decode()

    def test_typed_errors_cross_the_wire(self, client):
        with pytest.raises(ValidationError, match="unknown spec type"):
            client.run({"type": "sort"})
        with pytest.raises(NotFoundError):
            client._request("POST", "/v2/nope", {})
        with pytest.raises(ApiError):
            client.run({"type": "join"})  # no corpus resident server-side


class TestMetrics:
    def test_counters_and_gauges(self, server, client):
        client.health()
        client.search(("metrics probe",), k=1, names=("metrics one", "metrics two"))
        metrics = client.metrics()
        assert metrics["version"] == WIRE_VERSION
        assert metrics["requests_total"] >= 2
        assert metrics["requests"]["/v1/search"]["200"] >= 1
        latency = metrics["latency_ms"]
        assert latency["count"] == metrics["requests_total"]
        assert sum(latency["buckets"].values()) == latency["count"]
        session = metrics["session"]
        assert session["resident_corpora"] >= 1
        assert set(session["result_cache"]) == {"hits", "misses", "resident"}
        assert session["result_cache"]["misses"] >= 1
