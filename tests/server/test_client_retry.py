"""The client's retry policy, exercised against a scripted fake transport.

No sockets here: ``connection_factory`` and ``sleep`` are the injection
points, so every test pins down exactly which failures retry, how long
the backoff waits, and which failures must NOT retry (4xx: re-sending a
request the server already ruled invalid cannot help).
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api.errors import (
    ApiError,
    DeadlineExceededError,
    ServerError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.client import ServiceClient

pytestmark = pytest.mark.tier1


class FakeResponse:
    def __init__(self, status, payload):
        self.status = status
        self._body = json.dumps(payload).encode()

    def read(self):
        return self._body


class FakeConnection:
    """Replays a script of responses/exceptions, one per request."""

    def __init__(self, script, log):
        self._script = script
        self._log = log
        self.closed = False

    def request(self, method, path, body=None, headers=None):
        self._log.append(("request", method, path))

    def getresponse(self):
        step = self._script.pop(0)
        if isinstance(step, Exception):
            raise step
        return FakeResponse(*step)

    def close(self):
        self.closed = True
        self._log.append(("close",))


def make_client(script, *, retries=3, backoff=0.1, max_elapsed=None, rng=None):
    """A client whose transport replays ``script`` and records sleeps.

    ``rng`` defaults to a constant 1.0 so the full-jitter backoff
    produces its maximum (deterministic) delays for exact assertions.
    """
    log: list = []
    sleeps: list[float] = []
    remaining = list(script)

    def factory(host, port, timeout):
        log.append(("connect", host, port))
        return FakeConnection(remaining, log)

    client = ServiceClient(
        "http://fake:1234",
        retries=retries,
        backoff=backoff,
        max_elapsed=max_elapsed,
        sleep=sleeps.append,
        rng=rng if rng is not None else (lambda: 1.0),
        connection_factory=factory,
    )
    return client, log, sleeps


OK = (200, {"ok": True})
ENVELOPE_500 = (500, {"error": {"type": "internal", "message": "boom"}})
ENVELOPE_400 = (400, {"error": {"type": "validation", "message": "bad spec"}})


class TestRetries:
    def test_connection_error_retries_then_succeeds(self):
        client, log, sleeps = make_client([ConnectionRefusedError("nope"), OK])
        assert client.health() == {"ok": True}
        # The dead connection was dropped and a fresh one dialled.
        assert log.count(("connect", "fake", 1234)) == 2
        assert sleeps == [0.1]

    def test_5xx_retries_then_succeeds(self):
        client, _, sleeps = make_client([ENVELOPE_500, ENVELOPE_500, OK])
        assert client.health() == {"ok": True}
        assert sleeps == [0.1, 0.2]

    def test_backoff_doubles_per_attempt(self):
        client, _, sleeps = make_client(
            [ConnectionResetError()] * 3 + [OK], backoff=0.05
        )
        assert client.health() == {"ok": True}
        assert sleeps == [0.05, 0.1, 0.2]

    def test_exhaustion_raises_service_unavailable(self):
        client, _, sleeps = make_client([OSError("down")] * 4, retries=3)
        with pytest.raises(ServiceUnavailableError, match="4 attempt"):
            client.health()
        assert len(sleeps) == 3

    def test_exhausted_5xx_raises_the_server_error(self):
        client, _, _ = make_client([ENVELOPE_500] * 4, retries=3)
        with pytest.raises(ServerError, match="boom"):
            client.health()

    def test_http_protocol_error_is_retryable(self):
        # A server dying mid-response surfaces as BadStatusLine.
        client, _, _ = make_client([http.client.BadStatusLine(""), OK])
        assert client.health() == {"ok": True}

    def test_jitter_scales_the_computed_delay(self):
        client, _, sleeps = make_client(
            [ENVELOPE_500, ENVELOPE_500, OK], backoff=0.1, rng=lambda: 0.5
        )
        assert client.health() == {"ok": True}
        assert sleeps == [0.05, 0.1]  # half of the full 0.1 / 0.2

    def test_retry_after_hint_replaces_backoff(self):
        shed = (
            503,
            {
                "error": {
                    "type": "overloaded",
                    "message": "at capacity",
                    "retry_after": 0.7,
                }
            },
        )
        client, _, sleeps = make_client([shed, OK], backoff=0.1)
        assert client.health() == {"ok": True}
        assert sleeps == [0.7]

    def test_max_elapsed_abandons_rather_than_oversleep(self):
        # First retry (0.1s) fits the 0.15s budget; the second (0.2s)
        # would overrun it, so the loop raises the last error instead.
        client, _, sleeps = make_client(
            [ENVELOPE_500] * 4, backoff=0.1, max_elapsed=0.15
        )
        with pytest.raises(ServerError, match="boom"):
            client.health()
        assert sleeps == [0.1]

    def test_deadline_exceeded_is_never_retried(self):
        expired = (
            504,
            {"error": {"type": "deadline_exceeded", "message": "too slow"}},
        )
        client, log, sleeps = make_client([expired, OK])
        with pytest.raises(DeadlineExceededError, match="too slow"):
            client.health()
        assert sleeps == []
        assert sum(1 for entry in log if entry[0] == "request") == 1

    def test_spec_deadline_caps_the_retry_budget(self):
        # deadline_ms=50 -> 0.05s budget; the first computed delay (0.1s)
        # already overruns it, so no sleep happens at all.
        client, _, sleeps = make_client([ENVELOPE_500] * 2, backoff=0.1)
        with pytest.raises(ServerError, match="boom"):
            client.run({"type": "compare", "deadline_ms": 50})
        assert sleeps == []


class TestNoRetryOn4xx:
    def test_400_raises_typed_immediately(self):
        client, log, sleeps = make_client([ENVELOPE_400, OK])
        with pytest.raises(ValidationError, match="bad spec"):
            client.health()
        assert sleeps == []
        assert sum(1 for entry in log if entry[0] == "request") == 1

    def test_unknown_4xx_still_typed(self):
        answer = (418, {"error": {"type": "teapot", "message": "no"}})
        client, _, _ = make_client([answer])
        with pytest.raises(ApiError) as excinfo:
            client.health()
        assert excinfo.value.status == 418
        assert not isinstance(excinfo.value, ServerError)


class TestTransport:
    def test_connection_reused_across_requests(self):
        client, log, _ = make_client([OK, OK])
        client.health()
        client.health()
        assert log.count(("connect", "fake", 1234)) == 1

    def test_close_is_idempotent(self):
        client, log, _ = make_client([OK])
        client.health()
        client.close()
        client.close()
        assert log.count(("close",)) == 1

    def test_rejects_non_http_url(self):
        with pytest.raises(ValueError, match="base_url"):
            ServiceClient("ftp://fake:1")

    def test_path_prefix_preserved(self):
        client, log, _ = make_client([OK])
        client._prefix = "/proxy"
        client.health()
        assert ("request", "GET", "/proxy/v1/health") in log
