"""``ReproServer.close()``: no zombie threads, no leaked sockets.

The pre-PR-8 bug: ``close()`` joined the serving thread with a timeout
and returned silently even when the thread never exited, leaking both
the thread and (worse) the listening socket.  Pinned here: the socket
is force-closed unconditionally, a wedged thread is loud
(``RuntimeError``), and concurrent/repeated closes are safe.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.server import ReproServer

pytestmark = pytest.mark.tier1


def port_is_free(host: str, port: int) -> bool:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        return probe.connect_ex((host, port)) != 0
    finally:
        probe.close()


class TestClose:
    def test_close_stops_serving_and_releases_the_port(self):
        server = ReproServer().start()
        host, port = server.host, server.port
        assert not port_is_free(host, port)
        server.close()
        assert server._thread is None
        assert port_is_free(host, port)

    def test_close_without_start_releases_the_port(self):
        server = ReproServer()
        host, port = server.host, server.port
        server.close()  # must not hang on shutdown()'s handshake
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind((host, port))  # the address is actually released
        finally:
            probe.close()

    def test_close_is_idempotent(self):
        server = ReproServer().start()
        server.close()
        server.close()
        server.close()

    def test_concurrent_closers_all_return(self):
        server = ReproServer().start()
        errors = []

        def closer():
            try:
                server.close()
            except Exception as exc:  # noqa: BLE001 -- collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []

    def test_wedged_serving_thread_is_loud(self):
        server = ReproServer()
        wedged = threading.Thread(
            target=threading.Event().wait, args=(30,), daemon=True
        )
        wedged.start()
        # Simulate a serving thread that ignores shutdown: close() must
        # still release the socket, then refuse to fail silently.
        server._thread = wedged
        with pytest.raises(RuntimeError, match="did not exit"):
            server.close(join_timeout=0.05)
        # The socket was force-closed before the error was raised.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind((server.host, server.port))
        finally:
            probe.close()

    def test_context_manager_closes(self):
        with ReproServer() as server:
            host, port = server.host, server.port
            assert not port_is_free(host, port)
        assert port_is_free(host, port)
