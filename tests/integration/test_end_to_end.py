"""End-to-end integration tests: the paper's full application pipeline.

Corpus generation -> tokenization -> TSJ join -> similarity-graph
clustering -> ring-detection scoring, plus cross-checks between the
independent join implementations on the same workload.
"""

from __future__ import annotations

import pytest

from repro.analysis import cluster_pairs, join_quality, ring_detection_report
from repro.data import corpus_with_rings, evaluation_corpus
from repro.joins.naive import naive_nsld_self_join
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.metricspace import HMJ, MRMAPSS, ClusterJoin
from repro.tokenize import tokenize
from repro.tsj import TSJ, TSJConfig


@pytest.fixture(scope="module")
def ring_corpus():
    names, rings = corpus_with_rings(120, 6, 5, seed=42, max_edits=1)
    return names, rings, [tokenize(name) for name in names]


@pytest.fixture(scope="module")
def oracle_pairs(ring_corpus):
    _, _, records = ring_corpus
    return naive_nsld_self_join(records, 0.15)


@pytest.fixture(scope="module")
def tsj_result(ring_corpus):
    _, _, records = ring_corpus
    engine = MapReduceEngine(ClusterConfig(n_machines=8))
    config = TSJConfig(threshold=0.15, max_token_frequency=None)
    return TSJ(config, engine).self_join(records)


class TestFraudDetectionPipeline:
    def test_tsj_matches_oracle(self, tsj_result, oracle_pairs):
        assert tsj_result.pairs == oracle_pairs

    def test_rings_recovered(self, ring_corpus, tsj_result):
        _, rings, _ = ring_corpus
        clusters = cluster_pairs(tsj_result.pairs)
        report = ring_detection_report(clusters, rings)
        assert report.ring_recall >= 0.9
        assert report.member_recall >= 0.6

    def test_all_joiners_agree(self, ring_corpus, oracle_pairs):
        """TSJ and the three metric-space joins are independent
        implementations; on the same workload they must coincide."""
        _, _, records = ring_corpus
        engine = MapReduceEngine(ClusterConfig(n_machines=8))
        for joiner in (
            ClusterJoin(engine, 0.15, seed=7),
            MRMAPSS(engine, 0.15, partition_limit=32, seed=7),
            HMJ(engine, 0.15, partition_limit=32, seed=7),
        ):
            assert joiner.self_join(records).pairs == oracle_pairs

    def test_approximation_stack_quality(self, ring_corpus, tsj_result):
        """The fully-approximated configuration (greedy + exact matching +
        sketch-based M) keeps high recall on ring workloads."""
        _, _, records = ring_corpus
        engine = MapReduceEngine(ClusterConfig(n_machines=8))
        config = TSJConfig(
            threshold=0.15,
            max_token_frequency=50,
            matching="exact",
            aligning="greedy",
            frequency_mode="sketch",
        )
        approximate = TSJ(config, engine).self_join(records)
        quality = join_quality(approximate.pairs, tsj_result.pairs)
        assert quality.precision == 1.0
        assert quality.recall > 0.8

    def test_simulated_scaling_sanity(self, tsj_result):
        """More machines never slows the simulated pipeline down much,
        and scaling 10x helps substantially on this workload."""
        t10 = tsj_result.pipeline.rebin(10).simulated_seconds()
        t100 = tsj_result.pipeline.rebin(100).simulated_seconds()
        assert t100 < t10


class TestDataCleaningWorkload:
    def test_evaluation_corpus_joinable(self):
        names, _ = evaluation_corpus(150, seed=9)
        records = [tokenize(name) for name in names]
        engine = MapReduceEngine(ClusterConfig(n_machines=4))
        result = TSJ(TSJConfig(threshold=0.1), engine).self_join(records)
        assert result.pairs == naive_nsld_self_join(records, 0.1) or (
            result.pairs <= naive_nsld_self_join(records, 0.1)
        )

    def test_two_set_join_between_sources(self):
        """R x P join: new signups against the known-fraud list."""
        known = [tokenize(n) for n in ["barak obama", "vladimir petrov"]]
        signups = [
            tokenize(n)
            for n in ["borak obama", "maria lopez", "vladimr petrov"]
        ]
        engine = MapReduceEngine(ClusterConfig(n_machines=4))
        config = TSJConfig(threshold=0.15, max_token_frequency=None)
        result = TSJ(config, engine).join(known, signups)
        assert result.pairs == {(0, 0), (1, 2)}
