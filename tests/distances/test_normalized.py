"""Tests for NLD (Def. 2) and the bound Lemmas 3, 8, 9, 10."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances import (
    levenshtein,
    max_ld_for_longer,
    max_ld_for_shorter,
    min_ld_exceeding_for_longer,
    min_ld_exceeding_for_shorter,
    min_length_for_nld,
    nld,
    nld_length_lower_bound,
    nld_within,
)
from repro.distances.normalized import length_window, nld_length_upper_bound
from tests.conftest import short_strings

thresholds = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


class TestNLDKnownValues:
    def test_paper_example_thomson(self):
        assert nld("thomson", "thompson") == pytest.approx(2 * 1 / (7 + 8 + 1))

    def test_paper_example_alex(self):
        assert nld("alex", "alexa") == pytest.approx(2 * 1 / (4 + 5 + 1))

    def test_identical(self):
        assert nld("abc", "abc") == 0.0

    def test_disjoint_same_length(self):
        # LD = 3, so NLD = 6 / (3 + 3 + 3) = 2/3.
        assert nld("abc", "xyz") == pytest.approx(2 / 3)

    def test_empty_vs_nonempty_is_one(self):
        assert nld("", "abc") == 1.0

    def test_empty_vs_empty_is_zero(self):
        assert nld("", "") == 0.0


class TestNLDMetricProperties:
    @given(short_strings(), short_strings())
    def test_range(self, x, y):
        assert 0.0 <= nld(x, y) <= 1.0

    @given(short_strings())
    def test_identity(self, x):
        assert nld(x, x) == 0.0

    @given(short_strings(), short_strings())
    def test_symmetry(self, x, y):
        assert nld(x, y) == pytest.approx(nld(y, x))

    @given(short_strings(), short_strings(), short_strings())
    def test_triangle_inequality(self, x, y, z):
        # Theorem 1 (Li & Liu 2007).  Allow float slack.
        assert nld(x, y) + nld(y, z) >= nld(x, z) - 1e-12


class TestLemma3:
    @given(short_strings(), short_strings())
    def test_length_bounds_hold(self, x, y):
        value = nld(x, y)
        assert value >= nld_length_lower_bound(len(x), len(y)) - 1e-12
        if x or y:
            assert value <= nld_length_upper_bound(len(x), len(y)) + 1e-12

    def test_lower_bound_examples(self):
        assert nld_length_lower_bound(4, 8) == pytest.approx(0.5)
        assert nld_length_lower_bound(8, 4) == pytest.approx(0.5)
        assert nld_length_lower_bound(0, 0) == 0.0

    def test_upper_bound_examples(self):
        assert nld_length_upper_bound(4, 4) == pytest.approx(2 / 3)
        assert nld_length_upper_bound(0, 5) == pytest.approx(1.0)


class TestLemma8:
    @given(short_strings(), short_strings(), thresholds)
    def test_ld_upper_bounds(self, x, y, threshold):
        """If NLD <= T then LD obeys the Lemma 8 caps."""
        if nld(x, y) > threshold:
            return
        distance = levenshtein(x, y)
        shorter, longer = sorted((x, y), key=len)
        assert distance <= max_ld_for_shorter(threshold, len(longer))
        if len(x) != len(y):
            assert distance <= max_ld_for_longer(threshold, len(shorter))

    def test_known_value(self):
        # T = 0.1, |y| = 10: floor(2*0.1*10 / 1.9) = floor(1.05) = 1.
        assert max_ld_for_shorter(0.1, 10) == 1
        # T = 0.1, |y| = 10 (shorter): floor(0.1*10 / 0.9) = floor(1.11) = 1.
        assert max_ld_for_longer(0.1, 10) == 1

    def test_rejects_threshold_one_for_longer(self):
        with pytest.raises(ValueError):
            max_ld_for_longer(1.0, 5)


class TestLemma9:
    @given(short_strings(), short_strings(), thresholds)
    def test_length_condition(self, x, y, threshold):
        """If NLD <= T then the shorter length meets the Lemma 9 floor."""
        if nld(x, y) > threshold:
            return
        shorter, longer = sorted((len(x), len(y)))
        assert shorter >= min_length_for_nld(threshold, longer)

    def test_known_value(self):
        # T = 0.1, |y| = 10: ceil(0.9 * 10) = 9.
        assert min_length_for_nld(0.1, 10) == 9

    def test_window(self):
        assert length_window(0.1, 10) == (9, 10)


class TestLemma10:
    @given(short_strings(), short_strings(), thresholds)
    def test_ld_lower_bounds(self, x, y, threshold):
        """If NLD > T then LD strictly exceeds the Lemma 10 floors."""
        if nld(x, y) <= threshold:
            return
        distance = levenshtein(x, y)
        shorter, longer = sorted((len(x), len(y)))
        assert distance > min_ld_exceeding_for_shorter(threshold, longer)
        if len(x) != len(y):
            assert distance > min_ld_exceeding_for_longer(threshold, shorter)

    def test_known_value(self):
        # T = 0.1, longer = 10: floor(0.1*10 / 1.9) = 0, so LD >= 1.
        assert min_ld_exceeding_for_shorter(0.1, 10) == 0
        assert min_ld_exceeding_for_longer(0.1, 10) == 1


class TestNLDWithin:
    @given(short_strings(), short_strings(), thresholds)
    def test_agrees_with_exact(self, x, y, threshold):
        exact = nld(x, y)
        result = nld_within(x, y, threshold)
        if exact <= threshold:
            assert result == pytest.approx(exact)
        else:
            assert result is None

    def test_negative_threshold(self):
        assert nld_within("a", "a", -0.5) is None

    def test_threshold_exactly_on_boundary(self):
        """Regression: a threshold equal to the exact NLD must verify.
        ``NLD("a", "b") = 2/3`` while the closed-form Lemma 8 cap
        ``floor(2*T/(2-T))`` evaluates to 0 at ``T = 2/3`` (float
        rounding), which used to reject the distance-1 verification."""
        exact = nld("a", "b")
        assert nld_within("a", "b", exact) == exact
        assert max_ld_for_shorter(exact, 1) == 1

    def test_threshold_one_returns_exact(self):
        assert nld_within("", "abc", 1.0) == 1.0

    def test_equal_strings_fast_path(self):
        assert nld_within("same", "same", 0.0) == 0.0

    def test_length_condition_prunes(self):
        # |x|=1, |y|=10, T=0.1: Lemma 9 floor is 9 > 1, pruned without DP.
        counted = []
        assert nld_within("a", "abcdefghij", 0.1, ops=counted.append) is None
        assert counted == [1]
