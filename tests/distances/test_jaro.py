"""Tests for Jaro and Jaro-Winkler similarities."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.distances import jaro, jaro_winkler
from tests.conftest import short_strings


class TestJaroKnownValues:
    def test_classic_martha(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444444, abs=1e-6)

    def test_classic_dixon(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7666667, abs=1e-6)

    def test_identical(self):
        assert jaro("hello", "hello") == 1.0

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_strings(self):
        assert jaro("", "") == 1.0
        assert jaro("", "abc") == 0.0
        assert jaro("abc", "") == 0.0

    def test_single_chars(self):
        assert jaro("a", "a") == 1.0
        assert jaro("a", "b") == 0.0


class TestJaroProperties:
    @given(short_strings(), short_strings())
    def test_range(self, x, y):
        assert 0.0 <= jaro(x, y) <= 1.0

    @given(short_strings(), short_strings())
    def test_symmetry(self, x, y):
        assert jaro(x, y) == pytest.approx(jaro(y, x))

    @given(short_strings())
    def test_identity(self, x):
        assert jaro(x, x) == 1.0


class TestJaroWinkler:
    def test_classic_martha(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611111, abs=1e-6)

    def test_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes")

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("xabc", "yabc") == pytest.approx(jaro("xabc", "yabc"))

    def test_prefix_cap_at_four(self):
        # Prefix longer than 4 contributes only 4 characters of boost.
        base = jaro("abcdefgh", "abcdefgx")
        assert jaro_winkler("abcdefgh", "abcdefgx") == pytest.approx(
            base + 4 * 0.1 * (1 - base)
        )

    @given(short_strings(), short_strings())
    def test_range(self, x, y):
        assert 0.0 <= jaro_winkler(x, y) <= 1.0

    @given(short_strings(), short_strings())
    def test_at_least_jaro(self, x, y):
        assert jaro_winkler(x, y) >= jaro(x, y) - 1e-12

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5, max_prefix=4)

    def test_triangle_inequality_violation_exists(self):
        """The paper notes JW violates the triangle inequality; exhibit it.

        Distances d = 1 - JW: d(x, z) > d(x, y) + d(y, z) for some triple.
        """
        x, y, z = "ab", "a", "ac"
        d_xy = 1 - jaro_winkler(x, y)
        d_yz = 1 - jaro_winkler(y, z)
        d_xz = 1 - jaro_winkler(x, z)
        # This specific triple may or may not violate; search a tiny space.
        found = False
        candidates = ["a", "ab", "ac", "abc", "acb", "b", "bc", "ba", "cab"]
        for sx in candidates:
            for sy in candidates:
                for sz in candidates:
                    if (1 - jaro_winkler(sx, sz)) > (
                        (1 - jaro_winkler(sx, sy)) + (1 - jaro_winkler(sy, sz)) + 1e-9
                    ):
                        found = True
        assert found
