"""Tests for FMS / AFMS (Chaudhuri et al. 2003)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances import afms, fms
from repro.distances.fms import fmd
from tests.conftest import nonempty_strings

token_lists = st.lists(nonempty_strings(5), min_size=0, max_size=4)


class TestFMD:
    def test_identical_zero(self):
        assert fmd(["barak", "obama"], ["barak", "obama"]) == 0.0

    def test_empty_source_zero(self):
        assert fmd([], ["a", "b"]) == 0.0

    def test_full_deletion(self):
        # Transforming ["abc"] into [] deletes one weight-1 token.
        assert fmd(["abc"], []) == pytest.approx(1.0)

    def test_replacement_cheaper_than_delete_insert(self):
        # One edited character out of five: cost 1/5 of the token weight.
        assert fmd(["kalan"], ["kalun"]) == pytest.approx(0.2)

    def test_weights_normalise(self):
        weights = {"rare": 10.0, "common": 0.1}
        # Editing the rare token is much more costly relative to total.
        rare_edit = fmd(["rare", "common"], ["rarX", "common"], weights)
        common_edit = fmd(["rare", "common"], ["rare", "commoX"], weights)
        assert rare_edit > common_edit


class TestFMS:
    def test_identical(self):
        assert fms(["barak", "obama"], ["barak", "obama"]) == 1.0

    def test_order_sensitivity(self):
        """The paper's key criticism: FMS is sensitive to token order."""
        straight = fms(["barak", "obama"], ["barak", "obama"])
        shuffled = fms(["barak", "obama"], ["obama", "barak"])
        assert straight == 1.0
        assert shuffled < 1.0

    def test_asymmetry(self):
        """The paper's other criticism: FMS is asymmetric."""
        found = False
        pool = [["aa"], ["aa", "bb"], ["aa", "bb", "cc"], ["ab"]]
        for u in pool:
            for v in pool:
                if abs(fms(u, v) - fms(v, u)) > 1e-9:
                    found = True
        assert found

    def test_floor_at_zero(self):
        assert fms(["a"], ["xxxxxxxxxx", "yyyyyyyyyy"]) >= 0.0

    @given(token_lists, token_lists)
    def test_range(self, u, v):
        assert 0.0 <= fms(u, v) <= 1.0


class TestAFMS:
    def test_position_insensitive(self):
        assert afms(["barak", "obama"], ["obama", "barak"]) == 1.0

    def test_identical(self):
        assert afms(["x", "y"], ["x", "y"]) == 1.0

    def test_many_to_one_matching_allowed(self):
        # Both "ana" tokens match the single "ana" in v at zero cost --
        # the known AFMS quirk of collapsing duplicates.
        assert afms(["ana", "ana"], ["ana"]) == 1.0

    def test_empty_source(self):
        assert afms([], ["a"]) == 1.0

    def test_close_tokens(self):
        assert afms(["kalan"], ["kalun"]) == pytest.approx(0.8)

    @given(token_lists, token_lists)
    def test_range(self, u, v):
        assert 0.0 <= afms(u, v) <= 1.0

    @given(token_lists, token_lists)
    def test_at_least_fms(self, u, v):
        """AFMS relaxes the matching constraints, so it never scores lower
        than FMS on the same pair."""
        assert afms(u, v) >= fms(u, v) - 1e-9
