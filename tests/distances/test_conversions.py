"""Tests for the distance <-> similarity conversion schemes (Sec. II-B)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances.conversions import (
    ConversionScheme,
    distance_to_similarity,
    similarity_to_distance,
)

unit_distances = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
any_distances = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestSchemes:
    def test_complement(self):
        assert distance_to_similarity(0.25) == 0.75
        assert distance_to_similarity(0.0) == 1.0
        assert distance_to_similarity(1.0) == 0.0

    def test_inverse(self):
        assert distance_to_similarity(1.0, "inverse") == 0.5
        assert distance_to_similarity(0.0, "inverse") == 1.0

    def test_exponential(self):
        assert distance_to_similarity(0.0, "exponential") == 1.0
        assert distance_to_similarity(1.0, "exponential") == pytest.approx(
            math.exp(-1)
        )

    def test_string_and_enum_agree(self):
        assert distance_to_similarity(0.3, "inverse") == distance_to_similarity(
            0.3, ConversionScheme.INVERSE
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            distance_to_similarity(-0.1)

    def test_complement_needs_unit_range(self):
        with pytest.raises(ValueError):
            distance_to_similarity(1.5, "complement")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            distance_to_similarity(0.5, "bogus")


class TestRoundTrips:
    @given(unit_distances)
    def test_complement_roundtrip(self, d):
        assert similarity_to_distance(
            distance_to_similarity(d, "complement"), "complement"
        ) == pytest.approx(d)

    @given(any_distances)
    def test_inverse_roundtrip(self, d):
        assert similarity_to_distance(
            distance_to_similarity(d, "inverse"), "inverse"
        ) == pytest.approx(d)

    @given(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    def test_exponential_roundtrip(self, d):
        assert similarity_to_distance(
            distance_to_similarity(d, "exponential"), "exponential"
        ) == pytest.approx(d, abs=1e-9)

    @given(any_distances, any_distances)
    def test_monotone_decreasing(self, a, b):
        """Thresholding similarity is thresholding distance (Sec. II-B)."""
        for scheme in ("inverse", "exponential"):
            if a < b:
                assert distance_to_similarity(a, scheme) >= distance_to_similarity(
                    b, scheme
                )

    def test_inverse_domain_validation(self):
        with pytest.raises(ValueError):
            similarity_to_distance(0.0, "inverse")
        with pytest.raises(ValueError):
            similarity_to_distance(1.5, "complement")
        with pytest.raises(ValueError):
            similarity_to_distance(0.0, "exponential")
