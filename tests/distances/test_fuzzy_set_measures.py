"""Tests for FJaccard / FCosine / FDice (Wang et al.) and SoftTfIdf."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances import (
    fuzzy_cosine,
    fuzzy_dice,
    fuzzy_jaccard,
    fuzzy_overlap,
    multiset_jaccard,
    soft_tfidf,
)
from tests.conftest import nonempty_strings

token_lists = st.lists(nonempty_strings(5), min_size=0, max_size=4)


class TestFuzzyOverlap:
    def test_identical_tokens_full_overlap(self):
        assert fuzzy_overlap(["chan", "kalan"], ["chan", "kalan"]) == pytest.approx(2.0)

    def test_edited_tokens_still_overlap(self):
        """The motivating improvement over crisp measures (Sec. II-D)."""
        overlap = fuzzy_overlap(
            ["chan", "kalan"], ["chank", "alan"], token_threshold=0.5
        )
        assert overlap > 1.5  # both token pairs match fuzzily

    def test_dissimilar_tokens_no_overlap(self):
        assert fuzzy_overlap(["abc"], ["xyz"]) == 0.0

    def test_empty_sets(self):
        assert fuzzy_overlap([], ["a"]) == 0.0
        assert fuzzy_overlap(["a"], []) == 0.0

    def test_one_to_one_matching(self):
        # Two copies of "ann" in x cannot both match the single "ann" in y.
        overlap = fuzzy_overlap(["ann", "ann"], ["ann"], token_threshold=0.9)
        assert overlap == pytest.approx(1.0)

    def test_weights_scale_contributions(self):
        weights = {"ann": 4.0}
        overlap = fuzzy_overlap(["ann"], ["ann"], weights=weights)
        assert overlap == pytest.approx(4.0)  # (4 + 4) / 2 * sim 1.0

    def test_threshold_gates_matches(self):
        # "abc" vs "abd": NLD = 2/7, sim = 5/7 ~ 0.714.
        assert fuzzy_overlap(["abc"], ["abd"], token_threshold=0.8) == 0.0
        assert fuzzy_overlap(["abc"], ["abd"], token_threshold=0.7) > 0.0


class TestFuzzyMeasures:
    def test_identical_sets_score_one(self):
        x = ["chan", "kalan"]
        assert fuzzy_jaccard(x, x) == pytest.approx(1.0)
        assert fuzzy_cosine(x, x) == pytest.approx(1.0)
        assert fuzzy_dice(x, x) == pytest.approx(1.0)

    def test_reduces_to_crisp_at_threshold_one(self):
        """With T1 = 1.0 only exact token matches count."""
        x, y = ["ann", "lee"], ["ann", "li"]
        assert fuzzy_jaccard(x, y, token_threshold=1.0) == pytest.approx(
            multiset_jaccard(x, y)
        )

    def test_tolerates_token_edits_better_than_crisp(self):
        x, y = ["chan", "kalan"], ["chank", "alan"]
        assert multiset_jaccard(x, y) == 0.0
        assert fuzzy_jaccard(x, y, token_threshold=0.5) > 0.5

    @given(token_lists, token_lists)
    def test_ranges(self, x, y):
        for measure in (fuzzy_jaccard, fuzzy_cosine, fuzzy_dice):
            value = measure(x, y, token_threshold=0.8)
            assert -1e-12 <= value <= 1.0 + 1e-9

    @given(token_lists, token_lists)
    def test_symmetry(self, x, y):
        for measure in (fuzzy_jaccard, fuzzy_cosine, fuzzy_dice):
            assert measure(x, y) == pytest.approx(measure(y, x))

    def test_empty_vs_empty(self):
        assert fuzzy_jaccard([], []) == 1.0
        assert fuzzy_dice([], []) == 1.0

    def test_empty_vs_nonempty(self):
        assert fuzzy_jaccard([], ["a"]) == 0.0
        assert fuzzy_cosine([], ["a"]) == 0.0
        assert fuzzy_dice([], ["a"]) == 0.0

    def test_dice_at_least_jaccard(self):
        x, y = ["chan", "kalan"], ["chank", "alan"]
        assert fuzzy_dice(x, y, 0.5) >= fuzzy_jaccard(x, y, 0.5)


class TestSoftTfIdf:
    def test_identical(self):
        assert soft_tfidf(["ann", "lee"], ["ann", "lee"]) == pytest.approx(1.0)

    def test_dissimilar(self):
        assert soft_tfidf(["abc"], ["xyz"]) == 0.0

    def test_close_tokens_match(self):
        value = soft_tfidf(["jonathan"], ["jonathon"], token_threshold=0.8)
        assert value > 0.8

    def test_weights_influence_score(self):
        # Down-weighting the common token "john" shifts mass to "smith".
        weights = {"john": 0.1, "smith": 10.0}
        weighted = soft_tfidf(["john", "smith"], ["john", "smyth"], 0.8, weights)
        unweighted = soft_tfidf(["john", "smith"], ["john", "smyth"], 0.8)
        assert weighted != pytest.approx(unweighted)

    def test_empty_inputs(self):
        assert soft_tfidf([], []) == 1.0
        assert soft_tfidf([], ["a"]) == 0.0

    def test_asymmetry_exists(self):
        """The paper lists asymmetry as a SoftTfIdf drawback; exhibit it."""
        found = False
        pool = [["aa", "bb"], ["aa"], ["ab", "ba"], ["aa", "ab"], ["ba"]]
        for x in pool:
            for y in pool:
                if abs(soft_tfidf(x, y, 0.5) - soft_tfidf(y, x, 0.5)) > 1e-9:
                    found = True
        assert found
