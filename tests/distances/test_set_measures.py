"""Tests for the crisp multiset similarity measures."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances import (
    multiset_cosine,
    multiset_dice,
    multiset_jaccard,
    multiset_overlap,
    multiset_ruzicka,
)
from tests.conftest import nonempty_strings

token_lists = st.lists(nonempty_strings(4), min_size=0, max_size=6)


class TestOverlap:
    def test_disjoint(self):
        assert multiset_overlap(["a"], ["b"]) == 0

    def test_multiplicity_minimum(self):
        assert multiset_overlap(["a", "a", "b"], ["a", "a", "a"]) == 2

    def test_identical(self):
        assert multiset_overlap(["x", "y"], ["x", "y"]) == 2


class TestJaccard:
    def test_known_value(self):
        assert multiset_jaccard(["ann", "lee"], ["ann", "li"]) == pytest.approx(1 / 3)

    def test_identical(self):
        assert multiset_jaccard(["a", "b"], ["a", "b"]) == 1.0

    def test_disjoint(self):
        assert multiset_jaccard(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert multiset_jaccard([], []) == 1.0

    def test_rigidity_to_token_edits(self):
        """Sec. II-D: a slightly-edited shared token counts as not shared."""
        assert multiset_jaccard(["kalan", "chan"], ["kalan", "chan"]) == 1.0
        assert multiset_jaccard(["kalan", "chan"], ["alan", "chank"]) == 0.0


class TestDice:
    def test_known_value(self):
        assert multiset_dice(["a", "b"], ["a", "c"]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert multiset_dice([], []) == 1.0


class TestCosine:
    def test_identical(self):
        assert multiset_cosine(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_disjoint(self):
        assert multiset_cosine(["a"], ["b"]) == 0.0

    def test_one_empty(self):
        assert multiset_cosine([], ["a"]) == 0.0

    def test_multiplicities(self):
        # x = {a:2}, y = {a:1, b:1}: dot = 2, |x| = 2, |y| = sqrt(2).
        assert multiset_cosine(["a", "a"], ["a", "b"]) == pytest.approx(
            2 / (2 * 2**0.5)
        )


class TestRuzicka:
    def test_binary_case_equals_jaccard(self):
        x, y = ["a", "b", "c"], ["b", "c", "d"]
        assert multiset_ruzicka(x, y) == pytest.approx(multiset_jaccard(x, y))

    def test_multiplicities(self):
        # min-sum = 1, max-sum = 3 for {a:2} vs {a:1, b:1}.
        assert multiset_ruzicka(["a", "a"], ["a", "b"]) == pytest.approx(1 / 3)


class TestSharedProperties:
    @given(token_lists, token_lists)
    def test_ranges(self, x, y):
        for measure in (
            multiset_jaccard,
            multiset_dice,
            multiset_cosine,
            multiset_ruzicka,
        ):
            assert 0.0 <= measure(x, y) <= 1.0 + 1e-12

    @given(token_lists, token_lists)
    def test_symmetry(self, x, y):
        for measure in (
            multiset_jaccard,
            multiset_dice,
            multiset_cosine,
            multiset_ruzicka,
        ):
            assert measure(x, y) == pytest.approx(measure(y, x))

    @given(token_lists)
    def test_self_similarity_is_one(self, x):
        for measure in (
            multiset_jaccard,
            multiset_dice,
            multiset_ruzicka,
        ):
            assert measure(x, x) == pytest.approx(1.0)
