"""Tests for the Levenshtein distance (Def. 1, Lemma 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distances import levenshtein, levenshtein_within
from tests.conftest import short_strings


class TestLevenshteinKnownValues:
    def test_paper_example_thomson(self):
        assert levenshtein("thomson", "thompson") == 1

    def test_paper_example_alex(self):
        assert levenshtein("alex", "alexa") == 1

    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_vs_empty(self):
        assert levenshtein("", "") == 0

    def test_empty_vs_nonempty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_complete_replacement(self):
        assert levenshtein("abc", "xyz") == 3

    def test_transposition_costs_two(self):
        # Plain Levenshtein has no transposition operation.
        assert levenshtein("ab", "ba") == 2

    def test_unicode(self):
        assert levenshtein("café", "cafe") == 1


class TestLevenshteinMetricProperties:
    @given(short_strings())
    def test_identity(self, x):
        assert levenshtein(x, x) == 0

    @given(short_strings(), short_strings())
    def test_symmetry(self, x, y):
        assert levenshtein(x, y) == levenshtein(y, x)

    @given(short_strings(), short_strings(), short_strings())
    def test_triangle_inequality(self, x, y, z):
        assert levenshtein(x, y) + levenshtein(y, z) >= levenshtein(x, z)

    @given(short_strings(), short_strings())
    def test_positivity(self, x, y):
        distance = levenshtein(x, y)
        assert distance >= 0
        assert (distance == 0) == (x == y)

    @given(short_strings(), short_strings())
    def test_length_difference_lower_bound(self, x, y):
        assert levenshtein(x, y) >= abs(len(x) - len(y))

    @given(short_strings(), short_strings())
    def test_max_length_upper_bound(self, x, y):
        assert levenshtein(x, y) <= max(len(x), len(y))


class TestLevenshteinWithin:
    @given(short_strings(), short_strings(), st.integers(min_value=0, max_value=10))
    def test_agrees_with_full_dp(self, x, y, limit):
        exact = levenshtein(x, y)
        banded = levenshtein_within(x, y, limit)
        if exact <= limit:
            assert banded == exact
        else:
            assert banded is None

    def test_negative_limit_misses(self):
        assert levenshtein_within("a", "a", -1) is None

    def test_zero_limit_equality(self):
        assert levenshtein_within("abc", "abc", 0) == 0
        assert levenshtein_within("abc", "abd", 0) is None

    def test_length_gap_early_exit(self):
        assert levenshtein_within("a", "aaaaaaaaaa", 3) is None

    def test_paper_token_example(self):
        # Editing "kalan" to "alan" costs 1 (Sec. II-D example).
        assert levenshtein_within("kalan", "alan", 1) == 1
        assert levenshtein_within("chan", "chank", 1) == 1

    def test_exact_at_limit_boundary(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3
        assert levenshtein_within("kitten", "sitting", 2) is None

    def test_ops_hook_counts_cells(self):
        counted = []
        levenshtein_within("kitten", "sitting", 3, ops=counted.append)
        assert len(counted) == 1
        assert counted[0] >= 1


class TestOpsHook:
    def test_full_dp_counts_cells(self):
        counted = []
        levenshtein("abcd", "wxyz", ops=counted.append)
        assert counted == [16]

    def test_equal_strings_count_one(self):
        counted = []
        levenshtein("same", "same", ops=counted.append)
        assert counted == [1]
